#!/usr/bin/env python3
"""Monte-Carlo confidence intervals for operational claims.

A single simulated horizon is one draw from the model's outcome
distribution — "availability was 99.5%" from one seed says little.
This example runs replication ensembles to put error bars on the
RQ5-style quantities (effective MTTR, availability, waiting share)
and shows how the staffing trade-off looks once run-to-run noise is
accounted for — whether doubling the technician pool moves the MTTR
by more than the replication spread.

Run::

    python examples/montecarlo_ci.py
"""

from repro.sim import run_replications
from repro.viz import render_table

MACHINE = "tsubame2"
HORIZON_HOURS = 2000.0
REPLICATIONS = 40
SEED = 7


def headline_ensemble() -> None:
    ensemble = run_replications(
        MACHINE,
        replications=REPLICATIONS,
        horizon_hours=HORIZON_HOURS,
        seed=SEED,
        ci=0.95,
    )
    print(ensemble.summary())
    print()


def staffing_with_error_bars() -> None:
    rows = []
    for technicians in (1, 2, 4, 8, 16):
        ensemble = run_replications(
            MACHINE,
            replications=REPLICATIONS,
            horizon_hours=HORIZON_HOURS,
            seed=SEED,
            intensity=5.0,  # stress the queue so staffing matters
            num_technicians=technicians,
        )
        mttr = ensemble.metrics["effective_mttr_hours"]
        availability = ensemble.availability
        rows.append(
            [
                str(technicians),
                f"{mttr.mean:.1f} ± {mttr.stderr:.1f}",
                f"[{mttr.ci_lower:.1f}, {mttr.ci_upper:.1f}]",
                f"{100 * availability.mean:.2f} ± "
                f"{100 * availability.stderr:.2f}",
            ]
        )
    print(
        render_table(
            ["technicians", "MTTR (h)", "MTTR 95% range",
             "availability (%)"],
            rows,
            title=f"Staffing under 5x load, {REPLICATIONS} "
                  f"replications x {HORIZON_HOURS:.0f} h "
                  f"(95% intervals)",
        )
    )


def main() -> None:
    headline_ensemble()
    staffing_with_error_bars()


if __name__ == "__main__":
    main()
