#!/usr/bin/env python3
"""Checkpointing study: what the 4x MTBF improvement buys applications.

The paper proposes *performance-error-proportionality* — useful work
per failure-free period — as the metric that couples raw compute with
reliability.  This example makes that concrete for a checkpointing
application: Young/Daly intervals, expected waste, and a full
scheduler simulation under elevated failure rates.

Run::

    python examples/checkpoint_study.py
"""

from repro.machines import get_machine
from repro.sim import (
    CheckpointPolicy,
    ClusterSimulator,
    WorkloadConfig,
    effective_goodput_fraction,
    expected_waste_fraction,
    young_daly_interval,
)
from repro.viz import render_table

CHECKPOINT_COST_HOURS = 0.25
MTBF = {"tsubame2": 15.3, "tsubame3": 72.4}


def analytic_study() -> None:
    rows = []
    for machine, mtbf in MTBF.items():
        spec = get_machine(machine)
        interval = young_daly_interval(CHECKPOINT_COST_HOURS, mtbf)
        policy = CheckpointPolicy(interval_hours=interval,
                                  cost_hours=CHECKPOINT_COST_HOURS)
        waste = expected_waste_fraction(policy, mtbf)
        goodput = effective_goodput_fraction(policy, mtbf)
        useful_pflops = spec.rpeak_pflops * goodput
        rows.append(
            [
                spec.display_name,
                f"{mtbf:.1f}",
                f"{interval:.1f}",
                f"{100 * waste:.1f}%",
                f"{100 * goodput:.1f}%",
                f"{useful_pflops:.2f}",
            ]
        )
    print(render_table(
        ["machine", "MTBF (h)", "Young/Daly T (h)", "waste",
         "goodput", "useful PFlop/s"],
        rows,
        title=f"Analytic checkpointing model "
              f"(C = {CHECKPOINT_COST_HOURS} h)",
    ))
    print("\nTsubame-3 wins twice: more Rpeak AND a larger fraction of "
          "it is useful work — performance-error-proportionality.")


def simulated_study() -> None:
    # Stress the scheduler at 6x the historical failure rate so lost
    # work is visible over a short horizon, with and without
    # checkpointing.
    workload = WorkloadConfig(mean_interarrival_hours=0.3,
                              mean_duration_hours=24.0)
    rows = []
    for label, policy in (
        ("no checkpointing", None),
        ("T = 4 h, C = 0.1 h",
         CheckpointPolicy(interval_hours=4.0, cost_hours=0.1)),
        ("T = 12 h, C = 0.1 h",
         CheckpointPolicy(interval_hours=12.0, cost_hours=0.1)),
    ):
        report = ClusterSimulator(
            "tsubame2",
            seed=3,
            workload=workload,
            checkpoint_policy=policy,
            intensity=6.0,
        ).run(1500.0)
        stats = report.scheduler
        rows.append(
            [
                label,
                str(stats.jobs_completed),
                str(stats.jobs_killed_by_failures),
                f"{stats.lost_node_hours:.0f}",
                f"{100 * stats.goodput_fraction:.2f}%",
            ]
        )
    print("\n" + render_table(
        ["policy", "completed", "killed", "lost node-h", "goodput"],
        rows,
        title="Simulated scheduler under 6x failure intensity "
              "(tsubame2, 1500 h)",
    ))


def user_exposure_study() -> None:
    # The user-facing view: what should the HPC centre tell a user
    # submitting a job of a given shape?
    from repro.core import exposure_report
    from repro.synth import generate_log

    log = generate_log("tsubame2", seed=42)
    report = exposure_report(log)
    rows = [
        [
            f"{row.job_nodes} x {row.job_hours:.0f} h",
            f"{100 * row.interruption_probability:.1f}%",
            f"{row.expected_interruptions:.2f}",
            f"{row.checkpoint_interval_hours:.1f}",
            "yes" if row.needs_checkpointing else "no",
        ]
        for row in report.rows
    ]
    print("\n" + render_table(
        ["job shape", "P(interrupt)", "E[interrupts]",
         "Young/Daly T (h)", "checkpoint?"],
        rows,
        title="User exposure report (tsubame2, system MTBF "
              f"{report.system_mtbf_hours:.1f} h)",
    ))


def main() -> None:
    analytic_study()
    simulated_study()
    user_exposure_study()


if __name__ == "__main__":
    main()
