#!/usr/bin/env python3
"""Querying the analytics service: caching, coalescing, backpressure.

Stands up a real :mod:`repro.serve` server on a background thread,
then drives it with plain :mod:`http.client` connections to show the
serving layer's three load-management behaviours:

1. **Result cache** — the second identical query skips the backend
   and returns the byte-identical payload orders of magnitude faster.
2. **Single-flight coalescing** — eight clients firing the *same*
   fresh Monte-Carlo request concurrently cost one backend execution.
3. **Live telemetry** — ``/statsz`` reports cache hit rate, coalesced
   requests, and per-endpoint latency quantiles.

Run::

    python examples/serve_client.py
"""

import http.client
import json
import threading
import time

from repro.serve import DatasetRegistry, ReproApp, run_in_thread

SIMULATE = {
    "machine": "tsubame3",
    "replications": 4,
    "horizon_hours": 500.0,
    "seed": 11,
}


def get(port: int, path: str) -> tuple[bytes, str | None, float]:
    """One GET; returns (body, X-Cache header, seconds)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    start = time.perf_counter()
    conn.request("GET", path)
    response = conn.getresponse()
    body = response.read()
    elapsed = time.perf_counter() - start
    conn.close()
    return body, response.getheader("X-Cache"), elapsed


def post(port: int, path: str, payload: dict) -> tuple[bytes, str | None, float]:
    """One POST; returns (body, X-Cache header, seconds)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    start = time.perf_counter()
    conn.request("POST", path, json.dumps(payload).encode())
    response = conn.getresponse()
    body = response.read()
    elapsed = time.perf_counter() - start
    conn.close()
    return body, response.getheader("X-Cache"), elapsed


def main() -> None:
    registry = DatasetRegistry()
    registry.synthesize("t2", "tsubame2", seed=42)
    registry.synthesize("t3", "tsubame3", seed=42)
    app = ReproApp(registry, workers=2)

    with run_in_thread(app) as handle:
        port = handle.port
        print(f"server up on 127.0.0.1:{port} with datasets "
              f"{registry.names()}\n")

        print("== result cache ==")
        cold, tag, cold_s = post(port, "/simulate", SIMULATE)
        print(f"cold  simulate: {cold_s * 1e3:8.1f} ms  (X-Cache: {tag})")
        warm, tag, warm_s = post(port, "/simulate", SIMULATE)
        print(f"warm  simulate: {warm_s * 1e3:8.1f} ms  (X-Cache: {tag})")
        print(f"speedup {cold_s / warm_s:.0f}x, byte-identical: "
              f"{cold == warm}\n")

        print("== single-flight coalescing ==")
        fresh = dict(SIMULATE, seed=99)  # new key: nothing cached
        before = handle.app.singleflight.executions
        results: list[str | None] = [None] * 8
        threads = [
            threading.Thread(
                target=lambda i=i: results.__setitem__(
                    i, post(port, "/simulate", fresh)[1]
                )
            )
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        executions = handle.app.singleflight.executions - before
        print(f"8 identical concurrent requests -> {executions} "
              f"backend execution(s)")
        print(f"X-Cache tags: {sorted(set(filter(None, results)))}\n")

        print("== analysis endpoints ==")
        for path in ("/analyze/t2/breakdown", "/analyze/t3/metrics"):
            body, tag, elapsed = get(port, path)
            payload = json.loads(body)
            keys = ", ".join(sorted(payload)[:4])
            print(f"{path:<24} {elapsed * 1e3:6.1f} ms  "
                  f"[{tag}]  keys: {keys}, ...")

        print("\n== /statsz ==")
        stats = json.loads(get(port, "/statsz")[0])
        cache = stats["cache"]
        flight = stats["singleflight"]
        print(f"cache: {cache['hits']} hits / {cache['misses']} misses "
              f"(hit rate {cache['hit_rate']:.0%})")
        print(f"single-flight: {flight['executions']} executions, "
              f"{flight['coalesced']} coalesced")
        simulate = stats["server"]["endpoints"].get("simulate", {})
        latency = simulate.get("latency_ms", {})
        if "p50" in latency:
            print(f"simulate latency: p50 {latency['p50']:.1f} ms, "
                  f"p99 {latency['p99']:.1f} ms")

    print("\nserver drained and stopped cleanly")


if __name__ == "__main__":
    main()
