#!/usr/bin/env python3
"""Operations planning: staffing, spares, and proactive recovery.

The paper's RQ5 takeaway is that the time to recovery, not the time
between failures, is the stalled metric — and that reducing it is an
operational trade-off ("excessive spare components ... more staff ...
increased operational cost").  This example sweeps those knobs on the
discrete-event simulator and sizes a spare inventory from the failure
log, the way an operations team would.

Run::

    python examples/operations_planning.py
"""

from repro.predict import plan_spares
from repro.sim import ClusterSimulator, RepairPolicy
from repro.synth import generate_log
from repro.viz import render_table

HORIZON_HOURS = 2000.0
MACHINE = "tsubame2"
SEED = 7


def staffing_sweep() -> None:
    rows = []
    for technicians in (1, 2, 4, 8, 16):
        report = ClusterSimulator(
            MACHINE,
            seed=SEED,
            repair_policy=RepairPolicy(num_technicians=technicians),
        ).run(HORIZON_HOURS)
        rows.append(
            [
                str(technicians),
                f"{report.effective_mttr_hours:.0f}",
                f"{report.mean_waiting_hours:.0f}",
                f"{100 * report.availability:.3f}%",
            ]
        )
    print(render_table(
        ["technicians", "effective MTTR (h)", "waiting (h)",
         "availability"],
        rows,
        title=f"Staffing sweep ({MACHINE}, {HORIZON_HOURS:.0f} h)",
    ))


def spare_planning() -> None:
    log = generate_log(MACHINE, seed=42)
    plan = plan_spares(log, lead_time_hours=168.0,
                       target_stockout_probability=0.02)
    rows = [
        [
            entry.category,
            f"{entry.failure_rate_per_hour * 24 * 7:.2f}",
            f"{entry.lead_time_demand:.1f}",
            str(entry.recommended_stock),
            f"{100 * entry.stockout_probability:.2f}%",
        ]
        for entry in plan.entries
    ]
    print("\n" + render_table(
        ["category", "failures/week", "lead-time demand", "stock",
         "P(stockout)"],
        rows,
        title="Spare-part plan (1-week lead time, 2% stockout target)",
    ))

    # Does the plan actually help?  Same fault stream, two inventories.
    empty = {name: 0 for name in plan.as_mapping()}
    unprovisioned = ClusterSimulator(
        MACHINE, seed=SEED, initial_spares=empty
    ).run(HORIZON_HOURS)
    provisioned = ClusterSimulator(
        MACHINE, seed=SEED, initial_spares=plan.as_mapping()
    ).run(HORIZON_HOURS)
    print(f"\nwith no spares:    MTTR "
          f"{unprovisioned.effective_mttr_hours:.0f} h, "
          f"{unprovisioned.spare_stockouts} stockouts")
    print(f"with the plan:     MTTR "
          f"{provisioned.effective_mttr_hours:.0f} h, "
          f"{provisioned.spare_stockouts} stockouts")


def prediction_driven_prestaging() -> None:
    # The Figure 8 implication: after a multi-GPU failure, pre-stage a
    # GPU spare because another one is coming.
    from repro.predict import TemporalLocalityPredictor, evaluate_predictor

    log = generate_log(MACHINE, seed=42)
    predictor = TemporalLocalityPredictor(horizon_hours=336.0)
    outcome = evaluate_predictor(predictor, log)
    print(f"\nTemporal-locality predictor on {MACHINE}: "
          f"recall {100 * outcome.recall:.1f}%, precision "
          f"{100 * outcome.precision:.1f}%, mean lead time "
          f"{outcome.mean_lead_time_hours:.0f} h")
    print("Each covered failure gives the operations team that much "
          "warning to drain the node and stage a spare.")


def main() -> None:
    staffing_sweep()
    spare_planning()
    prediction_driven_prestaging()


if __name__ == "__main__":
    main()
