#!/usr/bin/env python3
"""Cross-generation reliability study — the paper's full analysis.

Reproduces every research question across Tsubame-2 and Tsubame-3,
adds parametric distribution fits for the TBF/TTR data, and computes
the paper's performance-error-proportionality metric.

Run::

    python examples/compare_generations.py
"""

from repro.core import (
    category_breakdown,
    component_class_mtbf,
    multi_gpu_clustering,
    multi_gpu_involvement,
    performance_error_proportionality,
    repeat_failure_class_split,
    tbf_distribution,
    ttr_distribution,
)
from repro.core.metrics import tbf_series_hours, ttr_series_hours
from repro.machines import get_machine
from repro.stats import fit_best, ks_two_sample
from repro.synth import generate_log
from repro.viz import render_table


def main() -> None:
    logs = {
        machine: generate_log(machine, seed=42)
        for machine in ("tsubame2", "tsubame3")
    }
    specs = {machine: get_machine(machine) for machine in logs}

    rows = []
    for machine, log in logs.items():
        spec = specs[machine]
        breakdown = category_breakdown(log)
        tbf = tbf_distribution(log)
        ttr = ttr_distribution(log)
        classes = component_class_mtbf(log)
        involvement = multi_gpu_involvement(log, spec.gpus_per_node)
        pep = performance_error_proportionality(log, spec)
        rows.append(
            [
                spec.display_name,
                str(len(log)),
                breakdown.dominant_category,
                f"{tbf.mtbf_hours:.1f}",
                f"{ttr.mttr_hours:.1f}",
                f"{classes.gpu_mtbf_hours:.0f}",
                f"{classes.cpu_mtbf_hours:.0f}",
                f"{100 * involvement.multi_gpu_share:.0f}%",
                f"{pep.flop_per_failure_free_period:.2e}",
            ]
        )
    print(render_table(
        ["machine", "failures", "dominant", "MTBF(h)", "MTTR(h)",
         "GPU MTBF", "CPU MTBF", "multi-GPU", "FLOP/period"],
        rows,
        title="Cross-generation summary",
    ))

    print("\n-- Distribution fits (best family by AIC) --")
    for machine, log in logs.items():
        tbf_fit = fit_best(
            [g for g in tbf_series_hours(log) if g > 0]
        )
        ttr_fit = fit_best(ttr_series_hours(log))
        print(f"{machine}: TBF ~ {tbf_fit.name} "
              f"(shape {tbf_fit.shape_parameter() or 1.0:.2f}, "
              f"KS {tbf_fit.ks_statistic:.3f}); "
              f"TTR ~ {ttr_fit.name} "
              f"(shape {ttr_fit.shape_parameter() or 1.0:.2f})")

    print("\n-- Are the distributions actually different? --")
    tbf_test = ks_two_sample(
        tbf_series_hours(logs["tsubame2"]),
        tbf_series_hours(logs["tsubame3"]),
    )
    ttr_test = ks_two_sample(
        ttr_series_hours(logs["tsubame2"]),
        ttr_series_hours(logs["tsubame3"]),
    )
    print(f"TBF:  KS={tbf_test.statistic:.3f} p={tbf_test.pvalue:.2e} "
          f"-> {'different' if tbf_test.rejects_null() else 'similar'} "
          f"(paper: very different, Figure 6)")
    print(f"TTR:  KS={ttr_test.statistic:.3f} p={ttr_test.pvalue:.2e} "
          f"(paper: near-identical MTTR, similar shape, Figure 9)")

    print("\n-- Repeat-failure class split (RQ2) --")
    for machine, log in logs.items():
        split = repeat_failure_class_split(log)
        print(f"{machine}: multi-failure nodes carry "
              f"{split.hardware_failures} hardware vs "
              f"{split.software_failures} software failures")

    print("\n-- Multi-GPU temporal clustering (Figure 8) --")
    for machine, log in logs.items():
        clustering = multi_gpu_clustering(log)
        print(f"{machine}: clustering ratio "
              f"{clustering.clustering_ratio:.2f} "
              f"({'clustered' if clustering.is_clustered() else 'not clustered'})")


if __name__ == "__main__":
    main()
