#!/usr/bin/env python3
"""Reliability trends: is the machine getting better or worse?

Applies the reliability-growth toolkit to both Tsubame logs: windowed
MTBF/MTTR series, Crow-AMSAA growth fits, censored recovery survival,
and the rack-level failure concentration the paper's generalizability
discussion mentions.

Run::

    python examples/reliability_trends.py
"""

from repro.core import (
    crow_amsaa_fit,
    rack_failure_distribution,
    ttr_survival,
    windowed_mtbf,
    windowed_mttr,
)
from repro.machines import rack_layout_for
from repro.synth import generate_log
from repro.viz import render_table

WINDOW_HOURS = 24.0 * 60  # two-month windows


def trend_tables(machine: str) -> None:
    log = generate_log(machine, seed=42)
    mtbf_points = windowed_mtbf(log, WINDOW_HOURS)
    mttr_points = windowed_mttr(log, WINDOW_HOURS)
    rows = []
    for mtbf_point, mttr_point in zip(mtbf_points, mttr_points):
        mttr_text = (
            f"{mttr_point.value_hours:.1f}"
            if mttr_point.num_failures
            else "-"
        )
        rows.append(
            [
                f"{mtbf_point.window_start_hours / 24:.0f}-"
                f"{mtbf_point.window_end_hours / 24:.0f}",
                str(mtbf_point.num_failures),
                f"{mtbf_point.value_hours:.1f}",
                mttr_text,
            ]
        )
    print(render_table(
        ["days", "failures", "MTBF (h)", "MTTR (h)"],
        rows,
        title=f"{machine}: two-month reliability windows",
    ))

    growth = crow_amsaa_fit(log)
    direction = (
        "improving (burn-in)" if growth.beta < 0.95
        else "deteriorating (wear-out)" if growth.beta > 1.05
        else "stationary"
    )
    print(f"Crow-AMSAA beta = {growth.beta:.3f} -> failure intensity "
          f"{direction}")

    survival = ttr_survival(log)
    print("recovery survival S(t): "
          + ", ".join(
              f"S({t:.0f}h)={survival.survival_at(t):.2f}"
              for t in (24.0, 55.0, 120.0, 240.0)
          ))

    layout = rack_layout_for(machine)
    racks = rack_failure_distribution(log, layout)
    print(f"rack concentration: top 10% of {layout.num_racks} racks "
          f"carry {100 * racks.concentration(0.1):.0f}% of failures "
          f"(gini {racks.gini():.2f})")
    print()


def main() -> None:
    for machine in ("tsubame2", "tsubame3"):
        trend_tables(machine)
    print("Neither machine shows burn-in or wear-out within its own "
          "log; the reliability jump happened *between* generations, "
          "which is exactly the paper's cross-generation framing.")


if __name__ == "__main__":
    main()
