#!/usr/bin/env python3
"""Quickstart: generate a calibrated failure log and ask it the
paper's headline questions.

Run::

    python examples/quickstart.py
"""

from repro.core import (
    category_breakdown,
    mtbf,
    mttr,
    multi_gpu_involvement,
    node_failure_distribution,
    tbf_distribution,
    ttr_distribution,
)
from repro.machines import get_machine
from repro.synth import generate_log


def main() -> None:
    for machine in ("tsubame2", "tsubame3"):
        spec = get_machine(machine)
        log = generate_log(machine, seed=42)
        print(f"=== {spec.display_name} ===")
        print(f"  {len(log)} failures over "
              f"{log.span_hours / 24:.0f} days "
              f"({spec.num_nodes} nodes, {spec.gpus_per_node} GPUs each)")

        # RQ1 — what fails?
        breakdown = category_breakdown(log)
        top = ", ".join(
            f"{entry.category} {100 * entry.share:.1f}%"
            for entry in breakdown.top(3)
        )
        print(f"  top categories: {top}")

        # RQ2 — where does it fail?
        nodes = node_failure_distribution(log)
        print(f"  affected nodes: {nodes.num_affected_nodes}, "
              f"{100 * nodes.fraction_with_exactly(1):.0f}% of them "
              f"failed exactly once")

        # RQ3 — how many GPUs at once?
        involvement = multi_gpu_involvement(log, spec.gpus_per_node)
        print(f"  multi-GPU failures: "
              f"{100 * involvement.multi_gpu_share:.1f}% of "
              f"{involvement.total} GPU failures")

        # RQ4 / RQ5 — how often, and how long to repair?
        tbf = tbf_distribution(log)
        ttr = ttr_distribution(log)
        print(f"  MTBF {mtbf(log):.1f} h (75% of gaps under "
              f"{tbf.p75_hours():.0f} h); MTTR {mttr(log):.1f} h "
              f"(median {ttr.quantile(0.5):.0f} h)")
        print()

    print("The cross-generation story: MTBF improved >4x, "
          "MTTR did not move.")


if __name__ == "__main__":
    main()
