#!/usr/bin/env python3
"""What-if scenarios: counterfactuals the paper's implications invite.

Three studies, all run through the same analysis pipeline as the
historical reproductions:

1. *Operational practice transplant* — RQ3 credits Tsubame-3's
   near-elimination of simultaneous multi-GPU failures to operational
   practice, not hardware.  What would Tsubame-2's Table III have
   looked like under those practices (and vice versa)?
2. *Software-share growth* — RQ1's trend extrapolated: what happens
   to the failure landscape when software reaches 75% of failures?
3. *Reliability stress* — how do MTBF, overlap depth, and the
   repair-crew requirement move at 2x and 4x the failure rate (e.g.
   aging hardware)?  This study is replicated over several seeds via
   :func:`repro.synth.replicate_scenario` (parallel across cores when
   available) so the reported numbers are Monte-Carlo means, not a
   single draw.

Run::

    python examples/what_if_scenarios.py
"""

from repro.core import (
    category_breakdown,
    concurrent_outages,
    mtbf,
    multi_gpu_involvement,
)
from repro.parallel import default_processes
from repro.synth import (
    GeneratorConfig,
    TraceGenerator,
    profile_for,
    replicate_scenario,
    with_failure_rate_scaled,
    with_operational_practices_of,
    with_software_share,
)
from repro.viz import render_table

SEED = 11
REPLICATION_SEEDS = tuple(range(SEED, SEED + 8))


def _generate(profile):
    return TraceGenerator(profile, GeneratorConfig(seed=SEED)).generate()


def practice_transplant() -> None:
    t2, t3 = profile_for("tsubame2"), profile_for("tsubame3")
    rows = []
    for label, profile, slots in (
        ("Tsubame-2 (historical)", t2, 3),
        ("Tsubame-2 + T3 practices", with_operational_practices_of(t2, t3), 3),
        ("Tsubame-3 (historical)", t3, 4),
        ("Tsubame-3 + T2 practices", with_operational_practices_of(t3, t2), 4),
    ):
        log = _generate(profile)
        involvement = multi_gpu_involvement(log, slots)
        rows.append(
            [
                label,
                str(involvement.total),
                f"{100 * involvement.share_of(1):.1f}%",
                f"{100 * involvement.multi_gpu_share:.1f}%",
            ]
        )
    print(render_table(
        ["scenario", "GPU failures", "single-GPU", "multi-GPU"],
        rows,
        title="Scenario 1: Table III under transplanted operational "
              "practices",
    ))
    print("Practice, not GPU count, drives the multi-GPU share — the "
          "paper's RQ3 explanation, made testable.\n")


def software_growth() -> None:
    base = profile_for("tsubame3")
    rows = []
    for share in (0.51, 0.65, 0.75, 0.85):
        log = _generate(with_software_share(base, share, "Software"))
        result = category_breakdown(log)
        rows.append(
            [
                f"{100 * share:.0f}%",
                result.dominant_category,
                f"{100 * result.share_of('GPU'):.1f}%",
                f"{100 * result.share_of('CPU'):.1f}%",
            ]
        )
    print(render_table(
        ["software share", "dominant", "GPU share", "CPU share"],
        rows,
        title="Scenario 2: the RQ1 software-growth trend, extrapolated",
    ))
    print()


def reliability_stress() -> None:
    base = profile_for("tsubame3")
    processes = default_processes()
    rows = []
    for factor in (1.0, 2.0, 4.0):
        profile = with_failure_rate_scaled(base, factor)
        logs = replicate_scenario(
            profile, REPLICATION_SEEDS, processes=processes
        )
        outages = [concurrent_outages(log) for log in logs]
        n = len(logs)
        rows.append(
            [
                f"{factor:.0f}x",
                f"{sum(len(log) for log in logs) / n:.0f}",
                f"{sum(mtbf(log) for log in logs) / n:.1f}",
                f"{sum(o.mean_concurrent() for o in outages) / n:.2f}",
                f"{100 * sum(o.overlap_fraction for o in outages) / n:.0f}%",
                f"{max(o.implied_repair_parallelism() for o in outages)}",
            ]
        )
    print(render_table(
        ["rate", "failures", "MTBF (h)", "mean open", "overlap",
         "crew (99%)"],
        rows,
        title=f"Scenario 3: failure-rate stress on Tsubame-3 "
              f"(mean of {len(REPLICATION_SEEDS)} seeds, "
              f"{processes} workers)",
    ))
    print("As the rate climbs, overlapping repairs become the norm and "
          "the implied repair-crew requirement grows — the RQ5 alarm.")


def main() -> None:
    practice_transplant()
    software_growth()
    reliability_stress()


if __name__ == "__main__":
    main()
