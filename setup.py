"""Setup shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` can fall back to the legacy editable path on
offline machines where the PEP 517 build frontend cannot fetch the
``wheel`` package.
"""

from setuptools import setup

setup()
