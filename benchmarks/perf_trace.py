#!/usr/bin/env python3
"""Trace benchmark: recording overhead, replay speed, codec throughput.

Three sections, written to ``BENCH_trace.json`` at the repo root:

* ``recording`` — the headline claim: attaching a
  :class:`repro.trace.TraceRecorder` to a full workload simulation
  (scheduler + checkpointing, ~6k events per run at 1x) costs <= 10%
  wall-clock overhead on the simulation hot path.  Plain and traced
  runs are interleaved rep for rep and the *minimum* wall time per
  mode is compared — minima discard scheduler jitter, which at these
  run lengths is larger than the overhead being measured.
* ``replay`` — re-executing the recorded trace through the production
  components, verified bit-exact before any number is reported.
* ``codec`` — serializing (``dumps``) and parsing (``parse_trace``)
  the recorded trace, as lines/second, with the round trip asserted
  byte-identical.

Run::

    PYTHONPATH=src python benchmarks/perf_trace.py

``REPRO_BENCH_TRACE_REPS`` sets repetitions per mode (default 7); the
<=10% floor is asserted by the harness only at >= 5 reps — fewer reps
just record their numbers.  ``REPRO_BENCH_TRACE_HORIZON`` resizes the
simulated horizon (default 1000 hours).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.sim import (
    CheckpointPolicy,
    ClusterSimulator,
    WorkloadConfig,
)
from repro.trace import TraceRecorder, parse_trace, replay

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_trace.json"

BENCH_SEED = 42
BENCH_MACHINE = "tsubame3"
OVERHEAD_FLOOR_PCT = 10.0


def _reps() -> int:
    raw = os.environ.get("REPRO_BENCH_TRACE_REPS", "").strip()
    return int(raw) if raw else 7


def _horizon() -> float:
    raw = os.environ.get("REPRO_BENCH_TRACE_HORIZON", "").strip()
    return float(raw) if raw else 1000.0


def _build_sim(seed: int) -> ClusterSimulator:
    # The densest configuration the simulator offers: workload
    # scheduling and checkpointing multiply the event count ~40x over
    # a headless run, so recording overhead is measured against the
    # busiest realistic bus traffic.
    return ClusterSimulator(
        BENCH_MACHINE,
        seed=seed,
        intensity=2.0,
        workload=WorkloadConfig(),
        checkpoint_policy=CheckpointPolicy(6.0, 0.2),
        keep_injected_log=False,
    )


def _bench_recording(reps: int, horizon: float) -> dict:
    plain: list[float] = []
    traced: list[float] = []
    events = 0
    _build_sim(BENCH_SEED).run(horizon)  # warmup
    for rep in range(reps):
        # Interleaved so slow drift (thermal, page cache) hits both
        # modes equally.
        sim = _build_sim(BENCH_SEED + rep)
        start = time.perf_counter()
        sim.run(horizon)
        plain.append(time.perf_counter() - start)

        sim = _build_sim(BENCH_SEED + rep)
        recorder = TraceRecorder.attach(sim)
        start = time.perf_counter()
        report = sim.run(horizon)
        traced.append(time.perf_counter() - start)
        events = recorder.event_count
        recorder.finalize(report, horizon)
    plain_s = min(plain)
    traced_s = min(traced)
    return {
        "reps": reps,
        "horizon_hours": horizon,
        "events_per_run": events,
        "plain_s": plain_s,
        "traced_s": traced_s,
        "plain_events_per_s": events / plain_s,
        "traced_events_per_s": events / traced_s,
        "overhead_pct": 100.0 * (traced_s - plain_s) / plain_s,
    }


def _record_reference(horizon: float):
    sim = _build_sim(BENCH_SEED)
    recorder = TraceRecorder.attach(sim)
    report = sim.run(horizon)
    return recorder.finalize(report, horizon)


def _bench_replay(reps: int, horizon: float) -> dict:
    trace = _record_reference(horizon)
    times: list[float] = []
    for _ in range(max(3, reps // 2)):
        start = time.perf_counter()
        result = replay(trace)  # raises on any divergence
        times.append(time.perf_counter() - start)
        assert result.bit_exact
    replay_s = min(times)
    return {
        "events": len(trace.events),
        "replay_s": replay_s,
        "events_per_s": len(trace.events) / replay_s,
        "bit_exact": True,
    }


def _bench_codec(reps: int, horizon: float) -> dict:
    trace = _record_reference(horizon)
    lines = len(trace.lines())

    dumps_times: list[float] = []
    parse_times: list[float] = []
    for _ in range(max(3, reps // 2)):
        start = time.perf_counter()
        text = trace.dumps()
        dumps_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        parsed, quarantined = parse_trace(text)
        parse_times.append(time.perf_counter() - start)
        assert not quarantined
    assert parsed.dumps() == text  # byte-identical round trip
    dumps_s = min(dumps_times)
    parse_s = min(parse_times)
    return {
        "lines": lines,
        "bytes": len(text),
        "dumps_s": dumps_s,
        "parse_s": parse_s,
        "dumps_lines_per_s": lines / dumps_s,
        "parse_lines_per_s": lines / parse_s,
        "round_trip_ok": True,
    }


def run_benchmark() -> dict:
    reps = _reps()
    horizon = _horizon()
    return {
        "schema": 1,
        "seed": BENCH_SEED,
        "machine": BENCH_MACHINE,
        "reps": reps,
        "horizon_hours": horizon,
        "floors_asserted": reps >= 5,
        "overhead_floor_pct": OVERHEAD_FLOOR_PCT,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "recording": _bench_recording(reps, horizon),
        "replay": _bench_replay(reps, horizon),
        "codec": _bench_codec(reps, horizon),
    }


def write_report(results: dict, path: Path = REPORT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main() -> None:
    results = run_benchmark()
    rec = results["recording"]
    print(
        f"recording: {rec['events_per_run']} events, plain "
        f"{1e3 * rec['plain_s']:.0f} ms vs traced "
        f"{1e3 * rec['traced_s']:.0f} ms "
        f"({rec['overhead_pct']:+.1f}% overhead)"
    )
    rep = results["replay"]
    print(
        f"replay: {rep['events']} events in "
        f"{1e3 * rep['replay_s']:.0f} ms "
        f"({rep['events_per_s']:.0f} events/s, bit-exact)"
    )
    codec = results["codec"]
    print(
        f"codec: dumps {codec['dumps_lines_per_s']:.0f} lines/s, "
        f"parse {codec['parse_lines_per_s']:.0f} lines/s "
        f"({codec['bytes'] / 1024:.0f} KiB round-tripped)"
    )
    write_report(results)
    print(f"wrote {REPORT_PATH}")


if __name__ == "__main__":
    main()
