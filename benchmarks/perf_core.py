#!/usr/bin/env python3
"""Core performance benchmark: the columnar fast path against the
retained pure-Python reference path, plus the multi-seed sweep engine.

At 1x/10x/100x the Tsubame-2 paper scale (897 records — larger scales
are built by time-tiling the calibrated 1x log, since the placement
model caps a single generated trace at the node count), this times:

* log construction (generation plus tiling),
* a chained-filter pass — trusted mask path vs. re-validating every
  subset through the public constructor,
* the full analysis pass (every vectorized kernel) vs. the
  ``_reference_*`` implementations,
* each TBF / spatial / seasonal / multi-GPU kernel individually,

and a 50-seed :func:`repro.parallel.sweep` (serial vs. 4 workers),
then writes ``BENCH_core.json`` at the repo root so future PRs have a
perf trajectory to regress against.

Run::

    PYTHONPATH=src python benchmarks/perf_core.py
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import metrics, multigpu, seasonal, spatial, temporal
from repro.core import taxonomy
from repro.core.records import FailureLog
from repro.core.taxonomy import FailureClass
from repro.parallel import available_cpus, sweep
from repro.synth import GeneratorConfig, generate_log

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_core.json"

BENCH_SEED = 42
SCALES = {"1x": 1, "10x": 10, "100x": 100}
SWEEP_SEEDS = 50
SWEEP_WORKERS = 4


def _selected_scales() -> dict[str, int]:
    """Scales to run, optionally restricted via ``REPRO_BENCH_SCALES``.

    The variable is a comma-separated list of multipliers (``"1"``,
    ``"1,10"``) or labels (``"1x,10x"``); CI smoke runs set it to
    ``1`` so the 100x tier does not eat the build budget.
    """
    raw = os.environ.get("REPRO_BENCH_SCALES", "").strip()
    if not raw:
        return dict(SCALES)
    wanted = {
        token if token.endswith("x") else f"{token}x"
        for token in (t.strip() for t in raw.split(","))
        if token
    }
    selected = {
        label: factor
        for label, factor in SCALES.items()
        if label in wanted
    }
    if not selected:
        raise SystemExit(
            f"REPRO_BENCH_SCALES={raw!r} matches no known scale "
            f"(choose from {', '.join(SCALES)})"
        )
    return selected


def _best_of(fn, repeats: int = 3):
    """Best wall-clock of ``repeats`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def tiled_log(factor: int, seed: int = BENCH_SEED) -> FailureLog:
    """Calibrated Tsubame-2 log tiled ``factor`` times along the time
    axis (record ids re-assigned, window extended), validated once by
    the public constructor like any externally built log."""
    base = generate_log(
        "tsubame2", config=GeneratorConfig(seed=seed)
    )
    if factor == 1:
        return base
    span = base.window_end - base.window_start
    records = []
    record_id = 0
    for copy in range(factor):
        shift = span * copy
        for record in base.records:
            records.append(
                dataclasses.replace(
                    record,
                    record_id=record_id,
                    timestamp=record.timestamp + shift,
                )
            )
            record_id += 1
    return FailureLog(
        machine=base.machine,
        records=tuple(records),
        window_start=base.window_start,
        window_end=base.window_start + span * factor,
    )


def _validated_subset(log: FailureLog, predicate) -> FailureLog:
    """The pre-columnar subset path: filter, then re-validate and
    re-sort everything through the public constructor."""
    return FailureLog(
        machine=log.machine,
        records=tuple(r for r in log.records if predicate(r)),
        window_start=log.window_start,
        window_end=log.window_end,
    )


def _midpoint(log: FailureLog):
    return log.window_start + (log.window_end - log.window_start) / 2


def filter_chain_fast(log: FailureLog) -> int:
    sub = (
        log.gpu_failures()
        .between(log.window_start, _midpoint(log))
        .by_class(FailureClass.HARDWARE)
    )
    return len(sub)


def filter_chain_reference(log: FailureLog) -> int:
    end = _midpoint(log)
    sub = _validated_subset(
        log,
        lambda r: bool(r.gpus_involved)
        or taxonomy.is_gpu_category(log.machine, r.category),
    )
    sub = _validated_subset(
        sub, lambda r: log.window_start <= r.timestamp < end
    )
    sub = _validated_subset(
        sub,
        lambda r: taxonomy.failure_class(log.machine, r.category)
        is FailureClass.HARDWARE,
    )
    return len(sub)


def analysis_chain_fast(log: FailureLog) -> dict:
    gpu = log.gpu_failures()
    mid = gpu.between(log.window_start, _midpoint(log))
    return {
        "tbf": metrics.tbf_series_hours(mid),
        "ttr": metrics.ttr_series_hours(mid),
        "tbf_categories": [
            e.category for e in temporal.tbf_by_category(log)
        ],
        "node_counts": spatial.node_failure_distribution(
            mid
        ).counts_per_node,
        "class_split": spatial.repeat_failure_class_split(log),
        "slots": spatial.gpu_slot_distribution(gpu, (0, 1, 2)),
        "monthly": seasonal.monthly_failure_counts(mid).counts,
        "monthly_ttr_keys": sorted(
            seasonal.monthly_ttr(log).summaries
        ),
        "weekday": seasonal.weekday_profile(log),
        "hourly": seasonal.hour_of_day_profile(log),
        "involvement": multigpu.multi_gpu_involvement(mid, 3),
        "clustering_events": len(
            multigpu.multi_gpu_clustering(log).events
        ),
    }


def analysis_chain_reference(log: FailureLog) -> dict:
    end = _midpoint(log)
    gpu = _validated_subset(
        log,
        lambda r: bool(r.gpus_involved)
        or taxonomy.is_gpu_category(log.machine, r.category),
    )
    mid = _validated_subset(
        gpu, lambda r: log.window_start <= r.timestamp < end
    )
    return {
        "tbf": metrics._reference_tbf_series_hours(mid),
        "ttr": metrics._reference_ttr_series_hours(mid),
        "tbf_categories": [
            e.category
            for e in temporal._reference_tbf_by_category(log)
        ],
        "node_counts": spatial._reference_node_failure_distribution(
            mid
        ).counts_per_node,
        "class_split": spatial._reference_repeat_failure_class_split(
            log
        ),
        "slots": spatial._reference_gpu_slot_distribution(
            gpu, (0, 1, 2)
        ),
        "monthly": seasonal._reference_monthly_failure_counts(
            mid
        ).counts,
        "monthly_ttr_keys": sorted(
            seasonal._reference_monthly_ttr(log).summaries
        ),
        "weekday": seasonal._reference_weekday_profile(log),
        "hourly": seasonal._reference_hour_of_day_profile(log),
        "involvement": multigpu._reference_multi_gpu_involvement(
            mid, 3
        ),
        "clustering_events": len(
            multigpu._reference_multi_gpu_clustering(log).events
        ),
    }


#: name -> (fast kernel, reference kernel), each taking the full log.
KERNELS = {
    "tbf_series": (
        metrics.tbf_series_hours,
        metrics._reference_tbf_series_hours,
    ),
    "tbf_by_category": (
        temporal.tbf_by_category,
        temporal._reference_tbf_by_category,
    ),
    "node_failure_distribution": (
        spatial.node_failure_distribution,
        spatial._reference_node_failure_distribution,
    ),
    "repeat_failure_class_split": (
        spatial.repeat_failure_class_split,
        spatial._reference_repeat_failure_class_split,
    ),
    "monthly_ttr": (
        seasonal.monthly_ttr,
        seasonal._reference_monthly_ttr,
    ),
    "hour_of_day_profile": (
        seasonal.hour_of_day_profile,
        seasonal._reference_hour_of_day_profile,
    ),
    "multi_gpu_clustering": (
        multigpu.multi_gpu_clustering,
        multigpu._reference_multi_gpu_clustering,
    ),
}


def _bench_scale(factor: int) -> dict:
    start = time.perf_counter()
    log = tiled_log(factor)
    build_s = time.perf_counter() - start

    filter_fast_s, fast_n = _best_of(lambda: filter_chain_fast(log))
    filter_ref_s, ref_n = _best_of(
        lambda: filter_chain_reference(log), repeats=1
    )

    # Cold = first touch on a fresh log (includes the one-time column
    # build); warm = the steady state every later call sees.
    cold_log = tiled_log(factor)
    start = time.perf_counter()
    analysis_chain_fast(cold_log)
    chain_cold_s = time.perf_counter() - start
    chain_warm_s, fast_out = _best_of(
        lambda: analysis_chain_fast(cold_log)
    )
    chain_ref_s, ref_out = _best_of(
        lambda: analysis_chain_reference(cold_log), repeats=1
    )

    kernels = {}
    for name, (fast_fn, ref_fn) in KERNELS.items():
        fast_s, _ = _best_of(lambda: fast_fn(log))
        ref_s, _ = _best_of(lambda: ref_fn(log), repeats=1)
        kernels[name] = {
            "fast_s": fast_s,
            "reference_s": ref_s,
            "speedup": ref_s / fast_s if fast_s else float("inf"),
        }

    return {
        "records": len(log),
        "build_log_s": build_s,
        "filter_chain": {
            "fast_s": filter_fast_s,
            "reference_s": filter_ref_s,
            "speedup": filter_ref_s / filter_fast_s
            if filter_fast_s
            else float("inf"),
            "survivors_match": fast_n == ref_n,
        },
        "analysis_chain": {
            "fast_cold_s": chain_cold_s,
            "fast_warm_s": chain_warm_s,
            "reference_s": chain_ref_s,
            "speedup_cold": chain_ref_s / chain_cold_s
            if chain_cold_s
            else float("inf"),
            "speedup_warm": chain_ref_s / chain_warm_s
            if chain_warm_s
            else float("inf"),
            "parity_ok": fast_out == ref_out,
        },
        "kernels": kernels,
    }


def _sweep_job(seed: int) -> tuple[int, float]:
    """Per-seed work for the sweep benchmark: generate a calibrated
    Tsubame-3 trace and reduce it to (failure count, MTBF hours)."""
    log = generate_log(
        "tsubame3", config=GeneratorConfig(seed=seed)
    )
    return len(log), metrics.mtbf(log)


def _bench_sweep() -> dict:
    seeds = list(range(SWEEP_SEEDS))
    start = time.perf_counter()
    serial = sweep(_sweep_job, seeds, processes=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = sweep(_sweep_job, seeds, processes=SWEEP_WORKERS)
    parallel_s = time.perf_counter() - start
    return {
        "seeds": SWEEP_SEEDS,
        "workers": SWEEP_WORKERS,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s
        if parallel_s
        else float("inf"),
        "identical": serial == parallel,
        # Parity (identical) holds on any host; the speedup ratio is
        # only a claim where there are cores to back it.
        "speedup_asserted": available_cpus() >= 2,
    }


def run_benchmark() -> dict:
    results = {
        "schema": 1,
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scales": {
            label: _bench_scale(factor)
            for label, factor in _selected_scales().items()
        },
        "sweep": _bench_sweep(),
    }
    return results


def write_report(results: dict, path: Path = REPORT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main() -> None:
    results = run_benchmark()
    for label, scale in results["scales"].items():
        chain = scale["analysis_chain"]
        print(
            f"{label:>4} ({scale['records']} records): "
            f"analysis {chain['fast_warm_s'] * 1e3:.1f} ms vs "
            f"reference {chain['reference_s'] * 1e3:.1f} ms "
            f"({chain['speedup_warm']:.1f}x warm, "
            f"{chain['speedup_cold']:.1f}x cold), "
            f"filter chain {scale['filter_chain']['speedup']:.1f}x"
        )
    sweep_result = results["sweep"]
    print(
        f"sweep ({sweep_result['seeds']} seeds, "
        f"{sweep_result['workers']} workers on "
        f"{results['cpu_count']} cores): "
        f"{sweep_result['serial_s']:.2f} s serial vs "
        f"{sweep_result['parallel_s']:.2f} s parallel "
        f"({sweep_result['speedup']:.2f}x), "
        f"identical={sweep_result['identical']}"
    )
    path = write_report(results)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
