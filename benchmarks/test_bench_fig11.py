"""Figure 11 — monthly time-to-recovery distributions.

Paper: no clear seasonal impact overall; Tsubame-2 recoveries run
somewhat higher in the second half of the year, Tsubame-3's do not;
every month shows significant variance.
"""

from repro.core.report import report_fig11
from repro.core.seasonal import monthly_ttr


def test_fig11_tsubame2_monthly_ttr(benchmark, t2_log):
    result = benchmark(monthly_ttr, t2_log)
    print("\n" + report_fig11(t2_log))
    first, second = result.half_year_means()
    assert second > first  # the Tsubame-2-only half-year effect


def test_fig11_tsubame3_monthly_ttr(benchmark, t3_log):
    result = benchmark(monthly_ttr, t3_log)
    print("\n" + report_fig11(t3_log))
    first, second = result.half_year_means()
    assert abs(second - first) / first < 0.35  # no clear trend


def test_fig11_every_month_has_variance(t2_log, t3_log):
    for log in (t2_log, t3_log):
        result = monthly_ttr(log)
        wide = sum(
            1 for summary in result.summaries.values()
            if summary.n >= 5 and summary.iqr > 0.3 * summary.median
        )
        populated = sum(
            1 for summary in result.summaries.values() if summary.n >= 5
        )
        assert wide >= 0.7 * populated, log.machine
