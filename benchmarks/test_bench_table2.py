"""Table II — failure categories reported per machine."""

from repro.core.report import report_table2
from repro.core.taxonomy import TSUBAME2_CATEGORIES, TSUBAME3_CATEGORIES


def test_table2_failure_categories(benchmark):
    text = benchmark(report_table2)
    print("\n" + text)
    assert len(TSUBAME2_CATEGORIES) == 17
    assert len(TSUBAME3_CATEGORIES) == 16
    for name in ("Boot", "PBS", "VM", "System Board"):
        assert name in text
    for name in ("Omni-Path", "SXM2-Board", "GPUDriver", "Lustre"):
        assert name in text
