"""Trace benchmark — the trace/replay PR's acceptance criteria, kept
green.

Runs the full :mod:`perf_trace` benchmark, writes ``BENCH_trace.json``,
and asserts the claims: recording a full workload simulation through
the pub/sub bus costs <= 10% wall-clock overhead, replay reproduces
the recording bit-exactly (asserted *inside* the benchmark before any
number is reported), and the codec round trip is byte-identical.  The
overhead floor is asserted at >= 5 interleaved repetitions (the
default 7); reduced-rep smoke runs record their numbers without
asserting a ratio that timing noise cannot honestly support.
"""

import json

import pytest

import perf_trace


@pytest.fixture(scope="module")
def results():
    res = perf_trace.run_benchmark()
    perf_trace.write_report(res)
    return res


def test_report_written_and_loads(results):
    on_disk = json.loads(perf_trace.REPORT_PATH.read_text())
    assert on_disk["schema"] == results["schema"]
    assert set(on_disk) == set(results)


def test_recording_captures_busy_run(results):
    recording = results["recording"]
    # The workload configuration must exercise every event topic; a
    # quiet run would measure nothing.
    assert recording["events_per_run"] > 1000
    assert recording["plain_events_per_s"] > 0


def test_replay_bit_exact_and_report_complete(results):
    assert results["replay"]["bit_exact"] is True
    assert results["replay"]["events"] > 1000
    assert results["codec"]["round_trip_ok"] is True


def test_recording_overhead_floor(results):
    recording = results["recording"]
    if not results["floors_asserted"]:
        pytest.skip(
            f"reps {results['reps']} < 5; measured "
            f"{recording['overhead_pct']:+.1f}% recorded in "
            f"BENCH_trace.json"
        )
    assert recording["overhead_pct"] <= (
        results["overhead_floor_pct"]
    ), recording
