"""Performance bench — the PR 1 acceptance criteria, kept green.

Runs the full :mod:`perf_core` benchmark (1x/10x/100x paper scale plus
the 50-seed sweep), writes ``BENCH_core.json``, and asserts the
invariants that must never regress: the columnar chained-filter +
analysis pass stays >= 10x faster than the pure-Python reference path
at 100x scale, the fast path agrees with the reference output, and the
parallel sweep returns exactly the serial results.

The >2x parallel-speedup criterion is asserted only when the machine
actually has >= 4 cores; on smaller boxes the measured numbers are
still recorded in ``BENCH_core.json`` for the trajectory.
"""

import json

import pytest

import perf_core


@pytest.fixture(scope="module")
def results():
    res = perf_core.run_benchmark()
    perf_core.write_report(res)
    return res


def test_report_written_and_loads(results):
    on_disk = json.loads(perf_core.REPORT_PATH.read_text())
    assert on_disk["schema"] == results["schema"]
    assert set(on_disk["scales"]) == {"1x", "10x", "100x"}
    assert on_disk["scales"]["100x"]["records"] == 89700


def test_analysis_chain_10x_faster_at_100x_scale(results):
    chain = results["scales"]["100x"]["analysis_chain"]
    assert chain["speedup_warm"] >= 10.0, chain


def test_fast_path_matches_reference_everywhere(results):
    for label, scale in results["scales"].items():
        assert scale["analysis_chain"]["parity_ok"], label
        assert scale["filter_chain"]["survivors_match"], label


def test_filter_chain_beats_revalidation_at_scale(results):
    assert results["scales"]["100x"]["filter_chain"]["speedup"] > 1.0


def test_kernels_all_timed(results):
    for label, scale in results["scales"].items():
        assert set(scale["kernels"]) == set(perf_core.KERNELS), label


def test_sweep_parallel_identical_to_serial(results):
    assert results["sweep"]["identical"]


def test_sweep_parallel_speedup(results):
    bench = results["sweep"]
    measured = bench["speedup"]
    if not bench["speedup_asserted"]:
        # Parity (identical) was asserted above on every host; the
        # JSON carries speedup_asserted=false so the single-core
        # ratio is never mistaken for a measured result.
        pytest.skip(
            f"speedup unasserted on this host; measured "
            f"{measured:.2f}x recorded in BENCH_core.json"
        )
    if perf_core.available_cpus() >= 4:
        assert measured > 2.0, bench
    else:
        assert measured > 1.0, bench
