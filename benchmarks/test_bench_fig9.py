"""Figure 9 — cumulative distribution of time to recovery.

Paper: the MTTR is ~55 h on *both* machines and the CDF shapes are
very similar — recovery did not improve across generations even
though the MTBF improved >4x.
"""

import pytest

from repro.core.recovery import ttr_distribution
from repro.core.report import report_fig9
from repro.core.temporal import tbf_distribution


def test_fig9_tsubame2_ttr(benchmark, t2_log):
    result = benchmark(ttr_distribution, t2_log)
    assert result.mttr_hours == pytest.approx(55.0, rel=0.02)


def test_fig9_tsubame3_ttr(benchmark, t3_log):
    result = benchmark(ttr_distribution, t3_log)
    assert result.mttr_hours == pytest.approx(55.0, rel=0.02)


def test_fig9_cross_machine_shape(t2_log, t3_log):
    print("\n" + report_fig9([t2_log, t3_log]))
    t2 = ttr_distribution(t2_log)
    t3 = ttr_distribution(t3_log)
    # MTTR essentially unchanged across generations...
    assert abs(t2.mttr_hours - t3.mttr_hours) / t2.mttr_hours < 0.10
    # ...and the CDF shapes roughly coincide.
    for hours in (10.0, 25.0, 50.0, 100.0, 200.0):
        assert abs(t2.fraction_within(hours)
                   - t3.fraction_within(hours)) < 0.15


def test_fig9_mttr_comparable_to_mtbf_on_t3(t3_log):
    # The paper's alarm: MTTR (~55 h) is the same order as the MTBF
    # (~72 h), so concurrent failures can overlap repairs.
    ttr = ttr_distribution(t3_log).mttr_hours
    tbf = tbf_distribution(t3_log).mtbf_hours
    assert 0.4 < ttr / tbf < 1.5
