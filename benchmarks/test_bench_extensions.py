"""Extension benches — analyses beyond the paper's figures.

Covers the paper's generalizability remark (rack-level non-uniformity),
its future-work direction (proactive, prediction-driven recovery), and
the reliability-growth view of the failure stream.
"""

from repro.core.spatial import rack_failure_distribution
from repro.core.trends import crow_amsaa_fit, windowed_mtbf
from repro.machines.racks import rack_layout_for
from repro.predict import TemporalLocalityPredictor
from repro.sim import ClusterSimulator, ProactiveMaintainer


def test_rack_nonuniformity(benchmark, t2_log, t3_log):
    layout2 = rack_layout_for("tsubame2")
    result2 = benchmark(rack_failure_distribution, t2_log, layout2)
    result3 = rack_failure_distribution(t3_log,
                                        rack_layout_for("tsubame3"))
    for label, result in (("tsubame2", result2), ("tsubame3", result3)):
        print(f"\n{label}: gini {result.gini():.2f}, top-10% racks "
              f"carry {100 * result.concentration(0.1):.0f}% of failures, "
              f"top racks {result.top_racks(3)}")
        # "the non-uniform distribution of failures among racks is also
        # present in multi-GPU-per-node systems" — the paper gives no
        # magnitude, so assert clear non-uniformity.
        assert result.gini() > 0.2
        assert result.concentration(0.1) > 0.15


def test_reliability_growth_near_stationary(benchmark, t2_log):
    fit = benchmark(crow_amsaa_fit, t2_log)
    points = windowed_mtbf(t2_log, window_hours=720.0)
    values = [point.value_hours for point in points]
    print(f"\nCrow-AMSAA beta {fit.beta:.3f}; monthly-window MTBF range "
          f"{min(values):.1f}-{max(values):.1f} h")
    # The historical log shows no strong burn-in/wear-out trend.
    assert 0.8 < fit.beta < 1.25


def test_proactive_prestaging_cuts_waiting(benchmark):
    def run(proactive):
        simulator = ClusterSimulator(
            "tsubame2", seed=5, initial_spares={"GPU": 0}, intensity=2.0
        )
        if proactive:
            maintainer = ProactiveMaintainer(
                simulator.engine,
                simulator.repair,
                TemporalLocalityPredictor(),
                max_prestages=50,
                cooldown_hours=0.0,
            )
            simulator.injector.add_record_listener(maintainer.on_failure)
        return simulator.run(1500.0)

    reactive = benchmark(lambda: run(False))
    proactive = run(True)
    print(f"\nreactive: wait {reactive.mean_waiting_hours:.0f} h, "
          f"{reactive.spare_stockouts} stockouts; proactive: wait "
          f"{proactive.mean_waiting_hours:.0f} h, "
          f"{proactive.spare_stockouts} stockouts")
    assert proactive.mean_waiting_hours < reactive.mean_waiting_hours


def test_concurrent_outages_quantify_rq5_alarm(benchmark, t2_log, t3_log):
    from repro.core.overlap import concurrent_outages

    result2 = benchmark(concurrent_outages, t2_log)
    result3 = concurrent_outages(t3_log)
    for result in (result2, result3):
        print(f"\n{result.machine}: mean open outages "
              f"{result.mean_concurrent():.2f}, overlap "
              f"{100 * result.overlap_fraction:.0f}% of the time, peak "
              f"{result.max_concurrent}, crew for 99% coverage "
              f"{result.implied_repair_parallelism()}")
    # "the MTTR is very comparable to MTBF and hence, it is likely
    # that multiple concurrent failures might impact the
    # handling/repair of previous failures" — on Tsubame-2 overlapping
    # repairs are the common case; still present on Tsubame-3.
    assert result2.overlap_fraction > 0.5
    assert result3.overlap_fraction > 0.1
    assert result2.mean_concurrent() > result3.mean_concurrent()


def test_gpu_rearrangement_flattens_card_wear(benchmark):
    from repro.sim.wear import simulate_card_wear

    def wear(rotation):
        reports = [
            simulate_card_wear(
                "tsubame2",
                num_nodes=200,
                horizon_hours=5.0 * 8760.0,
                rotation_period_hours=rotation,
                seed=seed,
            )
            for seed in range(3)
        ]
        return sum(r.gini() for r in reports) / len(reports)

    static = benchmark(lambda: wear(None))
    rotated = wear(720.0)
    print(f"\ncard-wear gini: static {static:.3f}, monthly rotation "
          f"{rotated:.3f}")
    # "the operations staff could also mitigate this by rearranging
    # the GPUs periodically during maintenance."
    assert rotated < static


def test_job_interruption_probability_drops_across_generations():
    from repro.core.metrics import job_interruption_probability

    sizes = (16, 64, 256)
    for nodes in sizes:
        t2 = job_interruption_probability(15.3, 1408, nodes, 24.0)
        t3 = job_interruption_probability(72.4, 540, nodes, 24.0)
        print(f"\nP(interrupt | {nodes}-node, 24 h job): "
              f"T2 {100 * t2:.1f}%, T3 {100 * t3:.1f}%")
        assert t3 < t2


def test_rate_predictor_sweep_frontier(benchmark, t3_log):
    from repro.predict import best_by_f1, sweep_rate_predictor

    points = benchmark(
        sweep_rate_predictor, t3_log, (1000.0, 4000.0, 8000.0), (2, 3)
    )
    best = best_by_f1(points)
    print(f"\nbest rate-predictor config: window "
          f"{best.window_hours:.0f} h, threshold {best.threshold}, "
          f"recall {best.outcome.recall:.2f}, precision "
          f"{best.outcome.precision:.2f}, F1 {best.f1:.2f}")
    assert best.f1 > 0.25


def test_scenario_practice_transplant(benchmark):
    from repro.core.multigpu import multi_gpu_involvement
    from repro.synth import (
        GeneratorConfig,
        TraceGenerator,
        profile_for,
        with_operational_practices_of,
    )

    counterfactual = with_operational_practices_of(
        profile_for("tsubame2"), profile_for("tsubame3")
    )
    log = benchmark(
        lambda: TraceGenerator(
            counterfactual, GeneratorConfig(seed=42)
        ).generate()
    )
    involvement = multi_gpu_involvement(log, 3)
    print(f"\nTsubame-2 under Tsubame-3 practices: multi-GPU share "
          f"{100 * involvement.multi_gpu_share:.1f}% "
          f"(historical 69.6%)")
    # RQ3's explanation, tested: practice alone collapses the share.
    assert involvement.multi_gpu_share < 0.15


def test_tbf_forecaster_is_calibrated(benchmark, t2_log):
    from repro.predict import evaluate_forecaster

    calibration = benchmark(evaluate_forecaster, t2_log)
    print(f"\nforecast coverage: "
          f"{ {q: round(v, 3) for q, v in calibration.coverage.items()} }"
          f", MAE {calibration.mean_absolute_error_hours:.1f} h over "
          f"{calibration.num_forecasts} forecasts")
    assert calibration.is_calibrated(tolerance=0.08)


def test_failure_stream_is_overdispersed(benchmark, t2_log):
    from repro.core.metrics import tbf_series_hours
    from repro.stats import (
        gap_coefficient_of_variation,
        index_of_dispersion,
        window_counts,
    )

    counts = benchmark(
        window_counts, t2_log.timestamps_hours(), t2_log.span_hours, 60
    )
    dispersion = index_of_dispersion(counts)
    cv = gap_coefficient_of_variation(tbf_series_hours(t2_log))
    print(f"\nindex of dispersion {dispersion:.2f}, gap CV {cv:.2f} "
          f"(Poisson would give ~1.0 for both)")
    assert dispersion > 1.1
    assert cv > 1.1


def test_health_tests_reproduce_table3_reversal(benchmark):
    from repro.core.multigpu import multi_gpu_involvement
    from repro.sim import ClusterSimulator

    def run(effectiveness):
        simulator = ClusterSimulator(
            "tsubame2", seed=8,
            health_test_effectiveness=effectiveness,
        )
        simulator.run(20000.0)
        return multi_gpu_involvement(simulator.injected_log(), 3)

    untested = benchmark(lambda: run(0.0))
    tested = run(0.9)
    print(f"\nmulti-GPU share without health tests "
          f"{100 * untested.multi_gpu_share:.0f}%, with 90%-effective "
          f"health tests {100 * tested.multi_gpu_share:.0f}% "
          f"(paper: 69.6% -> 7.4% across generations)")
    # RQ3's operational mechanism, simulated end to end.
    assert untested.multi_gpu_share > 0.5
    assert tested.multi_gpu_share < 0.3
