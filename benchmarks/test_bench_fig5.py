"""Figure 5 — failure distribution across GPU slots within a node.

Paper: on Tsubame-2, GPU 1 sees ~20% more failures than GPUs 0 and 2;
on Tsubame-3, GPUs 0 and 3 see considerably more than GPUs 1 and 2.
The distributions are non-identical on both machines.
"""

from repro.core.report import report_fig5
from repro.core.spatial import gpu_slot_distribution
from repro.machines.specs import TSUBAME2, TSUBAME3


def test_fig5a_tsubame2_slots(benchmark, t2_log):
    gpu = t2_log.gpu_failures()
    result = benchmark(gpu_slot_distribution, gpu, TSUBAME2.gpu_slots)
    print("\n" + report_fig5(t2_log))
    assert result.counts[1] > result.counts[0]
    assert result.counts[1] > result.counts[2]
    assert 1.05 < result.relative_to_mean(1) < 1.40


def test_fig5b_tsubame3_slots(benchmark, t3_log):
    gpu = t3_log.gpu_failures()
    result = benchmark(gpu_slot_distribution, gpu, TSUBAME3.gpu_slots)
    print("\n" + report_fig5(t3_log))
    inner_max = max(result.counts[1], result.counts[2])
    assert result.counts[0] > inner_max
    assert result.counts[3] > inner_max


def test_fig5_non_identical_on_both(t2_log, t3_log):
    for log, spec in ((t2_log, TSUBAME2), (t3_log, TSUBAME3)):
        result = gpu_slot_distribution(log.gpu_failures(), spec.gpu_slots)
        assert result.imbalance() > 1.15
