"""Figure 12 — failures per month of occurrence.

Paper: monthly failure counts vary visibly, but months with high
failure density are *not* the months with long recoveries — the
density/TTR correlation does not exist (RQ5).
"""

from repro.core.report import report_fig12
from repro.core.seasonal import (
    monthly_failure_counts,
    ttr_density_correlation,
)


def test_fig12_tsubame2_monthly_counts(benchmark, t2_log):
    result = benchmark(monthly_failure_counts, t2_log)
    print("\n" + report_fig12(t2_log))
    assert result.total == len(t2_log)
    series = result.series()
    assert max(series) > 1.3 * min(series)  # visible variation


def test_fig12_tsubame3_monthly_counts(benchmark, t3_log):
    result = benchmark(monthly_failure_counts, t3_log)
    print("\n" + report_fig12(t3_log))
    assert result.total == len(t3_log)
    assert all(count > 0 for count in result.series())


def test_fig12_density_does_not_predict_recovery(t2_log, t3_log):
    for log in (t2_log, t3_log):
        result = ttr_density_correlation(log)
        print(f"\n{log.machine}: pearson r="
              f"{result.pearson.coefficient:+.2f} "
              f"(p={result.pearson.pvalue:.3f}), spearman rho="
              f"{result.spearman.coefficient:+.2f} "
              f"(p={result.spearman.pvalue:.3f})")
        assert result.supports_no_correlation, log.machine
