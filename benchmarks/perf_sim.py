#!/usr/bin/env python3
"""Simulation performance benchmark: the vectorized fault-injection
fast path against the retained per-event reference path, plus the
Monte-Carlo replication engine.

At 1x/10x/100x the Tsubame-2 historical failure intensity over a
2000-hour horizon, this times one full :class:`ClusterSimulator` run
with ``presample=True`` (batched NumPy draw streams + the cluster's
O(1) healthy-node index) against ``presample=False`` (one RNG
round-trip per draw and a fleet-sized ``available_nodes()`` scan per
event — the pre-PR engine, kept precisely so this comparison stays
honest), reporting processed events per second for both.

It then benchmarks :func:`repro.sim.montecarlo.run_replications`:
replications per second serially and across workers, asserting the
two ensembles are bit-identical (the serial-vs-parallel parity
guarantee), and writes ``BENCH_sim.json`` at the repo root next to
``BENCH_core.json``.

Run::

    PYTHONPATH=src python benchmarks/perf_sim.py

Environment knobs: ``REPRO_BENCH_SCALES`` restricts the intensity
tiers (same syntax as perf_core), ``REPRO_BENCH_REPLICATIONS``
resizes the ensemble (CI smoke uses a small one).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.parallel import available_cpus
from repro.sim.montecarlo import run_replications
from repro.sim.simulator import ClusterSimulator

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_sim.json"

BENCH_SEED = 42
BENCH_MACHINE = "tsubame2"
HORIZON_HOURS = 2000.0
#: Intensity multipliers on the historical failure rate.
SCALES = {"1x": 1, "10x": 10, "100x": 100}
ENSEMBLE_REPLICATIONS = 24
ENSEMBLE_HORIZON_HOURS = 500.0
ENSEMBLE_WORKERS = 4


def _selected_scales() -> dict[str, int]:
    """Scales to run, optionally restricted via ``REPRO_BENCH_SCALES``
    (same comma-separated syntax as perf_core)."""
    raw = os.environ.get("REPRO_BENCH_SCALES", "").strip()
    if not raw:
        return dict(SCALES)
    wanted = {
        token if token.endswith("x") else f"{token}x"
        for token in (t.strip() for t in raw.split(","))
        if token
    }
    selected = {
        label: factor
        for label, factor in SCALES.items()
        if label in wanted
    }
    if not selected:
        raise SystemExit(
            f"REPRO_BENCH_SCALES={raw!r} matches no known scale "
            f"(choose from {', '.join(SCALES)})"
        )
    return selected


def _replications() -> int:
    raw = os.environ.get("REPRO_BENCH_REPLICATIONS", "").strip()
    return int(raw) if raw else ENSEMBLE_REPLICATIONS


def _best_of(fn, repeats: int = 3):
    """Best wall-clock of ``repeats`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_once(intensity: float, presample: bool):
    """One full simulation; returns (events processed, report)."""
    simulator = ClusterSimulator(
        BENCH_MACHINE,
        seed=BENCH_SEED,
        intensity=intensity,
        presample=presample,
        keep_injected_log=False,
    )
    report = simulator.run(HORIZON_HOURS)
    return simulator.engine.processed, report


def _bench_scale(factor: int) -> dict:
    intensity = float(factor)
    fast_s, (fast_events, fast_report) = _best_of(
        lambda: _run_once(intensity, presample=True)
    )
    # The reference path is O(nodes) per event; one repeat is plenty.
    ref_s, (ref_events, ref_report) = _best_of(
        lambda: _run_once(intensity, presample=False), repeats=1
    )
    return {
        "intensity": intensity,
        "horizon_hours": HORIZON_HOURS,
        "fast": {
            "wall_s": fast_s,
            "events": fast_events,
            "events_per_s": fast_events / fast_s if fast_s else 0.0,
            "failures": fast_report.failures_injected,
        },
        "reference": {
            "wall_s": ref_s,
            "events": ref_events,
            "events_per_s": ref_events / ref_s if ref_s else 0.0,
            "failures": ref_report.failures_injected,
        },
        # Per-event cost ratio: the honest apples-to-apples number
        # (the two paths consume their RNG streams differently, so
        # event counts differ slightly at the same seed).
        "speedup": (
            (fast_events / fast_s) / (ref_events / ref_s)
            if fast_s and ref_s and ref_events
            else float("inf")
        ),
    }


def _bench_ensemble() -> dict:
    replications = _replications()

    def serial():
        return run_replications(
            BENCH_MACHINE,
            replications=replications,
            horizon_hours=ENSEMBLE_HORIZON_HOURS,
            seed=BENCH_SEED,
            intensity=10.0,
        )

    def parallel():
        return run_replications(
            BENCH_MACHINE,
            replications=replications,
            horizon_hours=ENSEMBLE_HORIZON_HOURS,
            seed=BENCH_SEED,
            intensity=10.0,
            max_workers=ENSEMBLE_WORKERS,
        )

    start = time.perf_counter()
    serial_report = serial()
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_report = parallel()
    parallel_s = time.perf_counter() - start
    parity = serial_report == parallel_report
    assert parity, (
        "serial and parallel ensembles diverged — the determinism "
        "contract of run_replications is broken"
    )
    return {
        "replications": replications,
        "horizon_hours": ENSEMBLE_HORIZON_HOURS,
        "workers": ENSEMBLE_WORKERS,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "serial_replications_per_s": (
            replications / serial_s if serial_s else 0.0
        ),
        "parallel_replications_per_s": (
            replications / parallel_s if parallel_s else 0.0
        ),
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "parity_ok": parity,
        # Parity is asserted everywhere; an actual speedup is only a
        # meaningful claim on a multi-core host.  On fewer cores the
        # timings are still recorded but the flag tells consumers
        # (and the bench tests) not to read the ratio as a result.
        "speedup_asserted": available_cpus() >= 2,
        "mean_availability": serial_report.availability.mean,
    }


def run_benchmark() -> dict:
    return {
        "schema": 1,
        "seed": BENCH_SEED,
        "machine": BENCH_MACHINE,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scales": {
            label: _bench_scale(factor)
            for label, factor in _selected_scales().items()
        },
        "ensemble": _bench_ensemble(),
    }


def write_report(results: dict, path: Path = REPORT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main() -> None:
    results = run_benchmark()
    for label, scale in results["scales"].items():
        fast = scale["fast"]
        ref = scale["reference"]
        print(
            f"{label:>4} intensity: fast {fast['events_per_s']:,.0f} "
            f"events/s ({fast['events']} events in "
            f"{fast['wall_s'] * 1e3:.1f} ms) vs reference "
            f"{ref['events_per_s']:,.0f} events/s "
            f"({scale['speedup']:.1f}x per-event)"
        )
    ensemble = results["ensemble"]
    print(
        f"ensemble ({ensemble['replications']} replications, "
        f"{ensemble['workers']} workers on "
        f"{results['cpu_count']} cores): "
        f"{ensemble['serial_replications_per_s']:.1f} rep/s serial vs "
        f"{ensemble['parallel_replications_per_s']:.1f} rep/s parallel "
        f"({ensemble['speedup']:.2f}x), "
        f"parity={ensemble['parity_ok']}"
    )
    path = write_report(results)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
