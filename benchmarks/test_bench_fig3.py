"""Figure 3 — Tsubame-3 software-failure root loci (top 16).

Paper: 171 reported root loci; ~43% GPU-driver-related; ~20% with no
known cause; kernel panics and Lustre bugs are rare.
"""

import pytest

from repro.core.breakdown import software_root_loci
from repro.core.report import report_fig3


def test_fig3_software_root_loci(benchmark, t3_log):
    result = benchmark(software_root_loci, t3_log)
    print("\n" + report_fig3(t3_log))
    assert result.total_software == 171
    assert result.share_of("gpu_driver") == pytest.approx(0.43, abs=0.02)
    assert result.share_of("unknown") == pytest.approx(0.20, abs=0.02)
    assert result.share_of("kernel_panic") < 0.03
    assert result.share_of("lustre_bug") < 0.03
    # gpu_driver is the top bar, unknown the second.
    top = [entry.category for entry in result.top(2)]
    assert top == ["gpu_driver", "unknown"]
