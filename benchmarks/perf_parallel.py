#!/usr/bin/env python3
"""Parallel-substrate benchmark: warm pool, shm handoff, stealing.

Four sections, written to ``BENCH_parallel.json`` at the repo root:

* ``pool`` — the warm-pool claim: the same small parallel sweep timed
  cold (first dispatch pays the executor spawn) and warm (singleton
  reused), with the spawn counter proving the second sweep paid no
  cold start.
* ``ensemble`` — the headline number: serial vs 4-worker
  :func:`repro.sim.montecarlo.run_replications`, bit-exact parity
  asserted, with ``speedup_asserted`` false on hosts without the
  cores to honestly claim a ratio (never a <1x regression recorded
  as a passing result).
* ``shm`` — the zero-copy claim, measured: per-task serialized
  payload for a grid sweep over one log, old style (the log pickled
  into every task tuple) vs the shared-memory spec each chunk now
  carries — O(dataset bytes) down to O(metadata) — plus bit-parity
  of a shared-payload sweep against its serial twin.
* ``stealing`` — work-stealing under adversarially uneven lengths:
  one 50x-long item among 31 short ones.  Sleep-based, so workers
  overlap even on a single-core host: the parallel wall must beat
  the serial sum on any machine.

Run::

    PYTHONPATH=src python benchmarks/perf_parallel.py

Environment knobs: ``REPRO_BENCH_REPLICATIONS`` resizes the ensemble
(CI smoke uses a small one); ``REPRO_CHUNK_TARGET_MS`` tunes the
autotuner's chunk duration target.
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time
from pathlib import Path

import numpy as np

from repro.parallel import (
    SharedPayload,
    available_cpus,
    pool_stats,
    shutdown_pool,
    sweep,
)
from repro.predict.tuning import sweep_rate_predictor
from repro.sim.montecarlo import run_replications
from repro.synth import GeneratorConfig, generate_log

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_parallel.json"

BENCH_SEED = 42
BENCH_MACHINE = "tsubame2"
POOL_WORKERS = 4
ENSEMBLE_REPLICATIONS = 24
ENSEMBLE_HORIZON_HOURS = 500.0
STEALING_SHORT_S = 0.01
STEALING_LONG_S = 0.5
STEALING_ITEMS = 32


def _replications() -> int:
    raw = os.environ.get("REPRO_BENCH_REPLICATIONS", "").strip()
    return int(raw) if raw else ENSEMBLE_REPLICATIONS


def _square(seed: int) -> int:
    return seed * seed


def _sleep_item(task: tuple[int, float]) -> int:
    index, duration = task
    time.sleep(duration)
    return index


def _bench_pool() -> dict:
    """Cold vs warm dispatch of an identical small sweep."""
    seeds = list(range(64))
    shutdown_pool()
    start = time.perf_counter()
    cold = sweep(_square, seeds, processes=POOL_WORKERS)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = sweep(_square, seeds, processes=POOL_WORKERS)
    warm_s = time.perf_counter() - start
    stats = pool_stats()
    assert cold == warm == [s * s for s in seeds]
    return {
        "items": len(seeds),
        "workers": POOL_WORKERS,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_vs_cold": cold_s / warm_s if warm_s else float("inf"),
        # One executor spawn across both sweeps == the warm pool
        # actually got reused; this is the assertable claim (wall
        # clocks on a loaded host are not).
        "spawns": stats["spawns"] if stats else None,
        "parity_ok": cold == warm,
    }


def _bench_ensemble() -> dict:
    replications = _replications()

    def run(max_workers):
        return run_replications(
            BENCH_MACHINE,
            replications=replications,
            horizon_hours=ENSEMBLE_HORIZON_HOURS,
            seed=BENCH_SEED,
            intensity=10.0,
            max_workers=max_workers,
        )

    start = time.perf_counter()
    serial_report = run(None)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_report = run(POOL_WORKERS)
    parallel_s = time.perf_counter() - start
    parity = serial_report == parallel_report
    assert parity, (
        "serial and parallel ensembles diverged — the determinism "
        "contract of run_replications is broken"
    )
    return {
        "replications": replications,
        "horizon_hours": ENSEMBLE_HORIZON_HOURS,
        "workers": POOL_WORKERS,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "parity_ok": parity,
        "speedup_asserted": available_cpus() >= 2,
    }


def _bench_shm() -> dict:
    """Per-task payload bytes: pickled-log tasks vs the shm spec."""
    log = generate_log(
        "tsubame2",
        config=GeneratorConfig(seed=BENCH_SEED, num_failures=1400),
    )
    log.columns  # populate the columnar cache, as a hot caller would
    grid = dict(window_grid=(336.0, 1000.0), threshold_grid=(2, 3))
    log_pickle_bytes = len(pickle.dumps(log))
    # What the old substrate shipped per task: the log inside every
    # task tuple.
    per_task_old = len(pickle.dumps((log, 336.0, 2)))
    payload = SharedPayload(log)
    try:
        per_chunk_new = payload.spec_nbytes()
    finally:
        payload.close()

    start = time.perf_counter()
    serial = sweep_rate_predictor(log, **grid)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = sweep_rate_predictor(log, **grid, processes=POOL_WORKERS)
    parallel_s = time.perf_counter() - start
    parity = serial == parallel
    assert parity, (
        "shared-memory grid sweep diverged from the serial run — "
        "the zero-copy handoff is not bit-transparent"
    )
    return {
        "log_failures": len(log),
        "log_pickle_bytes": log_pickle_bytes,
        "per_task_payload_bytes_old": per_task_old,
        "per_chunk_payload_bytes_new": per_chunk_new,
        "payload_shrink_factor": (
            per_task_old / per_chunk_new
            if per_chunk_new
            else float("inf")
        ),
        "grid_points": len(serial),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "parity_ok": parity,
        "speedup_asserted": available_cpus() >= 2,
    }


def _bench_stealing() -> dict:
    """One long item among short ones; sleeps overlap across worker
    processes regardless of core count, so the parallel wall must
    beat the serial sum everywhere."""
    tasks = [
        (
            index,
            STEALING_LONG_S if index == 7 else STEALING_SHORT_S,
        )
        for index in range(STEALING_ITEMS)
    ]
    serial_sum = sum(duration for _, duration in tasks)
    sweep(_sleep_item, tasks, processes=POOL_WORKERS)  # warm + tune
    start = time.perf_counter()
    results = sweep(_sleep_item, tasks, processes=POOL_WORKERS)
    parallel_s = time.perf_counter() - start
    ordered = results == list(range(STEALING_ITEMS))
    assert ordered, "stealing dispatch broke input ordering"
    return {
        "items": STEALING_ITEMS,
        "long_item_s": STEALING_LONG_S,
        "short_item_s": STEALING_SHORT_S,
        "workers": POOL_WORKERS,
        "serial_sum_s": serial_sum,
        "parallel_s": parallel_s,
        "speedup_vs_serial_sum": (
            serial_sum / parallel_s if parallel_s else float("inf")
        ),
        "ordered_ok": ordered,
    }


def run_benchmark() -> dict:
    return {
        "schema": 1,
        "seed": BENCH_SEED,
        "machine": BENCH_MACHINE,
        "cpu_count": os.cpu_count() or 1,
        "available_cpus": available_cpus(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "pool": _bench_pool(),
        "ensemble": _bench_ensemble(),
        "shm": _bench_shm(),
        "stealing": _bench_stealing(),
    }


def write_report(results: dict, path: Path = REPORT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main() -> None:
    results = run_benchmark()
    pool = results["pool"]
    print(
        f"pool: cold {pool['cold_s'] * 1e3:.1f} ms vs warm "
        f"{pool['warm_s'] * 1e3:.1f} ms "
        f"({pool['warm_vs_cold']:.1f}x), spawns={pool['spawns']}"
    )
    ensemble = results["ensemble"]
    print(
        f"ensemble ({ensemble['replications']} replications, "
        f"{ensemble['workers']} workers on "
        f"{results['available_cpus']} schedulable cores): "
        f"{ensemble['serial_s']:.2f}s serial vs "
        f"{ensemble['parallel_s']:.2f}s parallel "
        f"({ensemble['speedup']:.2f}x, "
        f"asserted={ensemble['speedup_asserted']}), "
        f"parity={ensemble['parity_ok']}"
    )
    shm = results["shm"]
    print(
        f"shm: per-task payload {shm['per_task_payload_bytes_old']:,} B"
        f" -> {shm['per_chunk_payload_bytes_new']:,} B per chunk "
        f"({shm['payload_shrink_factor']:.0f}x smaller), "
        f"parity={shm['parity_ok']}"
    )
    stealing = results["stealing"]
    print(
        f"stealing: {stealing['serial_sum_s']:.2f}s of sleep drained "
        f"in {stealing['parallel_s']:.2f}s "
        f"({stealing['speedup_vs_serial_sum']:.1f}x), "
        f"ordered={stealing['ordered_ok']}"
    )
    path = write_report(results)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
