"""Table I — Tsubame-2 / Tsubame-3 node configurations."""

from repro.core.report import report_table1
from repro.machines.specs import TSUBAME2, TSUBAME3


def test_table1_node_configurations(benchmark):
    text = benchmark(report_table1)
    print("\n" + text)
    # Paper row checks.
    assert "Intel Xeon X5670" in text
    assert "NVIDIA Tesla P100" in text
    assert TSUBAME2.gpus_per_node == 3
    assert TSUBAME3.gpus_per_node == 4
    # The component-inventory argument quoted in Section III.
    assert TSUBAME2.total_compute_components == 7040
    assert TSUBAME3.total_compute_components == 3240
