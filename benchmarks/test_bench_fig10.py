"""Figure 10 — time to recovery per failure type.

Paper: hardware categories show wider recovery-time spread than
software ones; infrequent categories can carry extreme tails (SSD
~290 h on Tsubame-2 at ~4% of failures; power board ~230 h on
Tsubame-3 at ~1%).
"""

import pytest

from repro.core.recovery import (
    class_spread_comparison,
    ttr_by_category,
    ttr_distribution,
)
from repro.core.report import report_fig10
from repro.core.taxonomy import FailureClass


def test_fig10_tsubame2_ttr_by_type(benchmark, t2_log):
    entries = benchmark(ttr_by_category, t2_log)
    print("\n" + report_fig10(t2_log))
    means = [e.mean_hours for e in entries]
    assert means == sorted(means)
    by_name = {e.category: e for e in entries}
    ssd = by_name["SSD"]
    assert ssd.share_of_failures == pytest.approx(0.04, abs=0.01)
    assert ssd.max_hours > 150.0  # the long-recovery anecdote


def test_fig10_tsubame3_ttr_by_type(benchmark, t3_log):
    entries = benchmark(ttr_by_category, t3_log)
    print("\n" + report_fig10(t3_log))
    by_name = {e.category: e for e in entries}
    power = by_name["Power-Board"]
    assert power.share_of_failures < 0.02
    assert power.max_hours > 100.0
    # Rare but expensive: its mean TTR is well above the system MTTR.
    assert power.mean_hours > 1.5 * ttr_distribution(t3_log).mttr_hours


def test_fig10_hardware_spread_exceeds_software(t2_log, t3_log):
    for log in (t2_log, t3_log):
        spreads = class_spread_comparison(log)
        assert (spreads[FailureClass.HARDWARE]
                > spreads[FailureClass.SOFTWARE]), log.machine


def test_fig10_frequency_does_not_predict_impact(t2_log):
    entries = ttr_by_category(t2_log)
    by_impact = sorted(entries, key=lambda e: -e.impact_hours)
    by_share = sorted(entries, key=lambda e: -e.share_of_failures)
    # The impact ranking differs from the frequency ranking: operators
    # must not look only at frequent failures.
    assert [e.category for e in by_impact[:5]] != [
        e.category for e in by_share[:5]
    ]
