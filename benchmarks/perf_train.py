#!/usr/bin/env python3
"""Training-simulation performance benchmark: gang-scheduled runs on
the 1024-node A100 fleet, plus the training Monte-Carlo ensemble.

At increasing failure intensities over a 2000-hour horizon, this
times one full :class:`ClusterSimulator` run carrying a 512-node
gang-training job (simulator + injector + repair + gang accounting),
reporting processed engine events per second and the run's measured
ETTR.  It then benchmarks
:func:`repro.train.montecarlo.run_train_replications`: replications
per second serially and across workers, asserting the two ensembles
are bit-identical (the same serial-vs-parallel parity contract as
``perf_sim``), and writes ``BENCH_train.json`` at the repo root next
to ``BENCH_sim.json``.

Run::

    PYTHONPATH=src python benchmarks/perf_train.py

Environment knobs: ``REPRO_BENCH_SCALES`` restricts the intensity
tiers (same comma-separated syntax as perf_core/perf_sim),
``REPRO_BENCH_REPLICATIONS`` resizes the ensemble (CI smoke uses a
small one).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.parallel import available_cpus
from repro.sim.checkpoint import young_daly_policy
from repro.sim.simulator import ClusterSimulator
from repro.train.config import TrainingJobConfig
from repro.train.montecarlo import run_train_replications

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_train.json"

BENCH_SEED = 42
BENCH_MACHINE = "a100"  # the 1024-node modern fleet
GANG_NODES = 512
HORIZON_HOURS = 2000.0
CHECKPOINT_COST_HOURS = 0.25
#: Intensity multipliers on the calibrated failure rate.
SCALES = {"1x": 1, "4x": 4, "16x": 16}
ENSEMBLE_REPLICATIONS = 16
ENSEMBLE_HORIZON_HOURS = 500.0
ENSEMBLE_GANG_NODES = 256
ENSEMBLE_WORKERS = 4


def _selected_scales() -> dict[str, int]:
    """Scales to run, optionally restricted via ``REPRO_BENCH_SCALES``
    (same comma-separated syntax as perf_core)."""
    raw = os.environ.get("REPRO_BENCH_SCALES", "").strip()
    if not raw:
        return dict(SCALES)
    wanted = {
        token if token.endswith("x") else f"{token}x"
        for token in (t.strip() for t in raw.split(","))
        if token
    }
    selected = {
        label: factor
        for label, factor in SCALES.items()
        if label in wanted
    }
    if not selected:
        raise SystemExit(
            f"REPRO_BENCH_SCALES={raw!r} matches no known scale "
            f"(choose from {', '.join(SCALES)})"
        )
    return selected


def _replications() -> int:
    raw = os.environ.get("REPRO_BENCH_REPLICATIONS", "").strip()
    return int(raw) if raw else ENSEMBLE_REPLICATIONS


def _best_of(fn, repeats: int = 3):
    """Best wall-clock of ``repeats`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _policy(gang_nodes: int, intensity: float):
    """Young/Daly policy for the gang's MTBF on the bench machine."""
    from repro.machines.specs import get_machine

    spec = get_machine(BENCH_MACHINE)
    system_mtbf = spec.log_span_hours / (
        spec.reported_failures * intensity
    )
    job_mtbf = system_mtbf * spec.num_nodes / gang_nodes
    return young_daly_policy(CHECKPOINT_COST_HOURS, job_mtbf)


def _run_once(intensity: float):
    """One full gang-training simulation; returns (events, report).

    The checkpoint policy is tuned for the *nominal* (1x) failure
    rate at every tier — the intensity multiplier models the fleet
    failing harder than the operator planned for, which is exactly
    the stress the ETTR column measures.  (It also keeps the policy
    valid: at 16x the true job MTBF drops below the checkpoint cost,
    a regime ``young_daly_policy`` rightly refuses to tune for.)
    """
    simulator = ClusterSimulator(
        BENCH_MACHINE,
        seed=BENCH_SEED,
        intensity=intensity,
        keep_injected_log=False,
        checkpoint_policy=_policy(GANG_NODES, 1.0),
        train=TrainingJobConfig(num_nodes=GANG_NODES),
    )
    report = simulator.run(HORIZON_HOURS)
    return simulator.engine.processed, report


def _bench_scale(factor: int) -> dict:
    intensity = float(factor)
    wall_s, (events, report) = _best_of(lambda: _run_once(intensity))
    stats = report.train
    return {
        "intensity": intensity,
        "horizon_hours": HORIZON_HOURS,
        "gang_nodes": GANG_NODES,
        "wall_s": wall_s,
        "events": events,
        "events_per_s": events / wall_s if wall_s else 0.0,
        "failures": report.failures_injected,
        "interrupts": stats.interrupts,
        "ettr": stats.ettr,
        "lost_work_hours": stats.lost_work_hours,
    }


def _bench_ensemble() -> dict:
    replications = _replications()
    policy = _policy(ENSEMBLE_GANG_NODES, 1.0)
    train = TrainingJobConfig(num_nodes=ENSEMBLE_GANG_NODES)

    def run(max_workers):
        return run_train_replications(
            BENCH_MACHINE,
            replications=replications,
            horizon_hours=ENSEMBLE_HORIZON_HOURS,
            checkpoint_policy=policy,
            train=train,
            seed=BENCH_SEED,
            max_workers=max_workers,
        )

    start = time.perf_counter()
    serial_report = run(None)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_report = run(ENSEMBLE_WORKERS)
    parallel_s = time.perf_counter() - start
    parity = serial_report == parallel_report
    assert parity, (
        "serial and parallel training ensembles diverged — the "
        "determinism contract of run_train_replications is broken"
    )
    return {
        "replications": replications,
        "horizon_hours": ENSEMBLE_HORIZON_HOURS,
        "gang_nodes": ENSEMBLE_GANG_NODES,
        "workers": ENSEMBLE_WORKERS,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "serial_replications_per_s": (
            replications / serial_s if serial_s else 0.0
        ),
        "parallel_replications_per_s": (
            replications / parallel_s if parallel_s else 0.0
        ),
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "parity_ok": parity,
        # Same convention as perf_sim: the ratio is only a claim on a
        # host with enough cores to show one.
        "speedup_asserted": available_cpus() >= 2,
        "mean_ettr": serial_report.ettr.mean,
    }


def run_benchmark() -> dict:
    return {
        "schema": 1,
        "seed": BENCH_SEED,
        "machine": BENCH_MACHINE,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scales": {
            label: _bench_scale(factor)
            for label, factor in _selected_scales().items()
        },
        "ensemble": _bench_ensemble(),
    }


def write_report(results: dict, path: Path = REPORT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main() -> None:
    results = run_benchmark()
    for label, scale in results["scales"].items():
        print(
            f"{label:>4} intensity: {scale['events_per_s']:,.0f} "
            f"events/s ({scale['events']} events in "
            f"{scale['wall_s'] * 1e3:.1f} ms), "
            f"{scale['interrupts']} interrupts, "
            f"ETTR {scale['ettr']:.4f}"
        )
    ensemble = results["ensemble"]
    print(
        f"ensemble ({ensemble['replications']} replications of a "
        f"{ensemble['gang_nodes']}-node gang, "
        f"{ensemble['workers']} workers on "
        f"{results['cpu_count']} cores): "
        f"{ensemble['serial_replications_per_s']:.1f} rep/s serial vs "
        f"{ensemble['parallel_replications_per_s']:.1f} rep/s parallel "
        f"({ensemble['speedup']:.2f}x), "
        f"parity={ensemble['parity_ok']}, "
        f"mean ETTR {ensemble['mean_ettr']:.4f}"
    )
    path = write_report(results)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
