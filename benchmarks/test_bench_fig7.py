"""Figure 7 — time between failures per failure type.

Paper: GPU and software failures have the lowest median TBF on both
machines; memory- and CPU-related failures have much higher medians
and higher spreads.
"""

from repro.core.report import report_fig7
from repro.core.temporal import tbf_by_category


def test_fig7_tsubame2_tbf_by_type(benchmark, t2_log):
    entries = benchmark(tbf_by_category, t2_log)
    print("\n" + report_fig7(t2_log))
    by_name = {e.category: e for e in entries}
    means = [e.mean_hours for e in entries]
    assert means == sorted(means)  # sorted by mean, as the paper plots
    assert by_name["GPU"].median_hours == min(
        e.median_hours for e in entries
    )
    assert by_name["Memory"].median_hours > by_name["GPU"].median_hours
    assert by_name["CPU"].median_hours > by_name["GPU"].median_hours


def test_fig7_tsubame3_tbf_by_type(benchmark, t3_log):
    entries = benchmark(tbf_by_category, t3_log)
    print("\n" + report_fig7(t3_log))
    by_name = {e.category: e for e in entries}
    # Software is the most frequent type => smallest gaps.
    assert by_name["Software"].median_hours == min(
        e.median_hours for e in entries
    )
    assert by_name["Memory"].median_hours > by_name["GPU"].median_hours
    assert by_name["CPU"].median_hours > by_name["GPU"].median_hours


def test_fig7_rare_types_have_higher_absolute_spread(t2_log):
    by_name = {e.category: e for e in tbf_by_category(t2_log)}
    # CPU/Memory spread (in hours) far exceeds GPU's.
    assert by_name["CPU"].spread_hours > by_name["GPU"].spread_hours
    assert by_name["Memory"].spread_hours > by_name["GPU"].spread_hours
