"""Table III — number of GPUs involved per node failure.

Paper (exact counts): Tsubame-2 — 112 / 128 / 128 over 368 failures
(~70% multi-GPU); Tsubame-3 — 75 / 4 / 2 / 0 over 81 failures (92.6%
single-GPU, none involving all four).
"""

import pytest

from repro.core.multigpu import multi_gpu_involvement
from repro.core.report import report_table3


def test_table3_tsubame2(benchmark, t2_log):
    result = benchmark(multi_gpu_involvement, t2_log, 3)
    print("\n" + report_table3(t2_log))
    assert result.counts == {1: 112, 2: 128, 3: 128}
    assert result.total == 368
    assert result.share_of(1) == pytest.approx(0.3044, abs=0.001)
    assert result.multi_gpu_share == pytest.approx(0.6956, abs=0.001)


def test_table3_tsubame3(benchmark, t3_log):
    result = benchmark(multi_gpu_involvement, t3_log, 4)
    print("\n" + report_table3(t3_log))
    assert result.counts.get(1) == 75
    assert result.counts.get(2) == 4
    assert result.counts.get(3) == 2
    assert result.counts.get(4, 0) == 0
    assert result.total == 81
    assert result.share_of(1) == pytest.approx(0.926, abs=0.001)


def test_table3_crossover_multi_gpu_share_flips(t2_log, t3_log):
    # The surprising reversal: multi-GPU involvement collapses from
    # ~70% to <8% despite one *more* GPU per node.
    t2 = multi_gpu_involvement(t2_log, 3).multi_gpu_share
    t3 = multi_gpu_involvement(t3_log, 4).multi_gpu_share
    assert t2 > 0.6
    assert t3 < 0.08
