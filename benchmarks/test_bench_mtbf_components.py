"""RQ4 text numbers — per-component-class MTBF and the paper's
performance-error-proportionality metric.

Paper: GPU MTBF improved from 21.94 h to 226.48 h (~10x with the
paper's estimator) though the GPU count only halved; CPU MTBF improved
from 537.6 h to 1593.6 h (~3x) with the CPU count down ~3x.  Tsubame-3
does far more useful work per failure-free period.  (We use the
span/count estimator — absolute values differ, the ratios hold; see
EXPERIMENTS.md.)
"""

from repro.core.metrics import performance_error_proportionality
from repro.core.report import report_component_mtbf
from repro.core.temporal import component_class_mtbf
from repro.machines.specs import TSUBAME2, TSUBAME3


def test_component_mtbf_tsubame2(benchmark, t2_log):
    result = benchmark(component_class_mtbf, t2_log)
    assert 25.0 < result.gpu_mtbf_hours < 45.0   # paper: 21.94 h
    assert 500.0 < result.cpu_mtbf_hours < 1200.0  # paper: 537.6 h


def test_component_mtbf_tsubame3(benchmark, t3_log):
    result = benchmark(component_class_mtbf, t3_log)
    assert 180.0 < result.gpu_mtbf_hours < 330.0   # paper: 226.48 h
    assert 1300.0 < result.cpu_mtbf_hours < 3000.0  # paper: 1593.6 h


def test_gpu_improvement_outpaces_component_reduction(t2_log, t3_log):
    print("\n" + report_component_mtbf([t2_log, t3_log]))
    t2 = component_class_mtbf(t2_log)
    t3 = component_class_mtbf(t3_log)
    gpu_gain = t3.gpu_improvement_over(t2)
    gpu_count_drop = TSUBAME2.total_gpus / TSUBAME3.total_gpus
    # The reliability gain (paper ~10x; ~7.5x with our estimator) far
    # exceeds the mere 2x reduction in GPU inventory.
    assert gpu_gain > 2.0 * gpu_count_drop
    cpu_gain = t3.cpu_improvement_over(t2)
    assert 1.5 < cpu_gain < 5.0  # paper: ~3x


def test_performance_error_proportionality(t2_log, t3_log):
    t2 = performance_error_proportionality(t2_log, TSUBAME2)
    t3 = performance_error_proportionality(t3_log, TSUBAME3)
    ratio = t3.ratio_to(t2)
    print(f"\nFLOP per failure-free period: T2 "
          f"{t2.flop_per_failure_free_period:.3e}, T3 "
          f"{t3.flop_per_failure_free_period:.3e} ({ratio:.1f}x)")
    # ~5.3x Rpeak and ~4.7x MTBF compound to >20x useful work per
    # failure-free period.
    assert ratio > 15.0
    # But resilience-proportionality does NOT match raw compute growth
    # alone: the MTBF factor contributes materially.
    mtbf_factor = t3.mtbf_hours / t2.mtbf_hours
    assert mtbf_factor > 4.0
