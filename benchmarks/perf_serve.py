#!/usr/bin/env python3
"""Serving-layer benchmark: cache, coalescing, and sustained load.

Stands up a real :mod:`repro.serve` server (background thread, TCP
socket, stdlib ``http.client`` — the same path production traffic
takes) and measures the three properties ``docs/SERVING.md`` promises:

* **cold vs cached latency** — one Monte-Carlo simulate request cold,
  then the same request repeatedly against the warm cache; the
  acceptance bar is a >= 10x speedup.
* **single-flight coalescing** — N identical concurrent simulate
  requests on a fresh key must cost exactly **one** backend
  execution; the report records the measured executions and the
  coalescing factor N/executions.
* **sustained cached throughput** — concurrent clients hammering a
  warm analysis endpoint, reported as requests per second.

Writes ``BENCH_serve.json`` at the repo root next to
``BENCH_core.json``/``BENCH_sim.json``.

Run::

    PYTHONPATH=src python benchmarks/perf_serve.py

Environment knobs (CI smoke uses small values):
``REPRO_BENCH_SERVE_REPLICATIONS`` (ensemble size of the simulate
probe), ``REPRO_BENCH_SERVE_CLIENTS`` (concurrent clients),
``REPRO_BENCH_SERVE_REQUESTS`` (requests per client in the sustained
phase).
"""

from __future__ import annotations

import http.client
import json
import os
import platform
import statistics
import threading
import time
from pathlib import Path

from repro.serve import DatasetRegistry, ReproApp, run_in_thread

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_serve.json"

BENCH_SEED = 42
SIMULATE_HORIZON_HOURS = 300.0
CACHED_SAMPLES = 30
DEFAULT_REPLICATIONS = 4
DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS_PER_CLIENT = 50


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _request(
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
) -> tuple[int, bytes, str | None, float]:
    """One request on a fresh connection.

    Returns (status, body, X-Cache header, seconds).
    """
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        body = (
            json.dumps(payload).encode() if payload is not None else None
        )
        start = time.perf_counter()
        conn.request(method, path, body)
        response = conn.getresponse()
        data = response.read()
        elapsed = time.perf_counter() - start
        return response.status, data, response.getheader("X-Cache"), elapsed
    finally:
        conn.close()


def _make_app() -> ReproApp:
    registry = DatasetRegistry()
    registry.synthesize("t2", "tsubame2", seed=BENCH_SEED)
    registry.synthesize("t3", "tsubame3", seed=BENCH_SEED)
    # Generous admission so the benchmark measures the serving layer,
    # not a deliberately tight queue.
    return ReproApp(
        registry,
        workers=min(4, os.cpu_count() or 1),
        cache_size=1024,
        cache_ttl_seconds=None,
        max_inflight=32,
        max_queue=256,
    )


def _bench_latency(port: int, replications: int) -> dict:
    """Cold-vs-cached latency of one simulate request."""
    payload = {
        "machine": "tsubame2",
        "replications": replications,
        "horizon_hours": SIMULATE_HORIZON_HOURS,
        "seed": 7,
    }
    status, cold_body, tag, cold_s = _request(
        port, "POST", "/simulate", payload
    )
    assert status == 200, f"cold simulate failed: {status}"
    assert tag == "miss", f"cold request unexpectedly {tag}"
    # Cached samples reuse ONE keep-alive connection: a fresh TCP
    # handshake per request would swamp the sub-millisecond cache hit
    # and understate the speedup this benchmark exists to measure.
    cached: list[float] = []
    body_bytes = json.dumps(payload).encode()
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        for _ in range(CACHED_SAMPLES):
            start = time.perf_counter()
            conn.request("POST", "/simulate", body_bytes)
            response = conn.getresponse()
            body = response.read()
            cached.append(time.perf_counter() - start)
            assert response.status == 200
            assert response.getheader("X-Cache") == "hit"
            assert body == cold_body, "cache hit was not byte-identical"
    finally:
        conn.close()
    cached_s = statistics.median(cached)
    return {
        "replications": replications,
        "horizon_hours": SIMULATE_HORIZON_HOURS,
        "cold_ms": cold_s * 1e3,
        "cached_ms": cached_s * 1e3,
        "cached_samples": CACHED_SAMPLES,
        "speedup": cold_s / cached_s if cached_s else float("inf"),
        "byte_identical": True,
    }


def _bench_coalescing(
    app: ReproApp, port: int, clients: int, replications: int
) -> dict:
    """N identical concurrent requests -> exactly one execution."""
    payload = {
        "machine": "tsubame3",
        "replications": replications,
        "horizon_hours": SIMULATE_HORIZON_HOURS,
        "seed": 99,  # fresh key: not in cache
    }
    executions_before = app.singleflight.executions
    barrier = threading.Barrier(clients)
    statuses: list[int] = []
    bodies: set[bytes] = set()
    lock = threading.Lock()

    def worker() -> None:
        barrier.wait()
        status, body, _, _ = _request(port, "POST", "/simulate", payload)
        with lock:
            statuses.append(status)
            bodies.add(body)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    executions = app.singleflight.executions - executions_before
    assert statuses == [200] * clients, f"failures: {statuses}"
    assert len(bodies) == 1, "coalesced responses diverged"
    return {
        "concurrent_requests": clients,
        "backend_executions": executions,
        "coalescing_factor": clients / executions if executions else 0.0,
        "wall_s": wall_s,
        "all_identical": True,
    }


def _bench_sustained(
    port: int, clients: int, requests_per_client: int
) -> dict:
    """Concurrent clients against a warm cached analysis endpoint."""
    path = "/analyze/t2/breakdown"
    status, _, _, _ = _request(port, "GET", path)  # warm the cache
    assert status == 200
    latencies: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def worker() -> None:
        conn = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=120
        )
        local: list[float] = []
        barrier.wait()
        try:
            for _ in range(requests_per_client):
                start = time.perf_counter()
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                local.append(time.perf_counter() - start)
                assert response.status == 200
        finally:
            conn.close()
        with lock:
            latencies.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    total = clients * requests_per_client
    latencies.sort()
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total_requests": total,
        "wall_s": wall_s,
        "requests_per_s": total / wall_s if wall_s else 0.0,
        "p50_ms": latencies[len(latencies) // 2] * 1e3,
        "p99_ms": latencies[int(len(latencies) * 0.99) - 1] * 1e3,
    }


def run_benchmark() -> dict:
    replications = _env_int(
        "REPRO_BENCH_SERVE_REPLICATIONS", DEFAULT_REPLICATIONS
    )
    clients = _env_int("REPRO_BENCH_SERVE_CLIENTS", DEFAULT_CLIENTS)
    requests_per_client = _env_int(
        "REPRO_BENCH_SERVE_REQUESTS", DEFAULT_REQUESTS_PER_CLIENT
    )
    app = _make_app()
    with run_in_thread(app) as handle:
        latency = _bench_latency(handle.port, replications)
        coalescing = _bench_coalescing(
            app, handle.port, clients, replications
        )
        sustained = _bench_sustained(
            handle.port, clients, requests_per_client
        )
        stats = app.stats.snapshot()
    return {
        "schema": 1,
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "latency": latency,
        "coalescing": coalescing,
        "sustained": sustained,
        "server_totals": {
            "requests_total": stats["requests_total"],
            "errors_5xx": stats["errors_5xx"],
            "shed_total": stats["shed_total"],
        },
    }


def write_report(results: dict, path: Path = REPORT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main() -> None:
    results = run_benchmark()
    latency = results["latency"]
    print(
        f"simulate ({latency['replications']} replications): "
        f"cold {latency['cold_ms']:.1f} ms, cached "
        f"{latency['cached_ms']:.2f} ms "
        f"({latency['speedup']:.0f}x, byte-identical)"
    )
    coalescing = results["coalescing"]
    print(
        f"coalescing: {coalescing['concurrent_requests']} identical "
        f"concurrent requests -> {coalescing['backend_executions']} "
        f"backend execution(s) "
        f"(factor {coalescing['coalescing_factor']:.0f})"
    )
    sustained = results["sustained"]
    print(
        f"sustained: {sustained['total_requests']} cached requests "
        f"across {sustained['clients']} clients in "
        f"{sustained['wall_s']:.2f} s = "
        f"{sustained['requests_per_s']:,.0f} req/s "
        f"(p50 {sustained['p50_ms']:.2f} ms, "
        f"p99 {sustained['p99_ms']:.2f} ms)"
    )
    path = write_report(results)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
