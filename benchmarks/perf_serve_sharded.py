#!/usr/bin/env python3
"""Sharded-serving benchmark: router + N shard processes vs one process.

Stands up the single-process baseline and the sharded deployment
(:class:`repro.serve.RouterApp` fronting N spawned shard workers) on
real sockets, drives both with the same keep-alive client pool, and
reports:

* **aggregate cached throughput** — concurrent clients against a warm
  analysis endpoint, single process vs routed fleet;
* **cross-shard byte identity** — the same request sent directly to
  every shard's private port must return byte-identical payloads
  (shards are shared-nothing replicas of the same datasets and the
  JSON encoding is canonical);
* **jobs roundtrip** — submit a priority job through the router, poll
  it to ``done``, and verify a subsequent synchronous ``/simulate``
  with the same parameters is a byte-identical cache hit.

Honest-numbers convention: the >= 4x aggregate speedup is only
*asserted* when the host can physically deliver it
(``cpu_count >= 4`` and at least 4 shards); smaller hosts still run
everything and record the measured speedup with
``speedup_asserted: false``.

Writes ``BENCH_serve_sharded.json`` at the repo root.

Run::

    PYTHONPATH=src python benchmarks/perf_serve_sharded.py

Environment knobs (CI smoke uses small values):
``REPRO_BENCH_SERVE_SHARDS`` (fleet size),
``REPRO_BENCH_SERVE_CLIENTS`` (concurrent clients),
``REPRO_BENCH_SERVE_REQUESTS`` (requests per client per phase).
"""

from __future__ import annotations

import http.client
import json
import os
import platform
import threading
import time
from pathlib import Path

from repro.parallel import available_cpus
from repro.serve import (
    DatasetRegistry,
    ReproApp,
    RouterApp,
    run_in_thread,
    run_router_in_thread,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_serve_sharded.json"

BENCH_SEED = 42
DATASET_SPECS = (
    f"t2=synth:tsubame2:{BENCH_SEED}",
    f"t3=synth:tsubame3:{BENCH_SEED}",
)
WARM_PATHS = ("/analyze/t2/breakdown", "/analyze/t3/metrics")
DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS_PER_CLIENT = 50
SPEEDUP_FLOOR = 4.0


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _get(port: int, path: str) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _post(port: int, path: str, payload: dict) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(
            "POST",
            path,
            json.dumps(payload).encode(),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _bench_sustained(
    port: int, clients: int, requests_per_client: int
) -> dict:
    """Keep-alive clients hammering warm cached analysis endpoints."""
    for path in WARM_PATHS:
        status, _ = _get(port, path)
        assert status == 200, f"warmup {path} failed: {status}"
    barrier = threading.Barrier(clients)
    lock = threading.Lock()
    latencies: list[float] = []

    def worker(worker_index: int) -> None:
        # Each client reuses ONE keep-alive connection; alternating
        # paths exercises both shards of a 2-shard fleet.
        conn = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=120
        )
        local: list[float] = []
        barrier.wait()
        try:
            for i in range(requests_per_client):
                path = WARM_PATHS[(worker_index + i) % len(WARM_PATHS)]
                start = time.perf_counter()
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                local.append(time.perf_counter() - start)
                assert response.status == 200
        finally:
            conn.close()
        with lock:
            latencies.extend(local)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    total = clients * requests_per_client
    latencies.sort()
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total_requests": total,
        "wall_s": wall_s,
        "requests_per_s": total / wall_s if wall_s else 0.0,
        "p50_ms": latencies[len(latencies) // 2] * 1e3,
        "p99_ms": latencies[int(len(latencies) * 0.99) - 1] * 1e3,
    }


def _check_cross_shard_identity(router: RouterApp) -> dict:
    """The same request against every shard's private port must
    return byte-identical payloads."""
    checked = []
    for path in WARM_PATHS:
        bodies = set()
        for index in sorted(router._shards):
            port = router._shards[index].port
            status, body = _get(port, path)
            assert status == 200, f"shard {index} {path}: {status}"
            bodies.add(body)
        assert len(bodies) == 1, f"shards diverged on {path}"
        checked.append(path)
    return {"paths": checked, "byte_identical": True}


def _bench_jobs(port: int) -> dict:
    """Priority job through the router: submit, poll, cache check."""
    payload = {
        "machine": "tsubame2",
        "replications": 3,
        "horizon_hours": 120.0,
        "seed": 2024,
    }
    submitted = dict(payload)
    submitted["priority"] = 5
    start = time.perf_counter()
    status, body = _post(port, "/jobs", submitted)
    assert status == 202, f"job submit failed: {status} {body!r}"
    job = json.loads(body)["job"]
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        status, body = _get(port, f"/jobs/{job['id']}")
        assert status == 200, f"job poll failed: {status}"
        record = json.loads(body)
        if record["job"]["status"] in ("done", "failed", "cancelled"):
            break
        time.sleep(0.05)
    wall_s = time.perf_counter() - start
    final = record["job"]["status"]
    assert final == "done", f"job finished {final}: {record}"
    # The job populated the result cache; the synchronous endpoint
    # must now hit it with the byte-identical payload.
    status, sync_body = _post(port, "/simulate", payload)
    assert status == 200
    identical = json.loads(sync_body) == record["result"]
    return {
        "job_id": job["id"],
        "status": final,
        "wall_s": wall_s,
        "sync_simulate_matches_job_result": identical,
    }


def run_benchmark() -> dict:
    cpu_count = available_cpus()
    default_shards = 4 if cpu_count >= 4 else 2
    shards = max(1, _env_int("REPRO_BENCH_SERVE_SHARDS", default_shards))
    clients = _env_int("REPRO_BENCH_SERVE_CLIENTS", DEFAULT_CLIENTS)
    requests_per_client = _env_int(
        "REPRO_BENCH_SERVE_REQUESTS", DEFAULT_REQUESTS_PER_CLIENT
    )

    # Baseline: the current single-process server.
    registry = DatasetRegistry()
    registry.synthesize("t2", "tsubame2", seed=BENCH_SEED)
    registry.synthesize("t3", "tsubame3", seed=BENCH_SEED)
    single_app = ReproApp(
        registry,
        workers=1,
        cache_size=1024,
        cache_ttl_seconds=None,
        max_inflight=32,
        max_queue=256,
    )
    with run_in_thread(single_app) as handle:
        single = _bench_sustained(
            handle.port, clients, requests_per_client
        )

    # Sharded: router + N worker processes, same datasets, same load.
    router = RouterApp(
        shards,
        DATASET_SPECS,
        workers=1,
        cache_size=1024,
        cache_ttl_seconds=None,
        max_inflight=32,
        max_queue=256,
    )
    with run_router_in_thread(router) as handle:
        sharded = _bench_sustained(
            handle.port, clients, requests_per_client
        )
        identity = _check_cross_shard_identity(router)
        jobs = _bench_jobs(handle.port)

    speedup = (
        sharded["requests_per_s"] / single["requests_per_s"]
        if single["requests_per_s"]
        else 0.0
    )
    # A 1-core host cannot parallelize anything; asserting 4x there
    # would only prove the benchmark lies.  Record honest numbers and
    # assert only where the hardware can deliver.
    speedup_asserted = cpu_count >= 4 and shards >= 4
    if speedup_asserted:
        assert speedup >= SPEEDUP_FLOOR, (
            f"aggregate speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x "
            f"on {cpu_count} cores with {shards} shards"
        )
    return {
        "schema": 1,
        "seed": BENCH_SEED,
        "cpu_count": cpu_count,
        "python": platform.python_version(),
        "shards": shards,
        "single_process": single,
        "sharded": sharded,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": speedup_asserted,
        "cross_shard_identity": identity,
        "jobs": jobs,
    }


def write_report(results: dict, path: Path = REPORT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main() -> None:
    results = run_benchmark()
    single = results["single_process"]
    sharded = results["sharded"]
    print(
        f"single process: {single['total_requests']} cached requests "
        f"= {single['requests_per_s']:,.0f} req/s "
        f"(p99 {single['p99_ms']:.2f} ms)"
    )
    print(
        f"router + {results['shards']} shards: "
        f"{sharded['total_requests']} cached requests "
        f"= {sharded['requests_per_s']:,.0f} req/s "
        f"(p99 {sharded['p99_ms']:.2f} ms)"
    )
    asserted = (
        "asserted" if results["speedup_asserted"]
        else f"not asserted on {results['cpu_count']} core(s)"
    )
    print(f"aggregate speedup: {results['speedup']:.2f}x ({asserted})")
    identity = results["cross_shard_identity"]
    print(
        f"cross-shard byte identity: "
        f"{len(identity['paths'])} endpoints identical"
    )
    jobs = results["jobs"]
    print(
        f"jobs roundtrip: {jobs['status']} in {jobs['wall_s']:.2f} s "
        f"(sync /simulate matches: "
        f"{jobs['sync_simulate_matches_job_result']})"
    )
    path = write_report(results)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
