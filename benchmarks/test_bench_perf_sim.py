"""Simulation bench — the Monte-Carlo PR acceptance criteria, kept
green.

Runs the full :mod:`perf_sim` benchmark (1x/10x/100x failure
intensity plus the replication ensemble), writes ``BENCH_sim.json``,
and asserts the invariants that must never regress: the vectorized
injector processes events >= 5x faster than the per-event reference
path at 10x intensity, and the parallel ensemble is bit-identical to
the serial one.

Parity is asserted on every host.  The replication-scaling criterion
(>2x with 4 workers) is asserted only when the machine actually has
>= 4 schedulable cores; on smaller boxes the measured numbers are
still recorded in ``BENCH_sim.json`` with
``"speedup_asserted": false`` so a <1.0x ratio on a 1-core host is
never mistaken for a passing result.
"""

import json

import pytest

import perf_sim


@pytest.fixture(scope="module")
def results():
    res = perf_sim.run_benchmark()
    perf_sim.write_report(res)
    return res


def test_report_written_and_loads(results):
    on_disk = json.loads(perf_sim.REPORT_PATH.read_text())
    assert on_disk["schema"] == results["schema"]
    assert set(on_disk["scales"]) == set(results["scales"])
    assert on_disk["ensemble"]["parity_ok"] is True


def test_fast_path_5x_faster_at_10x_intensity(results):
    scale = results["scales"]["10x"]
    assert scale["speedup"] >= 5.0, scale


def test_fast_path_simulates_comparable_dynamics(results):
    # Different RNG consumption, same calibrated distributions: the
    # two paths must inject failure counts in the same ballpark.
    for label, scale in results["scales"].items():
        fast = scale["fast"]["failures"]
        ref = scale["reference"]["failures"]
        assert fast > 0 and ref > 0, label
        assert 0.5 < fast / ref < 2.0, (label, fast, ref)


def test_ensemble_parity_serial_vs_parallel(results):
    assert results["ensemble"]["parity_ok"] is True


def test_ensemble_throughput_positive(results):
    ensemble = results["ensemble"]
    assert ensemble["serial_replications_per_s"] > 0.0
    assert ensemble["parallel_replications_per_s"] > 0.0


def test_ensemble_parallel_scaling(results):
    ensemble = results["ensemble"]
    measured = ensemble["speedup"]
    if not ensemble["speedup_asserted"]:
        # Parity was still asserted above; the JSON records the
        # timings with speedup_asserted=false so the ratio is never
        # read as a result on a host that cannot show one.
        assert results["cpu_count"] >= 1
        pytest.skip(
            f"speedup unasserted on this host; measured "
            f"{measured:.2f}x recorded in BENCH_sim.json"
        )
    if perf_sim.available_cpus() >= 4:
        assert measured > 2.0, ensemble
    else:
        # 2-3 cores: demand a real win, just not near-linear.
        assert measured > 1.0, ensemble
