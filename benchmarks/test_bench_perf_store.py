"""Store benchmark — the repro.store PR's acceptance criteria, kept
green.

Runs the full :mod:`perf_store` benchmark, writes ``BENCH_store.json``,
and asserts the claims: materialized analytics match the cold kernels
(parity is verified *inside* the benchmark before any number is
reported), warm-restart-to-first-analytics is >= 10x faster than the
cold parse-and-recompute path, and an incremental append-update beats
a full recomputation by >= 5x.  The speed floors are asserted at the
acceptance scale (100x, the default); reduced-scale smoke runs record
their numbers without asserting ratios a small input cannot honestly
support.
"""

import json

import pytest

import perf_store


@pytest.fixture(scope="module")
def results():
    res = perf_store.run_benchmark()
    perf_store.write_report(res)
    return res


def test_report_written_and_loads(results):
    on_disk = json.loads(perf_store.REPORT_PATH.read_text())
    assert on_disk["schema"] == results["schema"]
    assert set(on_disk) == set(results)


def test_ingest_throughput_recorded(results):
    ingest = results["ingest"]
    assert ingest["rows"] == perf_store.BASE_FAILURES * results["scale"]
    assert ingest["rows_per_s"] > 0
    assert ingest["bytes_per_row"] > 0


def test_parity_verified_on_both_paths(results):
    # verify_parity raises inside the benchmark on any divergence;
    # these flags existing means both checks actually ran.
    assert results["warm_restart"]["parity_ok"] is True
    assert results["incremental"]["parity_ok"] is True
    assert len(results["warm_restart"]["analyses"]) == 5


def test_warm_restart_floor(results):
    warm = results["warm_restart"]
    if not results["floors_asserted"]:
        pytest.skip(
            f"scale {results['scale']} < 100; measured "
            f"{warm['speedup']:.1f}x recorded in BENCH_store.json"
        )
    assert warm["speedup"] >= 10.0, warm


def test_incremental_update_floor(results):
    incremental = results["incremental"]
    if not results["floors_asserted"]:
        pytest.skip(
            f"scale {results['scale']} < 100; measured "
            f"{incremental['speedup']:.1f}x recorded in BENCH_store.json"
        )
    assert incremental["speedup"] >= 5.0, incremental
