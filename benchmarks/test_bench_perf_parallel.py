"""Parallel-substrate bench — the warm-pool / shm / stealing PR's
acceptance criteria, kept green.

Runs the full :mod:`perf_parallel` benchmark, writes
``BENCH_parallel.json``, and asserts the claims that hold on *any*
host: bit-exact serial/parallel parity, one executor spawn across
consecutive sweeps (the warm pool actually reused), the per-task
payload collapse from O(dataset bytes) to O(metadata), and the
work-stealing wall beating the serial sum (sleep-based, so it holds
even on one core).  Wall-clock speedup of the CPU-bound ensemble is
asserted only where ``speedup_asserted`` is true — on a host with
cores to back the claim.
"""

import json

import pytest

import perf_parallel


@pytest.fixture(scope="module")
def results():
    res = perf_parallel.run_benchmark()
    perf_parallel.write_report(res)
    return res


def test_report_written_and_loads(results):
    on_disk = json.loads(perf_parallel.REPORT_PATH.read_text())
    assert on_disk["schema"] == results["schema"]
    assert set(on_disk) == set(results)


def test_warm_pool_spawns_once_across_sweeps(results):
    assert results["pool"]["spawns"] == 1
    assert results["pool"]["parity_ok"] is True


def test_ensemble_parity_bit_exact(results):
    assert results["ensemble"]["parity_ok"] is True


def test_ensemble_speedup_where_assertable(results):
    ensemble = results["ensemble"]
    measured = ensemble["speedup"]
    if not ensemble["speedup_asserted"]:
        pytest.skip(
            f"speedup unasserted on this host; measured "
            f"{measured:.2f}x recorded in BENCH_parallel.json"
        )
    if perf_parallel.available_cpus() >= 4:
        assert measured >= 3.0, ensemble
    else:
        assert measured > 1.0, ensemble


def test_shm_payload_is_metadata_sized(results):
    shm = results["shm"]
    # The old substrate shipped the whole dataset per task; a chunk
    # now carries a fixed-size spec regardless of log size.
    assert shm["per_chunk_payload_bytes_new"] < 4_000
    assert (
        shm["per_chunk_payload_bytes_new"]
        < shm["per_task_payload_bytes_old"] / 10
    ), shm
    assert shm["parity_ok"] is True


def test_stealing_beats_serial_sum_everywhere(results):
    stealing = results["stealing"]
    assert stealing["ordered_ok"] is True
    assert (
        stealing["parallel_s"] < stealing["serial_sum_s"]
    ), stealing
