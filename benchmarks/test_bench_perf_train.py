"""Training bench — the repro.train PR acceptance criteria, kept
green.

Runs the full :mod:`perf_train` benchmark (gang-training runs on the
1024-node A100 fleet at increasing failure intensity, plus the
training replication ensemble), writes ``BENCH_train.json``, and
asserts the invariants that must never regress: the training run
sustains a healthy event rate, its ETTR degrades monotonically as
failures intensify, and the parallel ensemble is bit-identical to the
serial one.

Parity is asserted on every host; the replication-scaling criterion
follows the same ``speedup_asserted`` convention as perf_sim, so a
<1.0x ratio on a 1-core host is never mistaken for a passing result.
"""

import json

import pytest

import perf_train


@pytest.fixture(scope="module")
def results():
    res = perf_train.run_benchmark()
    perf_train.write_report(res)
    return res


def test_report_written_and_loads(results):
    on_disk = json.loads(perf_train.REPORT_PATH.read_text())
    assert on_disk["schema"] == results["schema"]
    assert set(on_disk["scales"]) == set(results["scales"])
    assert on_disk["ensemble"]["parity_ok"] is True


def test_training_run_throughput_positive(results):
    for label, scale in results["scales"].items():
        assert scale["events_per_s"] > 0.0, label
        assert scale["events"] > 0, label
        assert scale["failures"] > 0, label


def test_ettr_sane_and_degrades_with_intensity(results):
    scales = sorted(
        results["scales"].values(), key=lambda s: s["intensity"]
    )
    for scale in scales:
        # 0.0 is reachable at the harshest tiers: the fleet decays
        # below the gang size and the job starves in the queue.
        assert 0.0 <= scale["ettr"] <= 1.0, scale
    assert scales[0]["ettr"] > 0.0, scales[0]
    if len(scales) >= 2:
        assert scales[0]["ettr"] > scales[-1]["ettr"], (
            "more failures should mean less effective training time"
        )


def test_ensemble_parity_serial_vs_parallel(results):
    assert results["ensemble"]["parity_ok"] is True


def test_ensemble_throughput_positive(results):
    ensemble = results["ensemble"]
    assert ensemble["serial_replications_per_s"] > 0.0
    assert ensemble["parallel_replications_per_s"] > 0.0
    assert 0.0 < ensemble["mean_ettr"] <= 1.0


def test_ensemble_parallel_scaling(results):
    ensemble = results["ensemble"]
    measured = ensemble["speedup"]
    if not ensemble["speedup_asserted"]:
        # Parity was still asserted above; BENCH_train.json records
        # the timings with speedup_asserted=false so the ratio is
        # never read as a result on a host that cannot show one.
        assert results["cpu_count"] >= 1
        pytest.skip(
            f"speedup unasserted on this host; measured "
            f"{measured:.2f}x recorded in BENCH_train.json"
        )
    if perf_train.available_cpus() >= 4:
        assert measured > 2.0, ensemble
    else:
        # 2-3 cores: demand a real win, just not near-linear.
        assert measured > 1.0, ensemble
