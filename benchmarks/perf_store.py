#!/usr/bin/env python3
"""Store benchmark: the warm-restart and incremental-analytics claims.

Three sections, written to ``BENCH_store.json`` at the repo root:

* ``ingest`` — append throughput: the benchmark log committed to a
  fresh store in batches (segment write + fsync + manifest commit +
  incremental view update per batch), reported as rows/second.
* ``warm_restart`` — the headline claim: serving analytics after a
  restart.  The *cold* path is what a file-backed dataset pays —
  parse the log from disk, build columns, run all five cold kernels,
  render canonical JSON.  The *warm* path is what a ``store:`` spec
  pays — ``open_store`` (manifest + digest verification + views
  load) and rendering the same five payloads from the materialized
  views.  At the default 100x scale the warm path must be >= 10x
  faster; parity of every payload against the cold kernels is
  asserted before any number is reported.
* ``incremental`` — appending one 1x-sized batch to the big store
  (including the views delta-update and save) vs recomputing all
  five analyses from scratch over the grown log.  Must be >= 5x
  faster at the default scale, with parity asserted again after the
  append.

Run::

    PYTHONPATH=src python benchmarks/perf_store.py

``REPRO_BENCH_STORE_SCALE`` resizes the benchmark log (default 100 ==
~33,800 failures, one hundred Tsubame-3 logs); the >=10x / >=5x
floors are asserted by the harness only at scale >= 100, smaller
scales just record their numbers.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import shutil
import tempfile
import time
from datetime import timedelta
from pathlib import Path

import numpy as np

from repro.core.records import FailureLog
from repro.io import read_log, write_csv
from repro.serve.app import ANALYSES
from repro.serve.http import json_body
from repro.store import init_store, open_store
from repro.store.views import verify_parity
from repro.synth import GeneratorConfig, generate_log

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_store.json"

BENCH_SEED = 42
BENCH_MACHINE = "tsubame3"
BASE_FAILURES = 338  # one calibrated Tsubame-3 log == 1x
INGEST_BATCHES = 10


def _scale() -> int:
    raw = os.environ.get("REPRO_BENCH_STORE_SCALE", "").strip()
    return int(raw) if raw else 100


def _tiled_log(base: FailureLog, scale: int) -> FailureLog:
    """``scale`` time-shifted copies of the calibrated log, end to end.

    Tiling (rather than generating one huge trace) keeps every
    marginal the paper calibrates intact while scaling the row count —
    and each tile is a valid time-monotone append batch.
    """
    span = base.window_end - base.window_start
    records = []
    for tile in range(scale):
        shift = span * tile
        for record in base.records:
            records.append(
                dataclasses.replace(
                    record,
                    record_id=len(records),
                    timestamp=record.timestamp + shift,
                )
            )
    return FailureLog(
        machine=base.machine,
        records=tuple(records),
        window_start=base.window_start,
        window_end=base.window_start + span * scale,
        _strict_taxonomy=base._strict_taxonomy,
    )


def _sub_log(log: FailureLog, start: int, stop: int) -> FailureLog:
    return FailureLog(
        machine=log.machine,
        records=log.records[start:stop],
        window_start=log.window_start,
        window_end=log.window_end,
        _strict_taxonomy=log._strict_taxonomy,
    )


def _cold_bodies(log: FailureLog) -> dict[str, bytes]:
    return {name: json_body(fn(log)) for name, fn in ANALYSES.items()}


def _bench_ingest(log: FailureLog, root: Path) -> dict:
    """Commit the whole log in batches; report append throughput."""
    path = root / "events.store"
    n = len(log)
    bounds = [
        round(i * n / INGEST_BATCHES) for i in range(INGEST_BATCHES + 1)
    ]
    start = time.perf_counter()
    store = init_store(
        path,
        log.machine,
        window_start=log.window_start,
        window_end=log.window_end,
    )
    for a, b in zip(bounds, bounds[1:]):
        store.append(_sub_log(log, a, b))
    ingest_s = time.perf_counter() - start
    nbytes = sum(p.stat().st_size for p in path.glob("seg-*.rps"))
    return {
        "rows": n,
        "batches": INGEST_BATCHES,
        "ingest_s": ingest_s,
        "rows_per_s": n / ingest_s if ingest_s else float("inf"),
        "segment_bytes": nbytes,
        "bytes_per_row": nbytes / n,
    }


def _bench_warm_restart(log: FailureLog, root: Path) -> dict:
    """Cold file restart vs warm store restart, to first analytics."""
    store_path = root / "events.store"
    csv_path = root / "events.csv"
    write_csv(log, csv_path)

    start = time.perf_counter()
    cold_log = read_log(csv_path)
    cold = _cold_bodies(cold_log)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    store = open_store(store_path)
    warm = {
        name: json_body(payload)
        for name, payload in store.payloads().items()
    }
    warm_s = time.perf_counter() - start

    # Exact parity before any speedup is reported: the integer-derived
    # values are equal, float means agree to 1e-9 (the documented
    # Welford-vs-pairwise contract).
    verify_parity(store.payloads(), cold_log)
    assert set(warm) == set(cold)
    return {
        "rows": len(log),
        "cold_restart_s": cold_s,
        "warm_restart_s": warm_s,
        "speedup": cold_s / warm_s if warm_s else float("inf"),
        "analyses": sorted(warm),
        "parity_ok": True,
    }


def _bench_incremental(log: FailureLog, root: Path) -> dict:
    """One 1x append (delta view update) vs full recomputation."""
    store = open_store(root / "events.store")
    last = log.records[-1]
    batch = [
        dataclasses.replace(
            last,
            record_id=len(log) + i,
            timestamp=last.timestamp + timedelta(seconds=i + 1),
        )
        for i in range(BASE_FAILURES)
    ]

    start = time.perf_counter()
    store.append(batch)
    append_s = time.perf_counter() - start

    # The from-scratch alternative: rebuild the grown log and run
    # every cold kernel over all of it.
    grown_records = log.records + tuple(batch)
    start = time.perf_counter()
    grown = FailureLog(
        machine=log.machine,
        records=grown_records,
        window_start=store.log().window_start,
        window_end=store.log().window_end,
        _strict_taxonomy=log._strict_taxonomy,
    )
    _cold_bodies(grown)
    recompute_s = time.perf_counter() - start

    verify_parity(store.payloads(), store.log())
    return {
        "base_rows": len(log),
        "batch_rows": BASE_FAILURES,
        "append_update_s": append_s,
        "full_recompute_s": recompute_s,
        "speedup": (
            recompute_s / append_s if append_s else float("inf")
        ),
        "parity_ok": True,
    }


def run_benchmark() -> dict:
    scale = _scale()
    log = _tiled_log(
        generate_log(
            BENCH_MACHINE,
            config=GeneratorConfig(
                seed=BENCH_SEED, num_failures=BASE_FAILURES
            ),
        ),
        scale,
    )
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        return {
            "schema": 1,
            "seed": BENCH_SEED,
            "machine": BENCH_MACHINE,
            "scale": scale,
            "floors_asserted": scale >= 100,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "ingest": _bench_ingest(log, workdir),
            "warm_restart": _bench_warm_restart(log, workdir),
            "incremental": _bench_incremental(log, workdir),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def write_report(results: dict, path: Path = REPORT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main() -> None:
    results = run_benchmark()
    ingest = results["ingest"]
    print(
        f"ingest: {ingest['rows']} rows in {ingest['ingest_s']:.2f}s "
        f"({ingest['rows_per_s']:.0f} rows/s, "
        f"{ingest['bytes_per_row']:.0f} B/row)"
    )
    warm = results["warm_restart"]
    print(
        f"restart-to-analytics: cold {warm['cold_restart_s']:.3f}s vs "
        f"warm {warm['warm_restart_s']:.3f}s "
        f"({warm['speedup']:.1f}x, parity verified)"
    )
    incremental = results["incremental"]
    print(
        f"incremental: append+update {1e3 * incremental['append_update_s']:.1f} ms vs "
        f"recompute {1e3 * incremental['full_recompute_s']:.1f} ms "
        f"({incremental['speedup']:.1f}x, parity verified)"
    )
    write_report(results)
    print(f"wrote {REPORT_PATH}")


if __name__ == "__main__":
    main()
