"""Mitigation benches — the paper's RQ5 operational implications,
evaluated on the discrete-event simulator.

The paper argues (1) MTTR is governed by staffing and spares, (2)
spare provisioning should be sized from failure rates, and (3) higher
MTBF converts into goodput for checkpointing applications
(performance-error-proportionality).  These benches quantify each.
"""

from repro.predict import plan_spares
from repro.sim import (
    CheckpointPolicy,
    ClusterSimulator,
    RepairPolicy,
    effective_goodput_fraction,
    young_daly_interval,
)

HORIZON = 1500.0
SEED = 42


def _run(machine="tsubame2", **kwargs):
    return ClusterSimulator(machine, seed=SEED, **kwargs).run(HORIZON)


def test_mitigation_staffing_reduces_effective_mttr(benchmark):
    lean = benchmark(
        lambda: _run(repair_policy=RepairPolicy(num_technicians=2))
    )
    staffed = _run(repair_policy=RepairPolicy(num_technicians=10))
    print(f"\neffective MTTR: 2 technicians {lean.effective_mttr_hours:.0f} h "
          f"(waiting {lean.mean_waiting_hours:.0f} h), 10 technicians "
          f"{staffed.effective_mttr_hours:.0f} h "
          f"(waiting {staffed.mean_waiting_hours:.0f} h)")
    assert staffed.effective_mttr_hours < lean.effective_mttr_hours
    assert staffed.mean_waiting_hours < lean.mean_waiting_hours


def test_mitigation_rate_sized_spares_cut_stockouts(benchmark, t2_log):
    plan = plan_spares(t2_log, target_stockout_probability=0.02)
    unplanned = benchmark(
        lambda: _run(initial_spares={name: 0 for name
                                     in plan.as_mapping()})
    )
    planned = _run(initial_spares=plan.as_mapping())
    print(f"\nspare plan (total {plan.total_stock}): "
          f"{dict(list(plan.as_mapping().items())[:4])} ...")
    print(f"stockouts: unprovisioned {unplanned.spare_stockouts}, "
          f"provisioned {planned.spare_stockouts}")
    assert planned.spare_stockouts < unplanned.spare_stockouts
    assert (planned.effective_mttr_hours
            <= unplanned.effective_mttr_hours)


def test_mitigation_checkpoint_goodput_tracks_mtbf(benchmark):
    cost = 0.25
    t2_mtbf, t3_mtbf = 15.3, 72.4

    def goodputs():
        results = {}
        for name, mtbf in (("tsubame2", t2_mtbf), ("tsubame3", t3_mtbf)):
            policy = CheckpointPolicy(
                interval_hours=young_daly_interval(cost, mtbf),
                cost_hours=cost,
            )
            results[name] = effective_goodput_fraction(policy, mtbf)
        return results

    results = benchmark(goodputs)
    print(f"\nYoung/Daly goodput at C={cost} h: "
          f"T2 {results['tsubame2']:.3f}, T3 {results['tsubame3']:.3f}")
    # The MTBF improvement translates into a real goodput gain.
    assert results["tsubame3"] > results["tsubame2"]
    assert results["tsubame3"] - results["tsubame2"] > 0.05


def test_mitigation_scheduler_goodput_improves_with_checkpointing():
    from repro.sim import WorkloadConfig

    workload = WorkloadConfig(mean_interarrival_hours=0.3,
                              mean_duration_hours=24.0)
    no_ckpt = ClusterSimulator(
        "tsubame2", seed=SEED, workload=workload, intensity=4.0,
    ).run(HORIZON)
    with_ckpt = ClusterSimulator(
        "tsubame2", seed=SEED, workload=workload, intensity=4.0,
        checkpoint_policy=CheckpointPolicy(interval_hours=4.0,
                                           cost_hours=0.1),
    ).run(HORIZON)
    print(f"\nscheduler goodput: no checkpointing "
          f"{no_ckpt.scheduler.goodput_fraction:.3f}, with "
          f"{with_ckpt.scheduler.goodput_fraction:.3f}")
    assert (with_ckpt.scheduler.goodput_fraction
            >= no_ckpt.scheduler.goodput_fraction)
