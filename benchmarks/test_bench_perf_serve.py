"""Serving bench — the serve PR acceptance criteria, kept green.

Runs the full :mod:`perf_serve` benchmark against a live server,
writes ``BENCH_serve.json``, and asserts the invariants that must
never regress: cached repeat queries are >= 10x faster than the cold
miss (and byte-identical), and N identical concurrent requests
trigger exactly **one** backend execution.
"""

import json

import pytest

import perf_serve


@pytest.fixture(scope="module")
def results():
    res = perf_serve.run_benchmark()
    perf_serve.write_report(res)
    return res


def test_report_written_and_loads(results):
    on_disk = json.loads(perf_serve.REPORT_PATH.read_text())
    assert on_disk["schema"] == results["schema"]
    assert set(on_disk) == set(results)


def test_cached_repeat_at_least_10x_faster_than_cold(results):
    latency = results["latency"]
    assert latency["speedup"] >= 10.0, latency
    assert latency["byte_identical"] is True


def test_identical_concurrent_requests_execute_backend_once(results):
    coalescing = results["coalescing"]
    assert coalescing["backend_executions"] == 1, coalescing
    assert (
        coalescing["coalescing_factor"]
        == coalescing["concurrent_requests"]
    )
    assert coalescing["all_identical"] is True


def test_sustained_cached_throughput_positive(results):
    sustained = results["sustained"]
    assert sustained["requests_per_s"] > 0.0
    assert sustained["p50_ms"] <= sustained["p99_ms"]


def test_server_survived_without_errors(results):
    totals = results["server_totals"]
    assert totals["errors_5xx"] == 0
    assert totals["shed_total"] == 0
    expected_minimum = (
        1  # cold simulate
        + results["latency"]["cached_samples"]
        + results["coalescing"]["concurrent_requests"]
        + results["sustained"]["total_requests"]
    )
    assert totals["requests_total"] >= expected_minimum
