"""Figure 8 — temporal distribution of multi-GPU failures.

Paper: failures involving multiple GPUs within a node tend to happen
close together in time — a multi-GPU failure is likely to be followed
by another one soon.
"""

from repro.core.multigpu import multi_gpu_clustering
from repro.core.report import report_fig8


def test_fig8_tsubame2_clustering(benchmark, t2_log):
    result = benchmark(multi_gpu_clustering, t2_log)
    print("\n" + report_fig8(t2_log))
    assert result.is_clustered()
    assert result.clustering_ratio > 1.2


def test_fig8_tsubame3_clustering(benchmark, t3_log):
    result = benchmark(multi_gpu_clustering, t3_log)
    print("\n" + report_fig8(t3_log))
    assert result.is_clustered()


def test_fig8_gap_after_multi_below_overall_mean_gap(t2_log):
    result = multi_gpu_clustering(t2_log)
    events = result.events
    span = events[-1][0] - events[0][0]
    mean_gap = span / (len(events) - 1)
    multis = sum(1 for _, m in events if m > 1)
    expected_random_gap = span / multis  # rate of multi events
    # Conditional on a multi-GPU failure, the next one arrives sooner
    # than the unconditional multi-failure spacing.
    assert result.mean_gap_after_multi < expected_random_gap
    assert mean_gap < result.mean_gap_after_multi  # sanity ordering
