"""Figure 2 — failure-category breakdown on both machines.

Paper: GPU failures dominate Tsubame-2 (44.37%, CPU only 1.78%);
software dominates Tsubame-3 (50.59%, GPU second at 27.81%, CPU 3.25%).
"""

import pytest

from repro.core.breakdown import category_breakdown
from repro.core.report import report_fig2


def test_fig2a_tsubame2_breakdown(benchmark, t2_log):
    result = benchmark(category_breakdown, t2_log)
    print("\n" + report_fig2(t2_log))
    assert result.dominant_category == "GPU"
    assert result.share_of("GPU") == pytest.approx(0.4437, abs=0.002)
    assert result.share_of("CPU") == pytest.approx(0.0178, abs=0.002)


def test_fig2b_tsubame3_breakdown(benchmark, t3_log):
    result = benchmark(category_breakdown, t3_log)
    print("\n" + report_fig2(t3_log))
    assert result.dominant_category == "Software"
    assert result.share_of("Software") == pytest.approx(0.5059, abs=0.002)
    assert result.share_of("GPU") == pytest.approx(0.2781, abs=0.002)
    assert result.share_of("CPU") == pytest.approx(0.0325, abs=0.002)


def test_fig2_gpu_far_exceeds_cpu_on_both(t2_log, t3_log):
    for log in (t2_log, t3_log):
        result = category_breakdown(log)
        assert result.share_of("GPU") > 8 * result.share_of("CPU")
