"""Sharded-serving bench — the scale-out PR acceptance, kept green.

Runs the full :mod:`perf_serve_sharded` benchmark (single-process
baseline, then router + N real shard processes), writes
``BENCH_serve_sharded.json``, and asserts the invariants that must
never regress: byte-identical responses across shards, a clean
priority-job roundtrip whose result the synchronous endpoint then
serves from cache, and — only on hardware that can deliver it — the
>= 4x aggregate throughput floor.
"""

import json

import pytest

import perf_serve_sharded


@pytest.fixture(scope="module")
def results():
    res = perf_serve_sharded.run_benchmark()
    perf_serve_sharded.write_report(res)
    return res


def test_report_written_and_loads(results):
    on_disk = json.loads(
        perf_serve_sharded.REPORT_PATH.read_text()
    )
    assert on_disk["schema"] == results["schema"]
    assert set(on_disk) == set(results)
    # The honesty fields the satellite demands are always present.
    assert "cpu_count" in on_disk
    assert "speedup_asserted" in on_disk


def test_responses_byte_identical_across_shards(results):
    identity = results["cross_shard_identity"]
    assert identity["byte_identical"] is True
    assert len(identity["paths"]) >= 2


def test_jobs_roundtrip_through_router(results):
    jobs = results["jobs"]
    assert jobs["status"] == "done"
    assert jobs["sync_simulate_matches_job_result"] is True
    assert jobs["job_id"].startswith("s")


def test_sharded_throughput_positive(results):
    assert results["single_process"]["requests_per_s"] > 0.0
    assert results["sharded"]["requests_per_s"] > 0.0
    assert results["speedup"] > 0.0


def test_speedup_floor_when_hardware_allows(results):
    """The 4x floor is asserted exactly when the host can deliver it."""
    expected = (
        results["cpu_count"] >= 4 and results["shards"] >= 4
    )
    assert results["speedup_asserted"] is expected
    if results["speedup_asserted"]:
        assert results["speedup"] >= results["speedup_floor"]
