"""Ablation benches — which generator mechanism produces which figure.

Each ablation flips one GeneratorConfig switch and shows the
corresponding published shape disappears, demonstrating the mechanism
(not chance) carries the result.
"""

import numpy as np

from repro.core.multigpu import multi_gpu_clustering
from repro.core.seasonal import monthly_failure_counts, monthly_ttr
from repro.core.spatial import gpu_slot_distribution
from repro.machines.specs import TSUBAME2
from repro.synth import GeneratorConfig, TraceGenerator, profile_for

SEED = 42


def _generate(machine="tsubame2", **overrides):
    config = GeneratorConfig(seed=SEED, **overrides)
    return TraceGenerator(profile_for(machine), config).generate()


def test_ablation_burst_clustering_drives_fig8(benchmark):
    log_off = benchmark(lambda: _generate(burst_clustering=False))
    log_on = _generate()
    on = multi_gpu_clustering(log_on).clustering_ratio
    off = multi_gpu_clustering(log_off).clustering_ratio
    print(f"\nclustering ratio: bursting on {on:.2f}, off {off:.2f}")
    assert on > off
    assert off < 1.4  # near-exchangeable without the mechanism


def test_ablation_slot_weights_drive_fig5(benchmark):
    log_flat = benchmark(
        lambda: _generate(slot_weighting=False, topology_affinity=1.0)
    )
    log_weighted = _generate()
    flat = gpu_slot_distribution(log_flat.gpu_failures(),
                                 TSUBAME2.gpu_slots)
    weighted = gpu_slot_distribution(log_weighted.gpu_failures(),
                                     TSUBAME2.gpu_slots)
    print(f"\nslot imbalance: weighted {weighted.imbalance():.2f}, "
          f"flat {flat.imbalance():.2f}")
    assert weighted.imbalance() > flat.imbalance()
    assert flat.imbalance() < 1.2


def test_ablation_month_weights_drive_fig12(benchmark):
    log_flat = benchmark(lambda: _generate(arrival_seasonality=False))
    log_seasonal = _generate()
    flat = np.asarray(monthly_failure_counts(log_flat).series(),
                      dtype=float)
    seasonal = np.asarray(monthly_failure_counts(log_seasonal).series(),
                          dtype=float)
    flat_cv = flat.std() / flat.mean()
    seasonal_cv = seasonal.std() / seasonal.mean()
    print(f"\nmonthly count CV: seasonal {seasonal_cv:.3f}, "
          f"flat {flat_cv:.3f}")
    assert seasonal_cv > flat_cv


def test_ablation_ttr_month_factors_drive_fig11(benchmark):
    log_flat = benchmark(lambda: _generate(ttr_seasonality=False))
    log_seasonal = _generate()
    flat_first, flat_second = monthly_ttr(log_flat).half_year_means()
    first, second = monthly_ttr(log_seasonal).half_year_means()
    flat_gap = abs(flat_second - flat_first) / flat_first
    seasonal_gap = (second - first) / first
    print(f"\nT2 half-year TTR gap: seasonal {seasonal_gap:+.2f}, "
          f"flat {flat_gap:+.2f}")
    assert seasonal_gap > 0.15  # published Tsubame-2 effect
    assert flat_gap < seasonal_gap


def test_ablation_topology_affinity_drives_busmate_pairs(benchmark):
    def pair_share(log):
        pairs = [
            record.gpus_involved
            for record in log
            if record.num_gpus_involved == 2
        ]
        same_hub = sum(1 for pair in pairs if pair == (1, 2))
        return same_hub / len(pairs)

    log_off = benchmark(lambda: _generate(topology_affinity=1.0))
    log_on = _generate(topology_affinity=3.0)
    on, off = pair_share(log_on), pair_share(log_off)
    print(f"\nshare of 2-GPU failures on the shared hub (GPUs 1+2): "
          f"affinity on {on:.2f}, off {off:.2f}")
    assert on > off
