"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's exhibits from the
calibrated synthetic logs (seed 42 throughout, so the printed numbers
are stable) and asserts the published *shape* — who wins, by roughly
what factor, where the crossovers fall.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated tables and figures.
"""

from __future__ import annotations

import pytest

from repro.core.records import FailureLog
from repro.synth import generate_log

BENCH_SEED = 42


@pytest.fixture(scope="session")
def t2_log() -> FailureLog:
    """Calibrated Tsubame-2 failure log (897 failures)."""
    return generate_log("tsubame2", seed=BENCH_SEED)


@pytest.fixture(scope="session")
def t3_log() -> FailureLog:
    """Calibrated Tsubame-3 failure log (338 failures)."""
    return generate_log("tsubame3", seed=BENCH_SEED)
