"""Figure 4 — per-node failure-count distribution.

Paper: ~60% of affected Tsubame-2 nodes saw exactly one failure, while
~60% of affected Tsubame-3 nodes saw more than one; ~10% of nodes saw
exactly two on both; the three-failure share on Tsubame-3 is ~50%
higher than on Tsubame-2.  On multi-failure nodes, Tsubame-2 repeats
are almost all hardware while Tsubame-3 repeats are balanced.
"""

import pytest

from repro.core.report import report_fig4
from repro.core.spatial import (
    node_failure_distribution,
    repeat_failure_class_split,
)


def test_fig4a_tsubame2_node_distribution(benchmark, t2_log):
    result = benchmark(node_failure_distribution, t2_log)
    print("\n" + report_fig4(t2_log))
    assert result.fraction_with_exactly(1) == pytest.approx(0.60, abs=0.06)
    assert result.fraction_with_exactly(2) == pytest.approx(0.10, abs=0.05)


def test_fig4b_tsubame3_node_distribution(benchmark, t3_log):
    result = benchmark(node_failure_distribution, t3_log)
    print("\n" + report_fig4(t3_log))
    assert result.fraction_with_more_than(1) == pytest.approx(0.60,
                                                              abs=0.10)
    assert result.fraction_with_exactly(2) == pytest.approx(0.10, abs=0.05)


def test_fig4_three_failure_crossover(t2_log, t3_log):
    t2 = node_failure_distribution(t2_log).fraction_with_exactly(3)
    t3 = node_failure_distribution(t3_log).fraction_with_exactly(3)
    assert t3 > 1.2 * t2


def test_fig4_repeat_class_split(t2_log, t3_log):
    t2 = repeat_failure_class_split(t2_log)
    t3 = repeat_failure_class_split(t3_log)
    print(f"\nT2 repeats: {t2.hardware_failures} hardware / "
          f"{t2.software_failures} software")
    print(f"T3 repeats: {t3.hardware_failures} hardware / "
          f"{t3.software_failures} software")
    # Paper: 352 HW / 1 SW on Tsubame-2; 104 HW / 95 SW on Tsubame-3.
    assert t2.software_failures / t2.total < 0.05
    t3_soft = (t3.software_failures + t3.unknown_failures) / t3.total
    assert 0.30 < t3_soft < 0.65
