"""Figure 6 — cumulative distribution of time between failures.

Paper: MTBF ~15 h on Tsubame-2 vs >70 h on Tsubame-3 (>4x better);
75% of Tsubame-2 failures arrive within 20 h of the previous one vs
93 h on Tsubame-3; Tsubame-2's curve is steeper, Tsubame-3 has the
longer tail.
"""

import pytest

from repro.core.report import report_fig6
from repro.core.temporal import tbf_distribution
from repro.stats.tests import ks_two_sample
from repro.core.metrics import tbf_series_hours


def test_fig6_tsubame2_tbf(benchmark, t2_log):
    result = benchmark(tbf_distribution, t2_log)
    assert result.mtbf_hours == pytest.approx(15.3, rel=0.05)
    assert result.p75_hours() == pytest.approx(20.0, rel=0.15)


def test_fig6_tsubame3_tbf(benchmark, t3_log):
    result = benchmark(tbf_distribution, t3_log)
    assert result.mtbf_hours > 70.0
    assert result.p75_hours() == pytest.approx(93.0, rel=0.15)


def test_fig6_cross_machine_shape(t2_log, t3_log):
    print("\n" + report_fig6([t2_log, t3_log]))
    t2 = tbf_distribution(t2_log)
    t3 = tbf_distribution(t3_log)
    # >4x MTBF improvement.
    assert t3.mtbf_hours / t2.mtbf_hours > 4.0
    # Steeper Tsubame-2 curve at every probe point.
    for hours in (5.0, 10.0, 20.0, 50.0, 100.0):
        assert t2.fraction_within(hours) > t3.fraction_within(hours)
    # And the distributions are statistically distinct.
    assert ks_two_sample(
        tbf_series_hours(t2_log), tbf_series_hours(t3_log)
    ).rejects_null()
