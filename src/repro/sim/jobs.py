"""Job and workload models for the scheduler substrate.

A job asks for a number of nodes for a duration; the workload generator
produces a Poisson arrival stream with a mix of small/medium/large jobs,
loosely shaped like an HPC centre's queue (many small jobs, a few
node-hungry ones).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["JobState", "Job", "WorkloadConfig", "WorkloadGenerator"]


class JobState(enum.Enum):
    """Lifecycle of a simulated job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class Job:
    """One batch job.

    ``work_done_hours`` tracks progress committed by checkpoints, so a
    failure loses only the work since the last checkpoint.
    """

    job_id: int
    num_nodes: int
    duration_hours: float
    submit_time: float
    state: JobState = JobState.PENDING
    assigned_nodes: tuple[int, ...] = ()
    start_time: float | None = None
    end_time: float | None = None
    work_done_hours: float = 0.0
    restarts: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValidationError(
                f"job {self.job_id} needs >= 1 node, got {self.num_nodes}"
            )
        if self.duration_hours <= 0:
            raise ValidationError(
                f"job {self.job_id} duration must be positive, got "
                f"{self.duration_hours}"
            )
        if self.submit_time < 0:
            raise ValidationError(
                f"job {self.job_id} submit time must be >= 0"
            )

    @property
    def remaining_hours(self) -> float:
        """Work left after the last committed checkpoint."""
        return max(0.0, self.duration_hours - self.work_done_hours)

    @property
    def node_hours(self) -> float:
        """Total useful node-hours the job represents."""
        return self.num_nodes * self.duration_hours

    @property
    def waited_hours(self) -> float:
        """Queue wait (nan while still pending)."""
        if self.start_time is None:
            return float("nan")
        return self.start_time - self.submit_time


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the synthetic workload.

    Defaults give a moderately loaded machine: exponential inter-
    arrivals, lognormal durations, and a small/medium/large node-count
    mix.
    """

    mean_interarrival_hours: float = 0.5
    mean_duration_hours: float = 8.0
    duration_sigma: float = 1.0
    size_choices: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    size_weights: tuple[float, ...] = (0.35, 0.25, 0.18, 0.12, 0.07, 0.03)
    max_duration_hours: float = 168.0

    def __post_init__(self) -> None:
        if self.mean_interarrival_hours <= 0:
            raise ValidationError("mean_interarrival_hours must be positive")
        if self.mean_duration_hours <= 0:
            raise ValidationError("mean_duration_hours must be positive")
        if self.duration_sigma < 0:
            raise ValidationError("duration_sigma must be >= 0")
        if len(self.size_choices) != len(self.size_weights):
            raise ValidationError(
                "size_choices and size_weights must have equal length"
            )
        if any(size < 1 for size in self.size_choices):
            raise ValidationError("size_choices must be >= 1")
        if any(weight < 0 for weight in self.size_weights):
            raise ValidationError("size_weights must be non-negative")
        if sum(self.size_weights) <= 0:
            raise ValidationError("size_weights must have a positive sum")
        if self.max_duration_hours <= 0:
            raise ValidationError("max_duration_hours must be positive")


class WorkloadGenerator:
    """Generates a job arrival stream."""

    def __init__(self, config: WorkloadConfig, seed: int = 0) -> None:
        self._config = config
        self._rng = np.random.default_rng(seed)
        self._next_id = 0

    def jobs_until(self, horizon_hours: float) -> list[Job]:
        """Generate all jobs submitted before the horizon.

        Raises:
            ValidationError: On a non-positive horizon.
        """
        if horizon_hours <= 0:
            raise ValidationError(
                f"horizon must be positive, got {horizon_hours}"
            )
        config = self._config
        weights = np.asarray(config.size_weights, dtype=float)
        probabilities = weights / weights.sum()
        mu = float(
            np.log(config.mean_duration_hours)
            - 0.5 * config.duration_sigma**2
        )
        jobs: list[Job] = []
        clock = 0.0
        while True:
            clock += float(
                self._rng.exponential(config.mean_interarrival_hours)
            )
            if clock >= horizon_hours:
                break
            duration = float(
                np.clip(
                    self._rng.lognormal(mu, config.duration_sigma),
                    0.1,
                    config.max_duration_hours,
                )
            )
            size = int(
                self._rng.choice(config.size_choices, p=probabilities)
            )
            jobs.append(
                Job(
                    job_id=self._next_id,
                    num_nodes=size,
                    duration_hours=duration,
                    submit_time=clock,
                )
            )
            self._next_id += 1
        return jobs
