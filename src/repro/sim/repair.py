"""Repair service: technicians and spare parts.

The paper's RQ5 discussion argues MTTR is governed by operational
choices — "one can significantly reduce the MTTR by overly proactive
measures such as keeping an excessive number of spare components
on-site or more staff devoted to failure monitoring, but this comes at
an increased operational cost."  This module makes that trade-off a
simulated quantity: a failed node waits for (a) a free technician and
(b) a spare part for its category; spares replenish after a
procurement lead time.  Prediction-driven *pre-staging* (see
:mod:`repro.predict`) can place a spare before the failure arrives,
cutting the waiting component of the effective MTTR.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import SimulationError, ValidationError
from repro.sim.cluster import Cluster
from repro.sim.engine import SimulationEngine

__all__ = ["RepairPolicy", "SparePool", "RepairService"]


@dataclass(frozen=True)
class RepairPolicy:
    """Operational parameters of the repair organisation.

    Attributes:
        num_technicians: Concurrent repairs possible.
        spare_lead_time_hours: Procurement delay to replenish one
            consumed spare.
        hardware_categories: Categories that consume a spare part;
            software repairs need a technician only.
    """

    num_technicians: int = 4
    spare_lead_time_hours: float = 168.0
    hardware_categories: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.num_technicians < 1:
            raise ValidationError(
                f"num_technicians must be >= 1, got {self.num_technicians}"
            )
        if self.spare_lead_time_hours < 0:
            raise ValidationError(
                f"spare_lead_time_hours must be >= 0, got "
                f"{self.spare_lead_time_hours}"
            )


class SparePool:
    """Per-category spare-part inventory with replenishment."""

    def __init__(self, initial: dict[str, int]) -> None:
        for category, count in initial.items():
            if count < 0:
                raise ValidationError(
                    f"spare count for {category!r} must be >= 0, "
                    f"got {count}"
                )
        self._stock = dict(initial)
        self._consumed = 0
        self._stockouts = 0

    @property
    def consumed(self) -> int:
        """Total spares consumed."""
        return self._consumed

    @property
    def stockouts(self) -> int:
        """Times a repair had to wait because no spare was on hand."""
        return self._stockouts

    def level(self, category: str) -> int:
        """Current stock for one category (0 when untracked)."""
        return self._stock.get(category, 0)

    def try_take(self, category: str) -> bool:
        """Consume one spare if available; record a stockout if not."""
        if self._stock.get(category, 0) > 0:
            self._stock[category] -= 1
            self._consumed += 1
            return True
        self._stockouts += 1
        return False

    def restock(self, category: str, count: int = 1) -> None:
        """Add spares back to the pool (replenishment arrival)."""
        if count < 1:
            raise ValidationError(f"count must be >= 1, got {count}")
        self._stock[category] = self._stock.get(category, 0) + count


@dataclass
class _PendingRepair:
    node_id: int
    category: str
    duration_hours: float
    needs_spare: bool
    has_spare: bool = False


class RepairService:
    """Dispatches technicians and spares to failed nodes.

    Wire-up: the fault injector calls :meth:`submit` when a node
    fails; the service starts the repair once a technician and (for
    hardware) a spare are available, and completes it after the
    failure's hands-on duration.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: Cluster,
        policy: RepairPolicy,
        spares: SparePool,
    ) -> None:
        self._engine = engine
        self._cluster = cluster
        self._policy = policy
        self._spares = spares
        self._busy_technicians = 0
        self._queue: deque[_PendingRepair] = deque()
        self._waiting_for_spare: list[_PendingRepair] = []
        self._completed = 0
        self._completion_listeners: list = []

    def add_completion_listener(self, callback) -> None:
        """Register ``callback(node_id)`` to run after each repair."""
        self._completion_listeners.append(callback)

    @property
    def completed(self) -> int:
        """Repairs completed so far."""
        return self._completed

    @property
    def queue_length(self) -> int:
        """Repairs waiting for a technician."""
        return len(self._queue)

    @property
    def waiting_for_spares(self) -> int:
        """Repairs waiting for a part."""
        return len(self._waiting_for_spare)

    def submit(
        self, node_id: int, category: str, duration_hours: float
    ) -> None:
        """Enqueue a repair for a node that just failed.

        Raises:
            SimulationError: On a non-positive duration.
        """
        if duration_hours <= 0:
            raise SimulationError(
                f"repair duration must be positive, got {duration_hours}"
            )
        pending = _PendingRepair(
            node_id=node_id,
            category=category,
            duration_hours=duration_hours,
            needs_spare=category in self._policy.hardware_categories,
        )
        if pending.needs_spare:
            if self._spares.try_take(category):
                pending.has_spare = True
                self._order_replacement(category)
            else:
                # Back-order: part arrives after the lead time, then
                # the repair joins the technician queue.
                self._waiting_for_spare.append(pending)
                self._engine.schedule_in(
                    self._policy.spare_lead_time_hours,
                    lambda p=pending: self._spare_arrived(p),
                )
                return
        self._queue.append(pending)
        self._dispatch()

    def prestage_spare(self, category: str, count: int = 1) -> None:
        """Proactively add spares (prediction-driven provisioning)."""
        self._spares.restock(category, count)

    # -- internals -----------------------------------------------------------

    def _order_replacement(self, category: str) -> None:
        self._engine.schedule_in(
            self._policy.spare_lead_time_hours,
            lambda: self._spares.restock(category),
        )

    def _spare_arrived(self, pending: _PendingRepair) -> None:
        self._waiting_for_spare.remove(pending)
        pending.has_spare = True
        self._queue.append(pending)
        self._dispatch()

    def _dispatch(self) -> None:
        while (
            self._queue
            and self._busy_technicians < self._policy.num_technicians
        ):
            pending = self._queue.popleft()
            self._busy_technicians += 1
            self._cluster.start_repair(pending.node_id, self._engine.now)
            if self._engine.has_subscribers("repair_start"):
                self._engine.publish(
                    "repair_start",
                    node_id=pending.node_id,
                    category=pending.category,
                    time_hours=self._engine.now,
                )
            self._engine.schedule_in(
                pending.duration_hours,
                lambda p=pending: self._complete(p),
            )

    def _complete(self, pending: _PendingRepair) -> None:
        self._cluster.complete_repair(pending.node_id, self._engine.now)
        self._busy_technicians -= 1
        self._completed += 1
        self._dispatch()
        for callback in self._completion_listeners:
            callback(pending.node_id)
        if self._engine.has_subscribers("repair"):
            self._engine.publish(
                "repair",
                node_id=pending.node_id,
                category=pending.category,
                time_hours=self._engine.now,
            )
