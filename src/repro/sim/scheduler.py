"""Batch scheduler substrate: FCFS with simple backfill.

Jobs queue FCFS; when the head job does not fit the free nodes, smaller
jobs further back may backfill.  Node failures kill the jobs running on
them; with a checkpoint policy a killed job only loses the work since
its last committed checkpoint, otherwise it restarts from scratch.
This is the substrate the mitigation benchmarks run on: it turns MTBF
and MTTR into queue waits and lost node-hours.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.cluster import Cluster
from repro.sim.engine import SimulationEngine
from repro.sim.jobs import Job, JobState

__all__ = ["SchedulerStats", "Scheduler"]


@dataclass
class SchedulerStats:
    """Counters the scheduler accumulates over a run."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_killed_by_failures: int = 0
    useful_node_hours: float = 0.0
    lost_node_hours: float = 0.0
    total_wait_hours: float = 0.0

    @property
    def mean_wait_hours(self) -> float:
        """Mean queue wait over completed jobs (0 when none)."""
        if self.jobs_completed == 0:
            return 0.0
        return self.total_wait_hours / self.jobs_completed

    @property
    def goodput_fraction(self) -> float:
        """useful / (useful + lost) node-hours (1.0 when idle)."""
        total = self.useful_node_hours + self.lost_node_hours
        if total <= 0:
            return 1.0
        return self.useful_node_hours / total


@dataclass
class _RunningJob:
    job: Job
    nodes: tuple[int, ...]
    started_at: float
    epoch: int


class Scheduler:
    """FCFS + backfill scheduler bound to a simulated cluster."""

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: Cluster,
        checkpoint_policy: CheckpointPolicy | None = None,
        backfill_depth: int = 16,
    ) -> None:
        if backfill_depth < 0:
            raise SimulationError(
                f"backfill_depth must be >= 0, got {backfill_depth}"
            )
        self._engine = engine
        self._cluster = cluster
        self._policy = checkpoint_policy
        self._backfill_depth = backfill_depth
        self._pending: list[Job] = []
        self._running: dict[int, _RunningJob] = {}
        self._node_to_job: dict[int, int] = {}
        self._epochs: dict[int, int] = {}
        self._in_maintenance = False
        self._maintenance_windows = 0
        self.stats = SchedulerStats()

    # -- maintenance windows ---------------------------------------------

    @property
    def in_maintenance(self) -> bool:
        """True while a maintenance window is open (no new starts)."""
        return self._in_maintenance

    @property
    def maintenance_windows_held(self) -> int:
        """Maintenance windows completed so far."""
        return self._maintenance_windows

    def schedule_maintenance(
        self, period_hours: float, duration_hours: float
    ) -> None:
        """Hold a recurring maintenance window.

        During a window no new jobs start (running jobs drain
        naturally) — the opportunity the operations staff needs for
        the proactive actions the paper recommends (health tests, GPU
        rearrangement, spare staging).  The first window opens one
        period from now.

        Raises:
            SimulationError: On non-positive parameters or a duration
                that swallows the whole period.
        """
        if period_hours <= 0 or duration_hours <= 0:
            raise SimulationError(
                f"maintenance period and duration must be positive, got "
                f"{period_hours} / {duration_hours}"
            )
        if duration_hours >= period_hours:
            raise SimulationError(
                "maintenance duration must be shorter than the period"
            )

        def open_window() -> None:
            self._in_maintenance = True
            self._engine.schedule_in(duration_hours, close_window)

        def close_window() -> None:
            self._in_maintenance = False
            self._maintenance_windows += 1
            self._try_schedule()
            self._engine.schedule_in(
                period_hours - duration_hours, open_window
            )

        self._engine.schedule_in(period_hours, open_window)

    # -- job intake ----------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Accept a job into the queue (at the current sim time)."""
        job.state = JobState.PENDING
        self._pending.append(job)
        self.stats.jobs_submitted += 1
        if self._engine.has_subscribers("job_submit"):
            self._engine.publish(
                "job_submit",
                job_id=job.job_id,
                num_nodes=job.num_nodes,
                duration_hours=job.duration_hours,
                time_hours=self._engine.now,
            )
        self._try_schedule()

    def submit_all(self, jobs: list[Job]) -> None:
        """Schedule submission events for a pre-generated workload."""
        for job in jobs:
            self._engine.schedule_at(
                job.submit_time, lambda j=job: self.submit(j)
            )

    @property
    def queue_length(self) -> int:
        """Jobs waiting to start."""
        return len(self._pending)

    @property
    def running_count(self) -> int:
        """Jobs currently running."""
        return len(self._running)

    # -- failure / repair hooks -----------------------------------------------

    def handle_node_failure(self, node_id: int) -> None:
        """React to a node failing: kill and requeue its job."""
        job_id = self._node_to_job.get(node_id)
        if job_id is None:
            return
        entry = self._running.pop(job_id)
        for node in entry.nodes:
            self._node_to_job.pop(node, None)
        job = entry.job
        if self._engine.has_subscribers("job_killed"):
            self._engine.publish(
                "job_killed",
                job_id=job.job_id,
                node_id=node_id,
                time_hours=self._engine.now,
            )
        elapsed = self._engine.now - entry.started_at
        committed = self._committed_work(elapsed)
        lost = max(0.0, elapsed - committed)
        job.work_done_hours = min(
            job.duration_hours, job.work_done_hours + committed
        )
        job.restarts += 1
        self.stats.jobs_killed_by_failures += 1
        self.stats.useful_node_hours += committed * job.num_nodes
        self.stats.lost_node_hours += lost * job.num_nodes
        if job.remaining_hours <= 0:
            # The failure hit during the final checkpointed stretch;
            # everything was already committed.
            self._finish(job)
            self._try_schedule()
            return
        job.state = JobState.PENDING
        self._pending.insert(0, job)
        self._try_schedule()

    def handle_node_repair(self, node_id: int) -> None:
        """React to a node returning to service."""
        del node_id  # capacity change only; scheduling re-reads state
        self._try_schedule()

    # -- internals -----------------------------------------------------------

    def _committed_work(self, elapsed: float) -> float:
        if self._policy is None:
            return 0.0
        intervals = int(elapsed // self._policy.interval_hours)
        return intervals * self._policy.committed_per_interval_hours

    def _free_nodes(self) -> list[int]:
        return [
            node_id
            for node_id in self._cluster.available_nodes()
            if node_id not in self._node_to_job
        ]

    def _wall_time_for(self, work_hours: float) -> float:
        if self._policy is None:
            return work_hours
        stretch = self._policy.interval_hours / (
            self._policy.committed_per_interval_hours
        )
        return work_hours * stretch

    def _try_schedule(self) -> None:
        if self._in_maintenance:
            return
        free = self._free_nodes()
        scheduled_any = True
        while scheduled_any and self._pending:
            scheduled_any = False
            # FCFS head first, then shallow backfill.
            for index, job in enumerate(self._pending):
                if index > self._backfill_depth:
                    break
                if job.num_nodes <= len(free):
                    self._pending.pop(index)
                    nodes = tuple(free[: job.num_nodes])
                    free = free[job.num_nodes:]
                    self._start(job, nodes)
                    scheduled_any = True
                    break

    def _start(self, job: Job, nodes: tuple[int, ...]) -> None:
        now = self._engine.now
        job.state = JobState.RUNNING
        if job.start_time is None:
            job.start_time = now
        job.assigned_nodes = nodes
        epoch = self._epochs.get(job.job_id, 0) + 1
        self._epochs[job.job_id] = epoch
        self._running[job.job_id] = _RunningJob(
            job=job, nodes=nodes, started_at=now, epoch=epoch
        )
        for node in nodes:
            self._node_to_job[node] = job.job_id
        if self._engine.has_subscribers("job_start"):
            self._engine.publish(
                "job_start",
                job_id=job.job_id,
                nodes=list(nodes),
                time_hours=now,
            )
        wall = self._wall_time_for(job.remaining_hours)
        self._engine.schedule_in(
            wall, lambda j=job, e=epoch: self._complete(j, e)
        )

    def _complete(self, job: Job, epoch: int) -> None:
        entry = self._running.get(job.job_id)
        if entry is None or entry.epoch != epoch:
            return  # stale completion: the job failed and restarted
        self._running.pop(job.job_id)
        for node in entry.nodes:
            self._node_to_job.pop(node, None)
        self.stats.useful_node_hours += (
            job.remaining_hours * job.num_nodes
        )
        job.work_done_hours = job.duration_hours
        self._finish(job)
        self._try_schedule()

    def _finish(self, job: Job) -> None:
        job.state = JobState.COMPLETED
        job.end_time = self._engine.now
        self.stats.jobs_completed += 1
        if job.start_time is not None:
            self.stats.total_wait_hours += job.waited_hours
        if self._engine.has_subscribers("job_complete"):
            self._engine.publish(
                "job_complete",
                job_id=job.job_id,
                time_hours=self._engine.now,
            )
