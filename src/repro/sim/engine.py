"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are (time, sequence,
callback) triples on a binary heap; ties in time break by insertion
order, so a seeded simulation replays identically.  Time is in hours,
matching the rest of the library.

The engine also carries a tiny publish/subscribe bus so simulation
components can announce domain events (a failure fired, a repair
completed) to outside observers — e.g. a live
:class:`repro.stream.monitor.FailureMonitor` — without the components
knowing who is listening.  Subscribers run synchronously, in
subscription order, at the simulation time of the publish.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable

from repro.errors import SimulationError

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Event-driven simulation clock and queue."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        self._subscribers: dict[str, list[Callable[..., None]]] = {}
        self._published = 0

    # -- event bus ---------------------------------------------------------

    @property
    def published(self) -> int:
        """Domain events published on the bus so far."""
        return self._published

    def subscribe(
        self, topic: str, callback: Callable[..., None]
    ) -> None:
        """Register ``callback(**payload)`` for a topic.

        Known topics: ``"failure"`` (payload ``record``,
        ``time_hours``) published by the fault injector;
        ``"repair_start"`` and ``"repair"`` (payload ``node_id``,
        ``category``, ``time_hours``) published by the repair service
        when hands-on work begins and completes; and the scheduler's
        job lifecycle — ``"job_submit"`` (``job_id``, ``num_nodes``,
        ``duration_hours``, ``time_hours``), ``"job_start"``
        (``job_id``, ``nodes``, ``time_hours``), ``"job_complete"``
        (``job_id``, ``time_hours``) and ``"job_killed"``
        (``job_id``, ``node_id``, ``time_hours``).  The trace
        recorder (:mod:`repro.trace`) subscribes to all of them.

        Raises:
            SimulationError: On an empty topic.
        """
        if not topic:
            raise SimulationError("topic must be a non-empty string")
        self._subscribers.setdefault(topic, []).append(callback)

    def has_subscribers(self, topic: str) -> bool:
        """True when at least one callback listens on ``topic``.

        Publishers with a non-trivial payload should check this first:
        it lets them skip building the payload dict (and any values
        that exist only to be published) on the hot path of a headless
        run where nobody is listening.
        """
        return topic in self._subscribers

    def publish(self, topic: str, **payload) -> None:
        """Deliver a domain event to every subscriber of ``topic``.

        Publishing to a topic nobody subscribed to is free (beyond a
        dict lookup), so components publish unconditionally.
        """
        callbacks = self._subscribers.get(topic)
        if not callbacks:
            return
        self._published += 1
        for callback in callbacks:
            callback(**payload)

    @property
    def now(self) -> float:
        """Current simulation time in hours."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled events not yet processed."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events processed so far."""
        return self._processed

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> None:
        """Schedule a callback at an absolute time.

        Times must be finite: a NaN would compare False against every
        ordering check and silently corrupt the heap (every later event
        starves behind it), and an infinity would pin the clock at the
        end of time.

        Raises:
            SimulationError: If the time is NaN/infinite or lies in the
                past.
        """
        if not math.isfinite(time):
            raise SimulationError(
                f"event time must be finite, got {time!r}"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} h; the clock is already at "
                f"{self._now} h"
            )
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, callback))

    def schedule_in(
        self, delay: float, callback: Callable[[], None]
    ) -> None:
        """Schedule a callback ``delay`` hours from now.

        Raises:
            SimulationError: If the delay is negative or non-finite
                (see :meth:`schedule_at` for why NaN/inf are rejected).
        """
        if not math.isfinite(delay):
            raise SimulationError(
                f"delay must be finite, got {delay!r}"
            )
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        # Inlined schedule_at: now and delay are finite and delay >= 0,
        # so the absolute time passes both of its checks by
        # construction.  (finite + finite can only overflow to inf for
        # times ~1e308 hours, far past any meaningful horizon.)
        self._sequence += 1
        heapq.heappush(
            self._queue, (self._now + delay, self._sequence, callback)
        )

    def run_until(self, horizon: float) -> None:
        """Process events in order until the horizon.

        Events scheduled exactly at the horizon still run; the clock
        finishes at ``horizon``.

        Raises:
            SimulationError: If the horizon is NaN/infinite or lies in
                the past.  (A NaN horizon would end the comparison loop
                immediately yet rewind the clock to NaN; an infinite
                one would leave the clock pinned at the end of time.)
        """
        if not math.isfinite(horizon):
            raise SimulationError(
                f"horizon must be finite, got {horizon!r}"
            )
        if horizon < self._now:
            raise SimulationError(
                f"horizon {horizon} h is before the current time "
                f"{self._now} h"
            )
        # Hot loop: bind the heap and heappop once.  Entries are
        # indexed rather than unpacked so the unused sequence number
        # never hits a local, and ``_processed`` stays current per
        # event (callbacks may read it).
        queue = self._queue
        pop = heapq.heappop
        while queue and queue[0][0] <= horizon:
            entry = pop(queue)
            self._now = entry[0]
            self._processed += 1
            entry[2]()
        self._now = horizon

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Process every pending event (with a runaway guard).

        Raises:
            SimulationError: If more than ``max_events`` fire, which
                almost always means an event keeps rescheduling itself.
        """
        fired = 0
        while self._queue:
            # Guard *before* executing: the (max_events + 1)-th event
            # must not fire at all, or a runaway callback gets one
            # extra side-effecting execution past the stated budget.
            if fired >= max_events:
                raise SimulationError(
                    f"more than {max_events} events processed; "
                    f"likely a self-rescheduling loop"
                )
            time, _, callback = heapq.heappop(self._queue)
            self._now = time
            self._processed += 1
            callback()
            fired += 1
