"""Cluster state: node and GPU health over simulated time.

Each node is a small state machine (HEALTHY -> FAILED -> REPAIRING ->
HEALTHY) with per-GPU-slot health for GPU-incident failures.  The
cluster records every downtime interval so availability and effective
repair times can be computed after a run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.machines.specs import MachineSpec

__all__ = ["NodeState", "DowntimeInterval", "Node", "Cluster"]


class NodeState(enum.Enum):
    """Health states of a compute node."""

    HEALTHY = "healthy"
    FAILED = "failed"
    REPAIRING = "repairing"


@dataclass(frozen=True)
class DowntimeInterval:
    """One completed outage of a node.

    ``waiting_hours`` is time between failure and repair start (queue
    for a technician / spare part); ``repair_hours`` is hands-on time.
    """

    node_id: int
    category: str
    failed_at: float
    repair_started_at: float
    repaired_at: float

    @property
    def waiting_hours(self) -> float:
        return self.repair_started_at - self.failed_at

    @property
    def repair_hours(self) -> float:
        return self.repaired_at - self.repair_started_at

    @property
    def total_hours(self) -> float:
        """Effective time to recovery as a job scheduler sees it."""
        return self.repaired_at - self.failed_at


@dataclass
class Node:
    """Mutable health of one node."""

    node_id: int
    num_gpus: int
    state: NodeState = NodeState.HEALTHY
    failed_gpus: set[int] = field(default_factory=set)
    current_category: str | None = None
    failed_at: float | None = None
    repair_started_at: float | None = None

    @property
    def is_available(self) -> bool:
        return self.state is NodeState.HEALTHY


class Cluster:
    """The fleet of nodes plus the outage history."""

    def __init__(self, spec: MachineSpec) -> None:
        self._spec = spec
        self._nodes = [
            Node(node_id=index, num_gpus=spec.gpus_per_node)
            for index in range(spec.num_nodes)
        ]
        self._history: list[DowntimeInterval] = []
        # Swap-remove index of healthy node ids: O(1) membership
        # updates on fail/repair and O(1) uniform sampling, so the
        # fault injector never scans the fleet per event.  The list
        # order is arbitrary but evolves deterministically with the
        # event history.
        self._available: list[int] = list(range(spec.num_nodes))
        self._available_slot: list[int] = list(range(spec.num_nodes))

    @property
    def spec(self) -> MachineSpec:
        return self._spec

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def history(self) -> tuple[DowntimeInterval, ...]:
        """Completed outages, in completion order."""
        return tuple(self._history)

    def node(self, node_id: int) -> Node:
        """Return one node's state.

        Raises:
            SimulationError: On an out-of-range id.
        """
        if not 0 <= node_id < len(self._nodes):
            raise SimulationError(
                f"node id {node_id} out of range [0, {len(self._nodes)})"
            )
        return self._nodes[node_id]

    def available_nodes(self) -> list[int]:
        """Ids of nodes currently healthy, in ascending order."""
        return [n.node_id for n in self._nodes if n.is_available]

    def num_available(self) -> int:
        """Count of healthy nodes."""
        return len(self._available)

    def available_at(self, index: int) -> int:
        """Return one healthy node id by positional index in O(1).

        The ordering is an implementation detail (swap-remove order,
        not ascending); it is deterministic for a given event history,
        which is all uniform sampling needs — pair with
        :meth:`num_available` to draw a random healthy node without
        materialising the fleet-sized list of
        :meth:`available_nodes`.

        Raises:
            SimulationError: If the index is out of range (including
                when no node is healthy).
        """
        if not 0 <= index < len(self._available):
            raise SimulationError(
                f"available index {index} out of range "
                f"[0, {len(self._available)})"
            )
        return self._available[index]

    def _mark_unavailable(self, node_id: int) -> None:
        slot = self._available_slot[node_id]
        last = self._available[-1]
        self._available[slot] = last
        self._available_slot[last] = slot
        self._available.pop()
        self._available_slot[node_id] = -1

    def _mark_available(self, node_id: int) -> None:
        self._available_slot[node_id] = len(self._available)
        self._available.append(node_id)

    # -- state transitions -------------------------------------------------

    def fail(
        self,
        node_id: int,
        category: str,
        time: float,
        gpus_involved: tuple[int, ...] = (),
    ) -> None:
        """Mark a node failed at ``time``.

        A failure on an already-failed node is absorbed into the
        ongoing outage (field logs show repeated hits during repair);
        it does not reset the failure clock.

        Raises:
            SimulationError: On invalid GPU slots.
        """
        node = self.node(node_id)
        for slot in gpus_involved:
            if not 0 <= slot < node.num_gpus:
                raise SimulationError(
                    f"GPU slot {slot} out of range on node {node_id}"
                )
            node.failed_gpus.add(slot)
        if node.state is not NodeState.HEALTHY:
            return
        node.state = NodeState.FAILED
        node.current_category = category
        node.failed_at = time
        node.repair_started_at = None
        self._mark_unavailable(node_id)

    def start_repair(self, node_id: int, time: float) -> None:
        """Mark a technician as having started on a failed node.

        Raises:
            SimulationError: If the node is not in the FAILED state.
        """
        node = self.node(node_id)
        if node.state is not NodeState.FAILED:
            raise SimulationError(
                f"cannot start repair on node {node_id} in state "
                f"{node.state.value}"
            )
        node.state = NodeState.REPAIRING
        node.repair_started_at = time

    def complete_repair(self, node_id: int, time: float) -> DowntimeInterval:
        """Return a repaired node to service and log the outage.

        Raises:
            SimulationError: If the node is not being repaired.
        """
        node = self.node(node_id)
        if node.state is not NodeState.REPAIRING:
            raise SimulationError(
                f"cannot complete repair on node {node_id} in state "
                f"{node.state.value}"
            )
        if node.failed_at is None or node.repair_started_at is None:
            raise SimulationError(
                f"node {node_id} has inconsistent repair bookkeeping"
            )
        interval = DowntimeInterval(
            node_id=node_id,
            category=node.current_category or "unknown",
            failed_at=node.failed_at,
            repair_started_at=node.repair_started_at,
            repaired_at=time,
        )
        self._history.append(interval)
        node.state = NodeState.HEALTHY
        node.failed_gpus.clear()
        node.current_category = None
        node.failed_at = None
        node.repair_started_at = None
        self._mark_available(node_id)
        return interval

    # -- aggregate metrics ---------------------------------------------------

    def total_downtime_hours(self) -> float:
        """Sum of completed outage durations."""
        return sum(i.total_hours for i in self._history)

    def availability(self, horizon_hours: float) -> float:
        """Fleet availability over a run of ``horizon_hours``.

        Only completed outages count; a run should finish repairs (or
        accept a small optimistic bias) before reading this.
        """
        if horizon_hours <= 0:
            raise SimulationError(
                f"horizon must be positive, got {horizon_hours}"
            )
        capacity = self.num_nodes * horizon_hours
        return max(0.0, 1.0 - self.total_downtime_hours() / capacity)

    def effective_mttr_hours(self) -> float:
        """Mean effective recovery time (waiting + repair).

        Raises:
            SimulationError: If no outage has completed yet.
        """
        if not self._history:
            raise SimulationError("no completed repairs yet")
        return sum(i.total_hours for i in self._history) / len(self._history)

    def mean_waiting_hours(self) -> float:
        """Mean time failures spend waiting for repair to begin.

        Raises:
            SimulationError: If no outage has completed yet.
        """
        if not self._history:
            raise SimulationError("no completed repairs yet")
        return sum(i.waiting_hours for i in self._history) / len(
            self._history
        )
