"""Prediction-driven proactive maintenance inside the simulator.

Closes the loop on the paper's RQ5 recommendation ("leveraging failure
prediction to initiate recovery proactively"): a
:class:`ProactiveMaintainer` watches the live failure stream through a
streaming predictor and pre-stages spare parts when alarms fire, so
that when the predicted failure arrives the repair does not wait on
procurement.
"""

from __future__ import annotations

from repro.core.records import FailureRecord
from repro.errors import SimulationError, ValidationError
from repro.predict.base import Predictor
from repro.sim.engine import SimulationEngine
from repro.sim.repair import RepairService

__all__ = ["ProactiveMaintainer"]


class ProactiveMaintainer:
    """Pre-stages spares on prediction alarms.

    Args:
        engine: The simulation engine (for the clock).
        repair: The repair service whose pool gets pre-staged parts.
        predictor: A streaming predictor fed every injected failure.
        prestage_category: Category of spare to stage per alarm
            (GPU by default — the dominant hardware consumer).
        max_prestages: Budget cap; staging is an operational cost the
            paper warns about, so it is bounded.
        cooldown_hours: Minimum time between two stagings, so an alarm
            burst does not dump the entire budget at once.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        repair: RepairService,
        predictor: Predictor,
        prestage_category: str = "GPU",
        max_prestages: int = 20,
        cooldown_hours: float = 24.0,
    ) -> None:
        if max_prestages < 1:
            raise ValidationError(
                f"max_prestages must be >= 1, got {max_prestages}"
            )
        if cooldown_hours < 0:
            raise ValidationError(
                f"cooldown_hours must be >= 0, got {cooldown_hours}"
            )
        self._engine = engine
        self._repair = repair
        self._predictor = predictor
        self._category = prestage_category
        self._max_prestages = max_prestages
        self._cooldown_hours = cooldown_hours
        self._prestaged = 0
        self._alarms_seen = 0
        self._last_prestage_at: float | None = None

    @property
    def prestaged(self) -> int:
        """Spares staged so far."""
        return self._prestaged

    @property
    def alarms_seen(self) -> int:
        """Alarms the predictor has raised so far."""
        return self._alarms_seen

    def on_failure(self, record: FailureRecord, time_hours: float) -> None:
        """Feed one injected failure to the predictor; act on alarms.

        Raises:
            SimulationError: If the reported time runs backwards.
        """
        if (
            self._last_prestage_at is not None
            and time_hours < self._last_prestage_at
        ):
            raise SimulationError(
                f"failure at {time_hours} h arrived before the last "
                f"prestage at {self._last_prestage_at} h"
            )
        alarms = self._predictor.observe(record, time_hours)
        self._alarms_seen += len(alarms)
        if not alarms:
            return
        if self._prestaged >= self._max_prestages:
            return
        if (
            self._last_prestage_at is not None
            and time_hours - self._last_prestage_at < self._cooldown_hours
        ):
            return
        self._repair.prestage_spare(self._category)
        self._prestaged += 1
        self._last_prestage_at = time_hours
