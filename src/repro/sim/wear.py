"""GPU card wear and periodic rearrangement.

Figure 5 shows GPU *slots* accumulate failures unevenly.  The paper's
suggested mitigation: "the operations staff could also mitigate this by
rearranging the GPUs periodically during maintenance."  This module
simulates exactly that question: slots keep their (environmental)
failure propensity, cards move.  Without rotation the cards stuck in
hot slots absorb disproportionate wear; with periodic rotation each
card time-shares the hot slots and per-card wear flattens — at the
cost of maintenance events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.machines.specs import get_machine
from repro.synth.profiles import profile_for

__all__ = ["CardWearReport", "simulate_card_wear"]


@dataclass(frozen=True)
class CardWearReport:
    """Per-card failure accumulation after a simulated horizon.

    Attributes:
        machine: Machine name.
        horizon_hours: Simulated duration.
        rotation_period_hours: Rotation cadence (None = never rotated).
        card_failures: Failure count per card, indexed by card id.
        rotations_performed: Maintenance rotations executed.
    """

    machine: str
    horizon_hours: float
    rotation_period_hours: float | None
    card_failures: tuple[int, ...]
    rotations_performed: int

    @property
    def total_failures(self) -> int:
        return sum(self.card_failures)

    @property
    def max_card_failures(self) -> int:
        """Worst-hit card — the card an operator would RMA first."""
        return max(self.card_failures, default=0)

    def gini(self) -> float:
        """Gini coefficient of per-card wear (0 = perfectly even)."""
        total = self.total_failures
        if total == 0:
            return 0.0
        values = sorted(self.card_failures)
        n = len(values)
        cumulative = sum(
            index * value for index, value in enumerate(values, start=1)
        )
        return (2.0 * cumulative) / (n * total) - (n + 1.0) / n

    def top_card_share(self, fraction: float = 0.1) -> float:
        """Share of failures absorbed by the most-worn cards."""
        if not 0.0 < fraction <= 1.0:
            raise SimulationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        total = self.total_failures
        if total == 0:
            return 0.0
        k = max(1, int(round(fraction * len(self.card_failures))))
        worst = sorted(self.card_failures, reverse=True)[:k]
        return sum(worst) / total


def simulate_card_wear(
    machine: str,
    num_nodes: int = 64,
    horizon_hours: float = 3.0 * 8760.0,
    rotation_period_hours: float | None = None,
    seed: int = 0,
) -> CardWearReport:
    """Simulate per-card GPU failure accumulation on a node subset.

    Each node carries one card per GPU slot; slot failure propensities
    come from the machine profile (Figure 5).  GPU-failure events
    arrive per node as a Poisson stream at the machine's historical
    per-node GPU failure rate, land on a slot by propensity, and charge
    the card currently seated there.  Rotation shifts every node's
    cards one slot over at each maintenance point.

    Args:
        machine: ``"tsubame2"`` or ``"tsubame3"``.
        num_nodes: Nodes simulated (wear is i.i.d. across nodes; a
            subset keeps the simulation cheap).
        horizon_hours: Simulated duration (default: three years).
        rotation_period_hours: Rotation cadence; None disables it.
        seed: RNG seed.

    Raises:
        SimulationError: On invalid parameters.
    """
    if num_nodes < 1:
        raise SimulationError(f"num_nodes must be >= 1, got {num_nodes}")
    if horizon_hours <= 0:
        raise SimulationError(
            f"horizon_hours must be positive, got {horizon_hours}"
        )
    if rotation_period_hours is not None and rotation_period_hours <= 0:
        raise SimulationError(
            f"rotation_period_hours must be positive, got "
            f"{rotation_period_hours}"
        )
    spec = get_machine(machine)
    profile = profile_for(machine)
    slots = spec.gpus_per_node
    weights = np.asarray(profile.gpu_slot_weights, dtype=float)
    slot_probabilities = weights / weights.sum()

    # Historical per-node GPU failure rate: GPU failures / span / nodes.
    gpu_failures = profile.category_counts.get("GPU", 0)
    rate_per_node = gpu_failures / spec.log_span_hours / spec.num_nodes
    expected_events = rate_per_node * horizon_hours * num_nodes

    rng = np.random.default_rng(seed)
    num_events = int(rng.poisson(expected_events))
    event_times = np.sort(
        rng.uniform(0.0, horizon_hours, size=num_events)
    )
    event_nodes = rng.integers(0, num_nodes, size=num_events)
    event_slots = rng.choice(slots, size=num_events, p=slot_probabilities)

    # seating[node][slot] = card id currently in that slot.
    seating = [
        [node * slots + slot for slot in range(slots)]
        for node in range(num_nodes)
    ]
    card_failures = [0] * (num_nodes * slots)

    rotations = 0
    next_rotation = (
        rotation_period_hours if rotation_period_hours is not None
        else float("inf")
    )
    for time, node, slot in zip(event_times, event_nodes, event_slots):
        while time >= next_rotation:
            for seats in seating:
                seats.insert(0, seats.pop())  # rotate one slot over
            rotations += 1
            next_rotation += rotation_period_hours
        card_failures[seating[int(node)][int(slot)]] += 1
    # Complete any remaining scheduled rotations within the horizon.
    if rotation_period_hours is not None:
        while next_rotation <= horizon_hours:
            for seats in seating:
                seats.insert(0, seats.pop())
            rotations += 1
            next_rotation += rotation_period_hours

    return CardWearReport(
        machine=machine,
        horizon_hours=horizon_hours,
        rotation_period_hours=rotation_period_hours,
        card_failures=tuple(card_failures),
        rotations_performed=rotations,
    )
