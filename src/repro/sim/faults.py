"""Fault injection for the simulator.

Streams failures into a running simulation with the same calibrated
statistics the trace generator uses: Weibull renewal arrivals, the
profile's category mix, GPU involvement and per-category lognormal
repair durations.  Unlike the offline generator, the injector reacts
to cluster state — failures land on nodes that are currently up.

Two draw strategies are available.  The default (``presample=True``)
pre-samples every stochastic quantity in vectorized NumPy batches and
hands the event loop plain Python floats, so a simulated failure costs
a couple of list indexes instead of several ``Generator`` round-trips;
paired with the cluster's O(1) healthy-node index this is what makes
Monte-Carlo replication fast.  ``presample=False`` retains the
original one-RNG-call-per-draw path (including the fleet-sized
``available_nodes()`` scan per event) as the reference baseline that
``benchmarks/perf_sim.py`` measures speedups against.

The two strategies draw from the *same distributions* but consume the
underlying bit stream differently, so a given seed produces different
(equally valid) trajectories under each.  Within one strategy, runs
are bit-reproducible for a seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import FailureLog, FailureRecord
from repro.errors import SimulationError
from repro.machines.specs import get_machine
from repro.machines.topology import build_node_topology
from repro.sim.cluster import Cluster, NodeState
from repro.sim.engine import SimulationEngine
from repro.sim.repair import RepairService
from repro.synth.arrivals import calibrate_weibull
from repro.synth.involvement import choose_slots
from repro.synth.profiles import MachineProfile
from repro.synth.recovery import LognormalTtrSampler

__all__ = ["FaultInjector"]

#: Draws pre-sampled per vectorized refill.  Large enough that refill
#: overhead amortises to noise, small enough that short runs do not
#: waste milliseconds sampling draws they never consume.
_BATCH = 512
#: Smaller refill for per-category TTR and slot streams (each category
#: only sees its share of the failures).
_SMALL_BATCH = 128


class _Stream:
    """A refillable buffer of pre-sampled draws.

    ``fill`` returns a *list* of Python scalars (``ndarray.tolist()``)
    so consumers index native floats/ints, not NumPy scalars — the
    arithmetic downstream (heap pushes, comparisons) is measurably
    faster on native types.
    """

    __slots__ = ("_fill", "_buffer", "_index")

    def __init__(self, fill) -> None:
        self._fill = fill
        self._buffer: list = []
        self._index = 0

    def next(self):
        index = self._index
        buffer = self._buffer
        if index >= len(buffer):
            buffer = self._buffer = self._fill()
            index = 0
        self._index = index + 1
        return buffer[index]


class _BatchedFaultDraws:
    """Vectorized pre-sampling of every per-failure random quantity."""

    def __init__(
        self,
        rng: np.random.Generator,
        renewal,
        category_names: list[str],
        category_probabilities: np.ndarray,
        involvement_values: list[int],
        involvement_probabilities: np.ndarray,
        ttr_samplers: dict[str, LognormalTtrSampler],
        slot_weights: tuple[float, ...],
    ) -> None:
        self._rng = rng
        names = category_names
        num_categories = len(names)
        self._gaps = _Stream(
            lambda: renewal.sample_gaps(rng, _BATCH).tolist()
        )
        self._categories = _Stream(
            lambda: [
                names[i]
                for i in rng.choice(
                    num_categories, size=_BATCH, p=category_probabilities
                )
            ]
        )
        involvement = np.asarray(involvement_values)
        self._involvement = _Stream(
            lambda: rng.choice(
                involvement,
                size=_SMALL_BATCH,
                p=involvement_probabilities,
            ).tolist()
        )
        self._uniforms = _Stream(lambda: rng.random(_BATCH).tolist())
        self._ttr = {
            name: _Stream(
                lambda s=sampler: s.sample_batch(
                    rng, _SMALL_BATCH
                ).tolist()
            )
            for name, sampler in ttr_samplers.items()
        }
        weights = np.asarray(slot_weights, dtype=float)
        slot_probabilities = weights / weights.sum()
        num_slots = len(slot_weights)
        self._single_slots = _Stream(
            lambda: rng.choice(
                num_slots, size=_SMALL_BATCH, p=slot_probabilities
            ).tolist()
        )

    def next_gap(self) -> float:
        return self._gaps.next()

    def next_category(self) -> str:
        return self._categories.next()

    def next_involvement(self) -> int:
        return self._involvement.next()

    def next_uniform(self) -> float:
        return self._uniforms.next()

    def next_ttr(self, category: str) -> float:
        return self._ttr[category].next()

    def next_single_slot(self) -> int:
        """One GPU slot by raw propensity (the ``num_involved == 1``
        case of :func:`repro.synth.involvement.choose_slots`, where
        the topology-affinity bonus never applies)."""
        return self._single_slots.next()


class _PerEventFaultDraws:
    """The pre-PR reference path: one RNG round-trip per draw."""

    def __init__(
        self,
        rng: np.random.Generator,
        renewal,
        category_names: list[str],
        category_probabilities: np.ndarray,
        involvement_values: list[int],
        involvement_probabilities: np.ndarray,
        ttr_samplers: dict[str, LognormalTtrSampler],
    ) -> None:
        self._rng = rng
        self._renewal = renewal
        self._category_names = category_names
        self._category_probabilities = category_probabilities
        self._involvement_values = involvement_values
        self._involvement_probabilities = involvement_probabilities
        self._ttr_samplers = ttr_samplers

    def next_gap(self) -> float:
        return float(self._renewal.sample_gaps(self._rng, 1)[0])

    def next_category(self) -> str:
        return str(
            self._rng.choice(
                self._category_names, p=self._category_probabilities
            )
        )

    def next_involvement(self) -> int:
        return int(
            self._rng.choice(
                self._involvement_values,
                p=self._involvement_probabilities,
            )
        )

    def next_uniform(self) -> float:
        return float(self._rng.random())

    def next_ttr(self, category: str) -> float:
        return self._ttr_samplers[category].sample(self._rng)


class FaultInjector:
    """Drives failures into a cluster simulation.

    Args:
        engine: The simulation engine.
        cluster: The cluster to fail nodes on.
        repair: The repair service receiving work.
        profile: Calibration profile for rates and mixes.
        seed: RNG seed.
        intensity: Multiplier on the failure rate (1.0 = the profile's
            historical rate); used by stress benchmarks.
        health_test_effectiveness: Probability that a would-be
            multi-GPU failure is caught early and contained to a
            single GPU.  Models the Tsubame-3 operational practice the
            paper credits for Table III's reversal: "more health-tests
            for multi-GPU cards on the same node and proactive
            replacements".  0 reproduces the profile's involvement
            shares unchanged.
        presample: Pre-sample stochastic draws in vectorized batches
            (the fast default).  ``False`` selects the per-event
            reference path; same distributions, different bit-stream
            consumption, so per-seed trajectories differ between the
            two modes.
        record_injected: Keep a :class:`FailureRecord` per injected
            failure so :meth:`injected_log` works.  Headless
            Monte-Carlo replications that only need the simulation
            report can pass ``False`` to skip the per-failure record
            (and timestamp) construction.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: Cluster,
        repair: RepairService,
        profile: MachineProfile,
        seed: int = 0,
        intensity: float = 1.0,
        health_test_effectiveness: float = 0.0,
        presample: bool = True,
        record_injected: bool = True,
    ) -> None:
        if intensity <= 0:
            raise SimulationError(
                f"intensity must be positive, got {intensity}"
            )
        if not 0.0 <= health_test_effectiveness <= 1.0:
            raise SimulationError(
                f"health_test_effectiveness must lie in [0, 1], got "
                f"{health_test_effectiveness}"
            )
        self._health_test_effectiveness = health_test_effectiveness
        self._engine = engine
        self._cluster = cluster
        self._repair = repair
        self._profile = profile
        self._rng = np.random.default_rng(seed)
        self._spec = get_machine(profile.machine)
        self._topology = build_node_topology(profile.machine)
        self._renewal = calibrate_weibull(
            mean_hours=profile.tbf_mean_hours / intensity,
            p75_hours=profile.tbf_p75_hours / intensity,
        )
        names = sorted(profile.category_counts)
        weights = np.asarray(
            [profile.category_counts[name] for name in names], dtype=float
        )
        self._category_names = names
        self._category_probabilities = weights / weights.sum()
        self._ttr_samplers = {
            name: LognormalTtrSampler(
                profile.category_ttr_mean_hours[name],
                profile.category_ttr_sigma[name],
            )
            for name in names
        }
        recorded = sum(profile.gpu_involvement_counts.values())
        total_gpu = recorded + profile.gpu_involvement_unrecorded
        self._involvement_values = [0] + sorted(
            profile.gpu_involvement_counts
        )
        self._involvement_probabilities = np.asarray(
            [profile.gpu_involvement_unrecorded / total_gpu]
            + [
                profile.gpu_involvement_counts[k] / total_gpu
                for k in sorted(profile.gpu_involvement_counts)
            ]
        )
        self._presample = presample
        if presample:
            self._draws = _BatchedFaultDraws(
                self._rng,
                self._renewal,
                self._category_names,
                self._category_probabilities,
                self._involvement_values,
                self._involvement_probabilities,
                self._ttr_samplers,
                profile.gpu_slot_weights,
            )
        else:
            self._draws = _PerEventFaultDraws(
                self._rng,
                self._renewal,
                self._category_names,
                self._category_probabilities,
                self._involvement_values,
                self._involvement_probabilities,
                self._ttr_samplers,
            )
        self._record_injected = record_injected
        self._injected: list[FailureRecord] = []
        self._next_record_id = 0
        self._contained_multi_gpu = 0
        self._failure_listeners: list = []
        self._record_listeners: list = []

    @property
    def contained_multi_gpu(self) -> int:
        """Would-be multi-GPU failures contained by health tests."""
        return self._contained_multi_gpu

    def add_failure_listener(self, callback) -> None:
        """Register ``callback(node_id, category)`` to run per failure."""
        self._failure_listeners.append(callback)

    def add_record_listener(self, callback) -> None:
        """Register ``callback(record, time_hours)`` to run per failure.

        Receives the full :class:`FailureRecord`, for consumers that
        need involvement details — e.g. streaming predictors.
        """
        self._record_listeners.append(callback)

    @property
    def injected_count(self) -> int:
        """Failures injected so far."""
        return self._next_record_id

    def start(self) -> None:
        """Schedule the first failure."""
        self._schedule_next()

    def injected_log(self) -> FailureLog:
        """Return the injected failures as a validated log.

        Timestamps are offsets from the machine's log start; TTRs are
        the *hands-on* durations handed to the repair service (queueing
        delays live in the cluster history instead).

        Raises:
            SimulationError: If nothing has been injected yet, or if
                record keeping was disabled (``record_injected=False``).
        """
        if self._next_record_id and not self._record_injected:
            raise SimulationError(
                "injected-failure records were disabled "
                "(record_injected=False); re-run with record keeping "
                "on to get an analyzable log"
            )
        if not self._injected:
            raise SimulationError("no failures injected yet")
        from datetime import timedelta

        start = self._spec.log_start
        end = start + timedelta(hours=self._engine.now + 1.0)
        return FailureLog(
            machine=self._profile.machine,
            records=tuple(self._injected),
            window_start=start,
            window_end=end,
        )

    # -- internals -----------------------------------------------------------

    def _schedule_next(self) -> None:
        gap = self._draws.next_gap()
        # Degenerate zero gaps would stall heap ordering determinism.
        self._engine.schedule_in(max(gap, 1e-6), self._fire)

    def _fire(self) -> None:
        draws = self._draws
        category = draws.next_category()
        node_id = self._pick_node()
        gpus: tuple[int, ...] = ()
        if category == "GPU":
            involved = draws.next_involvement()
            if (
                involved > 1
                and draws.next_uniform() < self._health_test_effectiveness
            ):
                # A health test caught the degrading bus-mates early;
                # only one GPU actually fails in service.
                involved = 1
                self._contained_multi_gpu += 1
            if involved > 0:
                gpus = self._choose_slots(involved)
        duration = draws.next_ttr(category)
        was_healthy = (
            self._cluster.node(node_id).state is NodeState.HEALTHY
        )
        self._cluster.fail(node_id, category, self._engine.now, gpus)
        if was_healthy:
            self._repair.submit(node_id, category, duration)
        self._record(node_id, category, duration, gpus)
        for callback in self._failure_listeners:
            callback(node_id, category)
        self._schedule_next()

    def _choose_slots(self, involved: int) -> tuple[int, ...]:
        num_slots = len(self._profile.gpu_slot_weights)
        if involved == num_slots:
            return tuple(range(num_slots))
        if involved == 1 and self._presample:
            # Single-slot picks (the common case) come from the
            # pre-sampled propensity stream; multi-slot picks need the
            # sequential topology-affinity walk below.
            return (self._draws.next_single_slot(),)
        return choose_slots(
            self._rng,
            involved,
            self._profile.gpu_slot_weights,
            topology=self._topology,
        )

    def _pick_node(self) -> int:
        if self._presample:
            count = self._cluster.num_available()
            if count:
                # Uniform over healthy nodes via one pre-sampled
                # uniform and the cluster's O(1) index — no
                # fleet-sized list per event.
                index = int(self._draws.next_uniform() * count)
                return self._cluster.available_at(index)
            return int(self._draws.next_uniform() * self._cluster.num_nodes)
        available = self._cluster.available_nodes()
        if available:
            return int(self._rng.choice(available))
        # Whole fleet down: hit a random node anyway (absorbed outage).
        return int(self._rng.integers(self._cluster.num_nodes))

    def _record(
        self,
        node_id: int,
        category: str,
        duration: float,
        gpus: tuple[int, ...],
    ) -> None:
        engine = self._engine
        need_record = (
            self._record_injected
            or self._record_listeners
            or engine.has_subscribers("failure")
        )
        self._next_record_id += 1
        if not need_record:
            return
        from datetime import timedelta

        record = FailureRecord(
            record_id=self._next_record_id - 1,
            timestamp=self._spec.log_start
            + timedelta(hours=engine.now),
            node_id=node_id,
            category=category,
            ttr_hours=duration,
            gpus_involved=gpus,
        )
        if self._record_injected:
            self._injected.append(record)
        for callback in self._record_listeners:
            callback(record, engine.now)
        if engine.has_subscribers("failure"):
            engine.publish(
                "failure", record=record, time_hours=engine.now
            )
