"""Fault injection for the simulator.

Streams failures into a running simulation with the same calibrated
statistics the trace generator uses: Weibull renewal arrivals, the
profile's category mix, GPU involvement and per-category lognormal
repair durations.  Unlike the offline generator, the injector reacts
to cluster state — failures land on nodes that are currently up.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import FailureLog, FailureRecord
from repro.errors import SimulationError
from repro.machines.specs import get_machine
from repro.machines.topology import build_node_topology
from repro.sim.cluster import Cluster, NodeState
from repro.sim.engine import SimulationEngine
from repro.sim.repair import RepairService
from repro.synth.arrivals import calibrate_weibull
from repro.synth.involvement import choose_slots
from repro.synth.profiles import MachineProfile
from repro.synth.recovery import LognormalTtrSampler

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives failures into a cluster simulation.

    Args:
        engine: The simulation engine.
        cluster: The cluster to fail nodes on.
        repair: The repair service receiving work.
        profile: Calibration profile for rates and mixes.
        seed: RNG seed.
        intensity: Multiplier on the failure rate (1.0 = the profile's
            historical rate); used by stress benchmarks.
        health_test_effectiveness: Probability that a would-be
            multi-GPU failure is caught early and contained to a
            single GPU.  Models the Tsubame-3 operational practice the
            paper credits for Table III's reversal: "more health-tests
            for multi-GPU cards on the same node and proactive
            replacements".  0 reproduces the profile's involvement
            shares unchanged.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: Cluster,
        repair: RepairService,
        profile: MachineProfile,
        seed: int = 0,
        intensity: float = 1.0,
        health_test_effectiveness: float = 0.0,
    ) -> None:
        if intensity <= 0:
            raise SimulationError(
                f"intensity must be positive, got {intensity}"
            )
        if not 0.0 <= health_test_effectiveness <= 1.0:
            raise SimulationError(
                f"health_test_effectiveness must lie in [0, 1], got "
                f"{health_test_effectiveness}"
            )
        self._health_test_effectiveness = health_test_effectiveness
        self._engine = engine
        self._cluster = cluster
        self._repair = repair
        self._profile = profile
        self._rng = np.random.default_rng(seed)
        self._spec = get_machine(profile.machine)
        self._topology = build_node_topology(profile.machine)
        self._renewal = calibrate_weibull(
            mean_hours=profile.tbf_mean_hours / intensity,
            p75_hours=profile.tbf_p75_hours / intensity,
        )
        names = sorted(profile.category_counts)
        weights = np.asarray(
            [profile.category_counts[name] for name in names], dtype=float
        )
        self._category_names = names
        self._category_probabilities = weights / weights.sum()
        self._ttr_samplers = {
            name: LognormalTtrSampler(
                profile.category_ttr_mean_hours[name],
                profile.category_ttr_sigma[name],
            )
            for name in names
        }
        recorded = sum(profile.gpu_involvement_counts.values())
        total_gpu = recorded + profile.gpu_involvement_unrecorded
        self._involvement_values = [0] + sorted(
            profile.gpu_involvement_counts
        )
        self._involvement_probabilities = np.asarray(
            [profile.gpu_involvement_unrecorded / total_gpu]
            + [
                profile.gpu_involvement_counts[k] / total_gpu
                for k in sorted(profile.gpu_involvement_counts)
            ]
        )
        self._injected: list[FailureRecord] = []
        self._next_record_id = 0
        self._contained_multi_gpu = 0
        self._failure_listeners: list = []
        self._record_listeners: list = []

    @property
    def contained_multi_gpu(self) -> int:
        """Would-be multi-GPU failures contained by health tests."""
        return self._contained_multi_gpu

    def add_failure_listener(self, callback) -> None:
        """Register ``callback(node_id, category)`` to run per failure."""
        self._failure_listeners.append(callback)

    def add_record_listener(self, callback) -> None:
        """Register ``callback(record, time_hours)`` to run per failure.

        Receives the full :class:`FailureRecord`, for consumers that
        need involvement details — e.g. streaming predictors.
        """
        self._record_listeners.append(callback)

    @property
    def injected_count(self) -> int:
        """Failures injected so far."""
        return self._next_record_id

    def start(self) -> None:
        """Schedule the first failure."""
        self._schedule_next()

    def injected_log(self) -> FailureLog:
        """Return the injected failures as a validated log.

        Timestamps are offsets from the machine's log start; TTRs are
        the *hands-on* durations handed to the repair service (queueing
        delays live in the cluster history instead).

        Raises:
            SimulationError: If nothing has been injected yet.
        """
        if not self._injected:
            raise SimulationError("no failures injected yet")
        from datetime import timedelta

        start = self._spec.log_start
        end = start + timedelta(hours=self._engine.now + 1.0)
        return FailureLog(
            machine=self._profile.machine,
            records=tuple(self._injected),
            window_start=start,
            window_end=end,
        )

    # -- internals -----------------------------------------------------------

    def _schedule_next(self) -> None:
        gap = float(self._renewal.sample_gaps(self._rng, 1)[0])
        # Degenerate zero gaps would stall heap ordering determinism.
        self._engine.schedule_in(max(gap, 1e-6), self._fire)

    def _fire(self) -> None:
        category = str(
            self._rng.choice(
                self._category_names, p=self._category_probabilities
            )
        )
        node_id = self._pick_node()
        gpus: tuple[int, ...] = ()
        if category == "GPU":
            involved = int(
                self._rng.choice(
                    self._involvement_values,
                    p=self._involvement_probabilities,
                )
            )
            if (
                involved > 1
                and self._rng.random() < self._health_test_effectiveness
            ):
                # A health test caught the degrading bus-mates early;
                # only one GPU actually fails in service.
                involved = 1
                self._contained_multi_gpu += 1
            if involved > 0:
                gpus = choose_slots(
                    self._rng,
                    involved,
                    self._profile.gpu_slot_weights,
                    topology=self._topology,
                )
        duration = self._ttr_samplers[category].sample(self._rng)
        was_healthy = (
            self._cluster.node(node_id).state is NodeState.HEALTHY
        )
        self._cluster.fail(node_id, category, self._engine.now, gpus)
        if was_healthy:
            self._repair.submit(node_id, category, duration)
        self._record(node_id, category, duration, gpus)
        for callback in self._failure_listeners:
            callback(node_id, category)
        self._schedule_next()

    def _pick_node(self) -> int:
        available = self._cluster.available_nodes()
        if available:
            return int(self._rng.choice(available))
        # Whole fleet down: hit a random node anyway (absorbed outage).
        return int(self._rng.integers(self._cluster.num_nodes))

    def _record(
        self,
        node_id: int,
        category: str,
        duration: float,
        gpus: tuple[int, ...],
    ) -> None:
        from datetime import timedelta

        record = FailureRecord(
            record_id=self._next_record_id,
            timestamp=self._spec.log_start
            + timedelta(hours=self._engine.now),
            node_id=node_id,
            category=category,
            ttr_hours=duration,
            gpus_involved=gpus,
        )
        self._injected.append(record)
        self._next_record_id += 1
        for callback in self._record_listeners:
            callback(record, self._engine.now)
        self._engine.publish(
            "failure", record=record, time_hours=self._engine.now
        )
