"""Discrete-event simulator of supercomputer failures and repairs.

Used to *evaluate* the paper's operational implications rather than
merely assert them: what staffing/spare levels pin the effective MTTR,
how checkpointing converts MTBF into goodput, and how prediction-driven
pre-staging shortens outages.
"""

from repro.sim.checkpoint import (
    CheckpointPolicy,
    effective_goodput_fraction,
    expected_waste_fraction,
    young_daly_interval,
    young_daly_policy,
)
from repro.sim.cluster import Cluster, DowntimeInterval, Node, NodeState
from repro.sim.engine import SimulationEngine
from repro.sim.faults import FaultInjector
from repro.sim.jobs import Job, JobState, WorkloadConfig, WorkloadGenerator
from repro.sim.montecarlo import (
    EnsembleReport,
    MetricStats,
    run_replications,
    spawn_seeds,
)
from repro.sim.proactive import ProactiveMaintainer
from repro.sim.repair import RepairPolicy, RepairService, SparePool
from repro.sim.scheduler import Scheduler, SchedulerStats
from repro.sim.simulator import (
    ClusterSimulator,
    SimulationConfig,
    SimulationReport,
    hardware_categories,
)
from repro.sim.wear import CardWearReport, simulate_card_wear

__all__ = [
    "CardWearReport",
    "CheckpointPolicy",
    "Cluster",
    "ClusterSimulator",
    "DowntimeInterval",
    "EnsembleReport",
    "FaultInjector",
    "Job",
    "JobState",
    "MetricStats",
    "Node",
    "NodeState",
    "ProactiveMaintainer",
    "RepairPolicy",
    "RepairService",
    "Scheduler",
    "SchedulerStats",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationReport",
    "SparePool",
    "WorkloadConfig",
    "WorkloadGenerator",
    "effective_goodput_fraction",
    "expected_waste_fraction",
    "hardware_categories",
    "run_replications",
    "simulate_card_wear",
    "spawn_seeds",
    "young_daly_interval",
    "young_daly_policy",
]
