"""High-level simulation facade.

:class:`ClusterSimulator` wires the engine, cluster, repair service,
fault injector, and (optionally) the scheduler + workload together,
runs a horizon, and returns a :class:`SimulationReport` with the
operational metrics the paper's RQ5 discussion cares about: effective
MTTR (including queueing for technicians and spares), availability,
spare stockouts, and — with a workload — goodput and queue waits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core import taxonomy
from repro.core.records import FailureLog
from repro.core.taxonomy import FailureClass
from repro.errors import SimulationError
from repro.machines.specs import get_machine
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.cluster import Cluster
from repro.sim.engine import SimulationEngine
from repro.sim.faults import FaultInjector
from repro.sim.jobs import WorkloadConfig, WorkloadGenerator
from repro.sim.repair import RepairPolicy, RepairService, SparePool
from repro.sim.scheduler import Scheduler, SchedulerStats
from repro.synth.profiles import MachineProfile, profile_for

if TYPE_CHECKING:  # imported lazily at runtime (repro.train imports sim)
    from repro.train.config import TrainingJobConfig
    from repro.train.gang import GangTrainingRun, TrainStats

__all__ = [
    "SimulationConfig",
    "SimulationReport",
    "ClusterSimulator",
    "hardware_categories",
]


def hardware_categories(machine: str) -> frozenset[str]:
    """Category names whose repair consumes a spare part."""
    return frozenset(
        cat.name
        for cat in taxonomy.categories_for(machine)
        if cat.failure_class is FailureClass.HARDWARE
    )


@dataclass(frozen=True)
class SimulationConfig:
    """Normalized constructor arguments of a :class:`ClusterSimulator`.

    Captured after defaulting (repair policy gains its hardware
    categories, spares their per-category counts), so the config alone
    is enough to rebuild an identical simulator — this is what the
    trace recorder (:mod:`repro.trace`) writes into a trace header.
    """

    machine: str
    seed: int
    intensity: float
    health_test_effectiveness: float
    presample: bool
    repair_policy: RepairPolicy
    initial_spares: dict[str, int]
    checkpoint_policy: CheckpointPolicy | None
    workload: WorkloadConfig | None
    train: TrainingJobConfig | None = None


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of one simulated horizon."""

    machine: str
    horizon_hours: float
    failures_injected: int
    repairs_completed: int
    effective_mttr_hours: float
    mean_waiting_hours: float
    availability: float
    spare_stockouts: int
    spares_consumed: int
    scheduler: SchedulerStats | None = None
    train: TrainStats | None = None

    @property
    def waiting_share_of_mttr(self) -> float:
        """Fraction of the effective MTTR spent waiting, not repairing."""
        if self.effective_mttr_hours <= 0:
            return 0.0
        return self.mean_waiting_hours / self.effective_mttr_hours


class ClusterSimulator:
    """One-stop simulation runner for a machine profile.

    Args:
        machine: ``"tsubame2"`` or ``"tsubame3"``.
        repair_policy: Staffing / lead-time parameters (defaults to 4
            technicians, one-week part lead time).
        initial_spares: Per-category starting inventory; defaults to
            two spares for every hardware category.
        seed: RNG seed shared by faults and workload.
        intensity: Failure-rate multiplier.
        workload: Optional workload config; enables the scheduler.
        checkpoint_policy: Optional checkpoint policy for jobs
            (required when ``train`` is set).
        train: Optional gang-training config; runs one synchronous
            N-node training job (:class:`repro.train.GangTrainingRun`)
            instead of a batch workload.  Mutually exclusive with
            ``workload``.
        profile: Override the calibration profile (defaults to the
            machine's published profile).
        health_test_effectiveness: Probability a would-be multi-GPU
            failure is contained to one GPU by proactive health tests
            (the Tsubame-3 practice; see
            :class:`repro.sim.faults.FaultInjector`).
        presample: Use the injector's vectorized pre-sampled draw
            streams (fast default).  ``False`` selects the per-event
            RNG reference path — same distributions, different per-seed
            trajectories.
        keep_injected_log: Record every injected failure so
            :meth:`injected_log` works afterwards.  Monte-Carlo
            replications that only consume the
            :class:`SimulationReport` pass ``False`` to skip per-failure
            record construction.
    """

    def __init__(
        self,
        machine: str,
        repair_policy: RepairPolicy | None = None,
        initial_spares: dict[str, int] | None = None,
        seed: int = 0,
        intensity: float = 1.0,
        workload: WorkloadConfig | None = None,
        checkpoint_policy: CheckpointPolicy | None = None,
        profile: MachineProfile | None = None,
        health_test_effectiveness: float = 0.0,
        presample: bool = True,
        keep_injected_log: bool = True,
        train: TrainingJobConfig | None = None,
    ) -> None:
        self._profile = profile or profile_for(machine)
        if self._profile.machine != machine:
            raise SimulationError(
                f"profile is for {self._profile.machine!r}, not {machine!r}"
            )
        self._spec = get_machine(machine)
        hardware = hardware_categories(machine)
        if repair_policy is None:
            repair_policy = RepairPolicy(hardware_categories=hardware)
        elif not repair_policy.hardware_categories:
            repair_policy = RepairPolicy(
                num_technicians=repair_policy.num_technicians,
                spare_lead_time_hours=repair_policy.spare_lead_time_hours,
                hardware_categories=hardware,
            )
        if initial_spares is None:
            initial_spares = {name: 2 for name in hardware}
        if train is not None:
            if workload is not None:
                raise SimulationError(
                    "train and workload are mutually exclusive: the gang "
                    "owns its nodes for the whole run"
                )
            if checkpoint_policy is None:
                raise SimulationError(
                    "a training run requires a checkpoint_policy "
                    "(use repro.sim.young_daly_policy for the optimum)"
                )
            if train.num_nodes > self._spec.num_nodes:
                raise SimulationError(
                    f"gang of {train.num_nodes} nodes exceeds "
                    f"{machine}'s {self._spec.num_nodes}"
                )
        self.config = SimulationConfig(
            machine=machine,
            seed=seed,
            intensity=intensity,
            health_test_effectiveness=health_test_effectiveness,
            presample=presample,
            repair_policy=repair_policy,
            initial_spares=dict(initial_spares),
            checkpoint_policy=checkpoint_policy,
            workload=workload,
            train=train,
        )

        self.engine = SimulationEngine()
        self.cluster = Cluster(self._spec)
        self.spares = SparePool(initial_spares)
        self.repair = RepairService(
            self.engine, self.cluster, repair_policy, self.spares
        )
        self.injector = FaultInjector(
            self.engine,
            self.cluster,
            self.repair,
            self._profile,
            seed=seed,
            intensity=intensity,
            health_test_effectiveness=health_test_effectiveness,
            presample=presample,
            record_injected=keep_injected_log,
        )
        self.scheduler: Scheduler | None = None
        self.training: GangTrainingRun | None = None
        self._workload_jobs = []
        if train is not None:
            # Lazy import: repro.train builds on repro.sim, so the
            # simulator cannot import it at module scope.
            from repro.train.gang import GangTrainingRun

            self.training = GangTrainingRun(
                self.engine, self.cluster, train, checkpoint_policy
            )
            self.injector.add_failure_listener(
                lambda node_id, category:
                self.training.handle_node_failure(node_id, category)
            )
            self.repair.add_completion_listener(
                self.training.handle_node_repair
            )
        if workload is not None:
            self.scheduler = Scheduler(
                self.engine, self.cluster, checkpoint_policy
            )
            generator = WorkloadGenerator(workload, seed=seed + 1)
            self._workload = generator
            self._workload_config = workload
            self.injector.add_failure_listener(
                lambda node_id, _category:
                self.scheduler.handle_node_failure(node_id)
            )
            self.repair.add_completion_listener(
                self.scheduler.handle_node_repair
            )

    def run(self, horizon_hours: float) -> SimulationReport:
        """Run the simulation and summarise it.

        Raises:
            SimulationError: On a non-positive horizon.
        """
        if horizon_hours <= 0:
            raise SimulationError(
                f"horizon must be positive, got {horizon_hours}"
            )
        if self.scheduler is not None:
            jobs = self._workload.jobs_until(horizon_hours)
            self._workload_jobs = jobs
            self.scheduler.submit_all(jobs)
        if self.training is not None:
            # Start the gang before the injector so its t=0 submission
            # precedes the first failure in event-insertion order.
            self.training.start()
        self.injector.start()
        self.engine.run_until(horizon_hours)
        history = self.cluster.history
        return SimulationReport(
            machine=self._spec.name,
            horizon_hours=horizon_hours,
            failures_injected=self.injector.injected_count,
            repairs_completed=len(history),
            effective_mttr_hours=(
                self.cluster.effective_mttr_hours() if history else 0.0
            ),
            mean_waiting_hours=(
                self.cluster.mean_waiting_hours() if history else 0.0
            ),
            availability=self.cluster.availability(horizon_hours),
            spare_stockouts=self.spares.stockouts,
            spares_consumed=self.spares.consumed,
            scheduler=(
                self.scheduler.stats if self.scheduler is not None else None
            ),
            train=(
                self.training.finalize(horizon_hours)
                if self.training is not None else None
            ),
        )

    def injected_log(self) -> FailureLog:
        """Failures injected during the run, as an analyzable log."""
        return self.injector.injected_log()

    def to_store(self, path, *, reindex: bool = True):
        """Persist the run's injected failures to the store at ``path``.

        A missing store is created with the run's observation window;
        see :func:`repro.store.ingest_log`.  ``reindex`` defaults to
        True because every run numbers its records from zero, which
        would collide with any previously persisted run.  Returns the
        append summary.

        Raises:
            SimulationError: If nothing has been injected yet.
        """
        from repro.store import ingest_log

        return ingest_log(path, self.injected_log(), reindex=reindex)
