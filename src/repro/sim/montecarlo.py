"""Monte-Carlo replication engine.

One simulated horizon is a single draw from the model's distribution
over operational outcomes; the paper's RQ5-style claims ("4
technicians keep availability above X") are claims about that
*distribution*.  This module runs R independently-seeded replications
of :class:`~repro.sim.simulator.ClusterSimulator` and folds their
:class:`~repro.sim.simulator.SimulationReport`s into ensemble
statistics — mean, standard error, and percentile confidence
intervals — using the constant-memory estimators from
:mod:`repro.stream.online`, so R can be large without holding R
reports.

Determinism contract: :func:`run_replications` with a given
``(machine, seed, replications, ...)`` returns bit-identical results
whether the replications run serially or across worker processes.
Per-replication seeds come from :func:`spawn_seeds` (NumPy
``SeedSequence`` spawning, prefix-stable in ``n``), replications are
dispatched through the fault-tolerant
:func:`repro.parallel.sweep_iter` machinery — riding the process-wide
warm worker pool, so consecutive ensembles stop paying a pool spawn
each — which yields outcomes in input order, and the fold itself is a
sequential loop — so worker scheduling can never touch the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.parallel import SweepOutcome, sweep_iter
from repro.sim.repair import RepairPolicy
from repro.sim.simulator import ClusterSimulator, SimulationReport
from repro.stream.online import GKQuantileSketch, Welford

__all__ = [
    "spawn_seeds",
    "MetricStats",
    "EnsembleReport",
    "run_replications",
]

#: SimulationReport fields summarised per ensemble, in report order.
_METRICS = (
    "failures_injected",
    "repairs_completed",
    "effective_mttr_hours",
    "mean_waiting_hours",
    "availability",
    "spare_stockouts",
    "spares_consumed",
)


def spawn_seeds(seed: int, n: int) -> list[int]:
    """Derive ``n`` independent replication seeds from a master seed.

    Uses ``np.random.SeedSequence(seed).generate_state``, which is
    *prefix-stable*: the first k seeds of ``spawn_seeds(seed, n)`` are
    identical for every n >= k, so growing an ensemble from 100 to
    1000 replications reuses (never re-randomises) the first 100.

    Raises:
        ValidationError: If ``n`` is not positive.
    """
    if n < 1:
        raise ValidationError(f"n must be positive, got {n}")
    state = np.random.SeedSequence(seed).generate_state(n, np.uint32)
    return [int(s) for s in state]


@dataclass(frozen=True)
class MetricStats:
    """Ensemble statistics of one scalar report metric.

    ``ci_lower``/``ci_upper`` are *percentile* bounds of the
    replication distribution (e.g. the 2.5th and 97.5th percentiles at
    ``ci=0.95``) estimated by a Greenwald-Khanna sketch — they
    describe run-to-run spread, not the standard error of the mean
    (use :attr:`stderr` for that).
    """

    name: str
    mean: float
    std: float
    stderr: float
    ci_lower: float
    ci_upper: float

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.4g} ± {self.stderr:.2g} "
            f"[{self.ci_lower:.4g}, {self.ci_upper:.4g}]"
        )


@dataclass(frozen=True)
class EnsembleReport:
    """Summary of a Monte-Carlo replication ensemble.

    Attributes:
        machine: Simulated machine.
        horizon_hours: Horizon of every replication.
        replications: Replications whose reports were folded in.
        failed_replications: Replications that raised (their errors
            are attributed in ``errors``; the fold simply skips them).
        ci: Confidence level of the percentile intervals.
        metrics: Per-metric ensemble statistics, keyed by the
            :class:`~repro.sim.simulator.SimulationReport` field name.
        errors: ``(replication_index, message)`` for each failure.
    """

    machine: str
    horizon_hours: float
    replications: int
    failed_replications: int
    ci: float
    metrics: dict[str, MetricStats]
    errors: tuple[tuple[int, str], ...] = ()

    @property
    def availability(self) -> MetricStats:
        """Shortcut for the headline metric."""
        return self.metrics["availability"]

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"{self.machine}: {self.replications} replications x "
            f"{self.horizon_hours:g} h "
            f"({int(self.ci * 100)}% percentile intervals)"
        ]
        if self.failed_replications:
            lines.append(
                f"  {self.failed_replications} replication(s) failed"
            )
        lines.extend(f"  {self.metrics[name]}" for name in _METRICS)
        return "\n".join(lines)


@dataclass(frozen=True)
class _ReplicationTask:
    """Picklable spec of one replication (travels to worker processes)."""

    machine: str
    seed: int
    horizon_hours: float
    intensity: float
    health_test_effectiveness: float
    num_technicians: int | None
    spare_lead_time_hours: float | None
    presample: bool


def _run_replication(task: _ReplicationTask) -> SimulationReport:
    """Worker entry point: one seeded simulation, report only."""
    policy = None
    if task.num_technicians is not None:
        policy = RepairPolicy(
            num_technicians=task.num_technicians,
            spare_lead_time_hours=(
                task.spare_lead_time_hours
                if task.spare_lead_time_hours is not None
                else RepairPolicy.spare_lead_time_hours
            ),
        )
    simulator = ClusterSimulator(
        task.machine,
        repair_policy=policy,
        seed=task.seed,
        intensity=task.intensity,
        health_test_effectiveness=task.health_test_effectiveness,
        presample=task.presample,
        keep_injected_log=False,
    )
    return simulator.run(task.horizon_hours)


class _MetricFold:
    """Welford moments + GK quantile sketch for one metric."""

    __slots__ = ("name", "moments", "sketch")

    def __init__(self, name: str) -> None:
        self.name = name
        self.moments = Welford()
        self.sketch = GKQuantileSketch(epsilon=0.005)

    def push(self, value: float) -> None:
        self.moments.push(value)
        self.sketch.push(value)

    def stats(self, ci: float) -> MetricStats:
        n = self.moments.n
        lower_q = (1.0 - ci) / 2.0
        return MetricStats(
            name=self.name,
            mean=self.moments.mean,
            std=self.moments.std,
            stderr=(
                self.moments.std / np.sqrt(n) if n else 0.0
            ),
            ci_lower=self.sketch.value(lower_q),
            ci_upper=self.sketch.value(1.0 - lower_q),
        )


def run_replications(
    machine: str,
    replications: int,
    horizon_hours: float,
    seed: int = 0,
    intensity: float = 1.0,
    ci: float = 0.95,
    max_workers: int | None = None,
    health_test_effectiveness: float = 0.0,
    num_technicians: int | None = None,
    spare_lead_time_hours: float | None = None,
    presample: bool = True,
    retries: int = 0,
) -> EnsembleReport:
    """Run a Monte-Carlo ensemble and summarise its distribution.

    Args:
        machine: ``"tsubame2"`` or ``"tsubame3"``.
        replications: Number of independently-seeded runs (>= 1).
        horizon_hours: Simulated horizon of each run.
        seed: Master seed; per-replication seeds are spawned with
            :func:`spawn_seeds`, so the ensemble is reproducible and
            prefix-stable in ``replications``.
        intensity: Failure-rate multiplier passed to every run.
        ci: Confidence level of the percentile intervals, in (0, 1).
        max_workers: ``None`` or ``1`` runs serially in-process;
            ``N > 1`` fans replications across the process-wide warm
            worker pool (spawned once, reused by every ensemble in
            the process) with work-stealing chunking, so uneven
            replication lengths do not leave workers idle.  The
            result is bit-identical at any worker count.
        health_test_effectiveness: See
            :class:`~repro.sim.faults.FaultInjector`.
        num_technicians: Override the repair policy's staffing.
        spare_lead_time_hours: Override the spare procurement lead
            time (requires ``num_technicians``).
        presample: Injector draw strategy; see
            :class:`~repro.sim.simulator.ClusterSimulator`.
        retries: Re-run a replication that raised up to this many
            extra times before recording it as failed.

    Returns:
        An :class:`EnsembleReport`.  Replications that fail (after
        retries) are skipped by the fold and attributed in
        ``errors`` — one poisoned seed does not discard the ensemble.

    Raises:
        ValidationError: On invalid ensemble parameters.
        SimulationError: If *every* replication failed (there is no
            distribution to report).
    """
    if replications < 1:
        raise ValidationError(
            f"replications must be >= 1, got {replications}"
        )
    if not 0.0 < ci < 1.0:
        raise ValidationError(f"ci must lie in (0, 1), got {ci}")
    if spare_lead_time_hours is not None and num_technicians is None:
        raise ValidationError(
            "spare_lead_time_hours requires num_technicians "
            "(both override the same repair policy)"
        )
    tasks = [
        _ReplicationTask(
            machine=machine,
            seed=replication_seed,
            horizon_hours=horizon_hours,
            intensity=intensity,
            health_test_effectiveness=health_test_effectiveness,
            num_technicians=num_technicians,
            spare_lead_time_hours=spare_lead_time_hours,
            presample=presample,
        )
        for replication_seed in spawn_seeds(seed, replications)
    ]
    folds = {name: _MetricFold(name) for name in _METRICS}
    errors: list[tuple[int, str]] = []
    outcome: SweepOutcome
    for outcome in sweep_iter(
        _run_replication,
        tasks,
        processes=max_workers,
        retries=retries,
    ):
        if not outcome.ok:
            errors.append(
                (
                    outcome.index,
                    f"{type(outcome.error).__name__}: {outcome.error}",
                )
            )
            continue
        report = outcome.result
        for name, fold in folds.items():
            fold.push(float(getattr(report, name)))
    completed = replications - len(errors)
    if completed == 0:
        raise SimulationError(
            f"all {replications} replications failed; first error: "
            f"{errors[0][1]}"
        )
    return EnsembleReport(
        machine=machine,
        horizon_hours=horizon_hours,
        replications=completed,
        failed_replications=len(errors),
        ci=ci,
        metrics={name: fold.stats(ci) for name, fold in folds.items()},
        errors=tuple(errors),
    )
