"""Checkpoint/restart model.

The paper motivates software mitigation (checkpointing) as the main
defence against GPU failures.  This module implements the classic
Young/Daly optimal checkpoint interval and the resulting waste model,
so the benchmarks can quantify how the 4x MTBF improvement between
Tsubame-2 and Tsubame-3 translates into goodput for a checkpointing
application — the *performance-error-proportionality* story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = [
    "CheckpointPolicy",
    "young_daly_interval",
    "young_daly_policy",
    "expected_waste_fraction",
    "effective_goodput_fraction",
]


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpointing parameters for a simulated job.

    Attributes:
        interval_hours: Wall-clock time between checkpoint starts; use
            :func:`young_daly_interval` for the optimum.
        cost_hours: Time one checkpoint takes (job makes no progress).
        restart_cost_hours: Time to restore state after a failure.
    """

    interval_hours: float
    cost_hours: float
    restart_cost_hours: float = 0.5

    def __post_init__(self) -> None:
        for name in ("interval_hours", "cost_hours", "restart_cost_hours"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ValidationError(
                    f"{name} must be finite, got {value!r}"
                )
        if self.interval_hours <= 0:
            raise ValidationError(
                f"interval_hours must be positive, got {self.interval_hours}"
            )
        if self.cost_hours < 0:
            raise ValidationError(
                f"cost_hours must be >= 0, got {self.cost_hours}"
            )
        if self.cost_hours >= self.interval_hours:
            raise ValidationError(
                "checkpoint cost must be smaller than the interval"
            )
        if self.restart_cost_hours < 0:
            raise ValidationError(
                f"restart_cost_hours must be >= 0, got "
                f"{self.restart_cost_hours}"
            )

    @property
    def committed_per_interval_hours(self) -> float:
        """Useful work committed by each completed interval."""
        return self.interval_hours - self.cost_hours


def young_daly_interval(
    checkpoint_cost_hours: float, mtbf_hours: float
) -> float:
    """Young/Daly first-order optimal interval sqrt(2 * C * MTBF).

    Raises:
        ValidationError: On non-positive or non-finite inputs, and when
            the MTBF is shorter than the checkpoint cost — in that
            regime the optimum interval sqrt(2*C*M) falls below C
            itself, i.e. no valid checkpointing schedule can commit
            work faster than the machine destroys it.
    """
    for label, value in (
        ("checkpoint cost", checkpoint_cost_hours),
        ("MTBF", mtbf_hours),
    ):
        if not math.isfinite(value):
            raise ValidationError(f"{label} must be finite, got {value!r}")
    if checkpoint_cost_hours <= 0:
        raise ValidationError(
            f"checkpoint cost must be positive, got {checkpoint_cost_hours}"
        )
    if mtbf_hours <= 0:
        raise ValidationError(
            f"MTBF must be positive, got {mtbf_hours}"
        )
    if mtbf_hours < checkpoint_cost_hours:
        raise ValidationError(
            f"MTBF ({mtbf_hours} h) is shorter than the checkpoint cost "
            f"({checkpoint_cost_hours} h); checkpointing cannot make "
            f"progress in this regime"
        )
    return math.sqrt(2.0 * checkpoint_cost_hours * mtbf_hours)


def young_daly_policy(
    checkpoint_cost_hours: float,
    mtbf_hours: float,
    restart_cost_hours: float = 0.5,
) -> CheckpointPolicy:
    """Build a :class:`CheckpointPolicy` at the Young/Daly optimum.

    Safe by construction: :func:`young_daly_interval` requires
    MTBF >= C, which guarantees sqrt(2*C*M) >= sqrt(2)*C > C, so the
    resulting policy always passes the cost-smaller-than-interval
    validation.

    Raises:
        ValidationError: Propagated from the interval computation or
            the policy constructor.
    """
    interval = young_daly_interval(checkpoint_cost_hours, mtbf_hours)
    return CheckpointPolicy(
        interval_hours=interval,
        cost_hours=checkpoint_cost_hours,
        restart_cost_hours=restart_cost_hours,
    )


def expected_waste_fraction(
    policy: CheckpointPolicy, mtbf_hours: float
) -> float:
    """First-order expected fraction of wall-clock time wasted.

    Waste = checkpoint overhead (C / T) + expected rework after a
    failure (T/2 per failure) + restart cost per failure, all relative
    to the failure-free timeline.  Valid in the usual regime
    T << MTBF; the result is clamped to [0, 1].

    Raises:
        ValidationError: On a non-positive MTBF.
    """
    if mtbf_hours <= 0:
        raise ValidationError(f"MTBF must be positive, got {mtbf_hours}")
    overhead = policy.cost_hours / policy.interval_hours
    rework = (policy.interval_hours / 2.0) / mtbf_hours
    restart = policy.restart_cost_hours / mtbf_hours
    return min(1.0, max(0.0, overhead + rework + restart))


def effective_goodput_fraction(
    policy: CheckpointPolicy, mtbf_hours: float
) -> float:
    """Fraction of wall-clock time spent on useful, committed work."""
    return 1.0 - expected_waste_fraction(policy, mtbf_hours)
