"""Materialized analytics, maintained incrementally on append.

A :class:`StoreViews` carries enough sufficient statistics to rebuild
every ``/analyze`` payload the serving layer exposes — breakdown,
metrics, spatial, seasonal, multigpu — without touching the event
columns.  Appending a batch updates the statistics as deltas
(:meth:`StoreViews.absorb`), so analytics over a million-record store
cost O(batch), not O(store); the :mod:`repro.stream` online estimators
(:class:`~repro.stream.online.Welford` for means,
:class:`~repro.stream.online.GKQuantileSketch` for quantiles,
:class:`~repro.stream.online.EwmaRate` for the recent failure rate)
are the merge algebra, persisted across restarts via their
``state()``/``from_state()`` snapshots.

Parity contract (asserted by :func:`verify_parity`, the property
suite, and the store benchmark):

* every integer-derived value — counts, shares (``count / total``),
  ``span``/``mtbf_span`` (same float expression), sort orders, CDFs —
  is **exactly** equal to the cold :mod:`repro.core` kernels;
* float means (MTBF, MTTR, availability, monthly TTR, clustering
  gaps) agree to a relative 1e-9: the cold kernels use NumPy's
  pairwise summation while the incremental path uses Welford updates
  and exact integer microsecond sums, which round differently in the
  last bits;
* the state depends only on the record *sequence*, never on how it
  was split into batches — Welford/GK updates are per-element and the
  multi-GPU clustering sums are exact integers — so rebuilding from
  segments after compaction reproduces the incremental state
  bit-for-bit (the lone exception, the EWMA mass, is diagnostic-only
  and never enters a payload).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.seasonal import MONTHS
from repro.core.taxonomy import failure_class
from repro.errors import AnalysisError, StoreCorruptError, TaxonomyError
from repro.machines.specs import get_machine
from repro.stream.online import EwmaRate, GKQuantileSketch, Welford

__all__ = ["StoreViews", "VIEWS_NAME", "verify_parity"]

VIEWS_NAME = "views.json"

_STATE_VERSION = 1
_US_PER_HOUR = 3_600_000_000
#: int64-safe chunk size for exact microsecond sums (see _exact_sum).
_SUM_CHUNK = 16_384


def _exact_sum(values: np.ndarray) -> int:
    """Exact Python-int sum of an int64 array.

    Microsecond offsets over a decade reach ~3e14; a million-row
    ``np.sum`` would overflow int64.  Chunked partial sums stay safely
    inside int64 and accumulate in arbitrary-precision Python ints.
    """
    total = 0
    for start in range(0, values.size, _SUM_CHUNK):
        total += int(values[start:start + _SUM_CHUNK].sum())
    return total


class StoreViews:
    """Incrementally maintained sufficient statistics of one store."""

    def __init__(self, machine: str, window_start_us: int) -> None:
        self.machine = machine
        self.window_start_us = int(window_start_us)
        self.rows = 0
        self.category_counts: dict[str, int] = {}
        self.node_counts: dict[int, int] = {}
        self.month_counts = [0] * 12
        self.weekday_counts = [0] * 7
        self.hour_counts = [0] * 24
        self.month_ttr: dict[int, Welford] = {}
        self.ttr = Welford()
        self.gaps = Welford()
        self.last_ts_us: int | None = None
        self.first_ts_us: int | None = None
        self.involvement: dict[int, int] = {}
        # Multi-GPU clustering (Figure 8) as exact integer sums: every
        # involved event waits for the *next* multi-GPU event; when one
        # arrives at T, each pending event at t contributes a gap
        # T - t, classified by whether it was itself multi-GPU.  Sums
        # are microseconds relative to the window start.
        self.pending_single_count = 0
        self.pending_single_us = 0
        self.last_multi_us: int | None = None
        self.gaps_multi_count = 0
        self.gaps_multi_us = 0
        self.gaps_single_count = 0
        self.gaps_single_us = 0
        # Diagnostic estimators (store info, never in payloads).
        self.ttr_sketch = GKQuantileSketch()
        self.gap_sketch = GKQuantileSketch()
        self.rate = EwmaRate()

    # -- delta maintenance -------------------------------------------------

    def absorb(
        self,
        columns: dict[str, np.ndarray],
        category_table: tuple[str, ...],
        locus_table: tuple[str, ...],
    ) -> None:
        """Fold one batch of segment-shaped columns into the views.

        The caller (writer on append, reader on rebuild) passes the
        exact arrays a segment stores, in record order; both paths run
        this one method, which is what makes a rebuild bit-identical
        to the incremental history.
        """
        del locus_table  # loci never enter a materialized payload
        ts_us = columns["ts_us"]
        n = int(ts_us.shape[0])
        if n == 0:
            return
        ttr = columns["ttr_hours"]
        months = columns["month"]

        # Category / node / calendar tallies: exact integer counts.
        codes, tallies = np.unique(columns["category"], return_counts=True)
        for code, count in zip(codes.tolist(), tallies.tolist()):
            name = category_table[code]
            self.category_counts[name] = (
                self.category_counts.get(name, 0) + count
            )
        nodes, tallies = np.unique(columns["node_id"], return_counts=True)
        for node, count in zip(nodes.tolist(), tallies.tolist()):
            self.node_counts[node] = self.node_counts.get(node, 0) + count
        for month, count in zip(
            *map(np.ndarray.tolist, np.unique(months, return_counts=True))
        ):
            self.month_counts[month - 1] += count
        for day, count in zip(
            *map(
                np.ndarray.tolist,
                np.unique(columns["weekday"], return_counts=True),
            )
        ):
            self.weekday_counts[day] += count
        for hour, count in zip(
            *map(
                np.ndarray.tolist,
                np.unique(columns["hour"], return_counts=True),
            )
        ):
            self.hour_counts[hour] += count

        # TTR means: Welford per calendar month plus overall.
        for month in np.unique(months).tolist():
            self.month_ttr.setdefault(month, Welford()).push_many(
                ttr[months == month]
            )
        self.ttr.push_many(ttr)
        self.ttr_sketch.push_many(ttr)

        # MTBF gaps in the same float domain as the cold kernel:
        # hour offsets from the window start, then differences, so
        # each individual gap is bit-identical to np.diff(ts_hours).
        ts_hours = (ts_us - self.window_start_us) / 1e6 / 3600.0
        if self.last_ts_us is not None:
            previous = (
                (self.last_ts_us - self.window_start_us) / 1e6 / 3600.0
            )
            gap_values = np.diff(ts_hours, prepend=previous)
        else:
            gap_values = np.diff(ts_hours)
            self.first_ts_us = int(ts_us[0])
        self.gaps.push_many(gap_values)
        self.gap_sketch.push_many(gap_values)
        self.last_ts_us = int(ts_us[-1])

        rate = self.rate.state()
        tau = rate["tau"]
        last_hour = float(ts_hours[-1])
        decayed = rate["mass"] * math.exp(
            -(last_hour - rate["last"]) / tau
        ) + float(np.sum(np.exp(-(last_hour - ts_hours) / tau)))
        self.rate = EwmaRate.from_state(
            {"tau": tau, "mass": decayed, "last": last_hour,
             "count": rate["count"] + n}
        )

        # Multi-GPU involvement and clustering.
        gpu_counts = np.diff(columns["slot_offsets"])
        involved = np.nonzero(gpu_counts > 0)[0]
        if involved.size:
            nums, tallies = np.unique(
                gpu_counts[involved], return_counts=True
            )
            for num, count in zip(nums.tolist(), tallies.tolist()):
                self.involvement[num] = (
                    self.involvement.get(num, 0) + count
                )
            rel_us = (ts_us[involved] - self.window_start_us).astype(
                np.int64
            )
            is_multi = gpu_counts[involved] > 1
            previous = 0
            for position in np.nonzero(is_multi)[0].tolist():
                # Everything between two multi events is single-GPU.
                span = rel_us[previous:position]
                self.pending_single_count += span.size
                self.pending_single_us += _exact_sum(span)
                arrival = int(rel_us[position])
                self.gaps_single_us += (
                    self.pending_single_count * arrival
                    - self.pending_single_us
                )
                self.gaps_single_count += self.pending_single_count
                self.pending_single_count = 0
                self.pending_single_us = 0
                if self.last_multi_us is not None:
                    self.gaps_multi_count += 1
                    self.gaps_multi_us += arrival - self.last_multi_us
                self.last_multi_us = arrival
                previous = position + 1
            tail = rel_us[previous:]
            self.pending_single_count += tail.size
            self.pending_single_us += _exact_sum(tail)

        self.rows += n

    # -- payloads ----------------------------------------------------------

    def payloads(self, window_end_us: int) -> dict[str, dict[str, Any]]:
        """Every ``/analyze`` payload whose preconditions hold.

        Shapes mirror :mod:`repro.serve.app` exactly; analyses the
        cold kernels would refuse (empty store, single failure, no GPU
        involvement) are simply absent, so the serving layer falls
        back to the cold path — which raises the same error the
        in-memory dataset would.
        """
        payloads: dict[str, dict[str, Any]] = {}
        builders = {
            "breakdown": self._breakdown,
            "metrics": lambda: self._metrics(window_end_us),
            "spatial": self._spatial,
            "seasonal": self._seasonal,
            "multigpu": self._multigpu,
        }
        for name, builder in builders.items():
            try:
                payloads[name] = builder()
            except (AnalysisError, TaxonomyError):
                # Ad-hoc categories in lenient stores raise
                # TaxonomyError exactly like the cold kernels would.
                continue
        return payloads

    def _breakdown(self) -> dict[str, Any]:
        if self.rows == 0:
            raise AnalysisError(
                "category breakdown of an empty log is undefined"
            )
        ranked = sorted(
            self.category_counts.items(),
            key=lambda item: (-item[1], item[0]),
        )
        return {
            "machine": self.machine,
            "failures": self.rows,
            "dominant_category": ranked[0][0],
            "categories": [
                {
                    "category": name,
                    "count": count,
                    "share": count / self.rows,
                    "class": failure_class(self.machine, name).name,
                }
                for name, count in ranked
            ],
        }

    def _metrics(self, window_end_us: int) -> dict[str, Any]:
        if self.rows < 2:
            raise AnalysisError(
                f"TBF needs at least 2 failures, store has {self.rows}"
            )
        spec = get_machine(self.machine)
        span_hours = (
            (window_end_us - self.window_start_us) / 1e6 / 3600.0
        )
        downtime = self.ttr.mean * self.rows
        return {
            "machine": self.machine,
            "failures": self.rows,
            "span_hours": span_hours,
            "mtbf_hours": self.gaps.mean,
            "mtbf_span_hours": span_hours / self.rows,
            "mttr_hours": self.ttr.mean,
            "availability": max(
                0.0, 1.0 - downtime / (spec.num_nodes * span_hours)
            ),
            "num_nodes": spec.num_nodes,
        }

    def _spatial(self) -> dict[str, Any]:
        if self.rows == 0:
            raise AnalysisError(
                "node failure distribution of an empty log is undefined"
            )
        affected = len(self.node_counts)
        histogram: dict[int, int] = {}
        for count in self.node_counts.values():
            histogram[count] = histogram.get(count, 0) + 1
        ranked = sorted(
            self.node_counts.items(), key=lambda item: (-item[1], item[0])
        )
        cdf = []
        running = 0
        for k in sorted(histogram):
            running += histogram[k]
            cdf.append([k, running / affected])
        return {
            "machine": self.machine,
            "affected_nodes": affected,
            "total_failures": sum(self.node_counts.values()),
            "top_nodes": [[node, count] for node, count in ranked[:10]],
            "cdf": cdf,
        }

    def _seasonal(self) -> dict[str, Any]:
        if self.rows == 0:
            raise AnalysisError("monthly TTR of an empty log is undefined")
        return {
            "machine": self.machine,
            "monthly_failures": list(self.month_counts),
            "peak_month": max(
                MONTHS, key=lambda m: (self.month_counts[m - 1], -m)
            ),
            "monthly_ttr_means_hours": [
                self.month_ttr[m].mean
                if m in self.month_ttr
                else float("nan")
                for m in MONTHS
            ],
        }

    def _multigpu(self) -> dict[str, Any]:
        total = sum(self.involvement.values())
        if total == 0:
            raise AnalysisError(
                "log has no GPU failures with recorded involvement"
            )
        spec = get_machine(self.machine)
        max_gpus = spec.gpus_per_node
        if max(self.involvement) > max_gpus:
            raise AnalysisError(
                f"a record involves {max(self.involvement)} GPUs but "
                f"the node only has {max_gpus}"
            )
        multi = sum(
            count for num, count in self.involvement.items() if num > 1
        )
        if self.gaps_multi_count == 0:
            mean_after_multi = float("nan")
        else:
            mean_after_multi = (
                self.gaps_multi_us / self.gaps_multi_count
            ) / _US_PER_HOUR
        if not math.isfinite(mean_after_multi) or mean_after_multi <= 0:
            ratio = float("nan")
        elif self.gaps_single_count == 0:
            ratio = float("inf")
        else:
            ratio = (
                (self.gaps_single_us / self.gaps_single_count)
                / _US_PER_HOUR
            ) / mean_after_multi
        return {
            "machine": self.machine,
            "multi_gpu_share": multi / total,
            "involvement": [
                {
                    "gpus": num,
                    "count": self.involvement.get(num, 0),
                    "share": self.involvement.get(num, 0) / total,
                }
                for num in range(1, max_gpus + 1)
            ],
            "clustering_ratio": ratio,
            "is_clustered": bool(
                not math.isnan(ratio) and ratio > 1.0
            ),
        }

    def info(self) -> dict[str, Any]:
        """Diagnostic summary for ``store info`` / dataset describe."""
        summary: dict[str, Any] = {
            "rows": self.rows,
            "categories": len(self.category_counts),
            "affected_nodes": len(self.node_counts),
            "gpu_involved_failures": sum(self.involvement.values()),
        }
        if self.ttr.n:
            summary["ttr_hours"] = {
                "mean": self.ttr.mean,
                "p50": self.ttr_sketch.value(0.5),
                "p90": self.ttr_sketch.value(0.9),
                "p99": self.ttr_sketch.value(0.99),
            }
        if self.gaps.n:
            summary["tbf_hours"] = {
                "mean": self.gaps.mean,
                "p50": self.gap_sketch.value(0.5),
            }
        if self.rate.count:
            summary["recent_rate_per_hour"] = self.rate.rate_per_hour()
        return summary

    # -- persistence -------------------------------------------------------

    def state(self) -> dict[str, Any]:
        """JSON-serializable snapshot; exact inverse of :meth:`from_state`."""
        return {
            "version": _STATE_VERSION,
            "machine": self.machine,
            "window_start_us": self.window_start_us,
            "rows": self.rows,
            "category_counts": self.category_counts,
            "node_counts": {
                str(node): count
                for node, count in self.node_counts.items()
            },
            "month_counts": self.month_counts,
            "weekday_counts": self.weekday_counts,
            "hour_counts": self.hour_counts,
            "month_ttr": {
                str(month): welford.state()
                for month, welford in self.month_ttr.items()
            },
            "ttr": self.ttr.state(),
            "gaps": self.gaps.state(),
            "last_ts_us": self.last_ts_us,
            "first_ts_us": self.first_ts_us,
            "involvement": {
                str(num): count for num, count in self.involvement.items()
            },
            "pending_single_count": self.pending_single_count,
            "pending_single_us": self.pending_single_us,
            "last_multi_us": self.last_multi_us,
            "gaps_multi_count": self.gaps_multi_count,
            "gaps_multi_us": self.gaps_multi_us,
            "gaps_single_count": self.gaps_single_count,
            "gaps_single_us": self.gaps_single_us,
            "ttr_sketch": self.ttr_sketch.state(),
            "gap_sketch": self.gap_sketch.state(),
            "rate": self.rate.state(),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "StoreViews":
        """Restore views bit-identically from a :meth:`state` snapshot."""
        views = cls(state["machine"], state["window_start_us"])
        views.rows = int(state["rows"])
        views.category_counts = dict(state["category_counts"])
        views.node_counts = {
            int(node): count
            for node, count in state["node_counts"].items()
        }
        views.month_counts = list(state["month_counts"])
        views.weekday_counts = list(state["weekday_counts"])
        views.hour_counts = list(state["hour_counts"])
        views.month_ttr = {
            int(month): Welford.from_state(snapshot)
            for month, snapshot in state["month_ttr"].items()
        }
        views.ttr = Welford.from_state(state["ttr"])
        views.gaps = Welford.from_state(state["gaps"])
        views.last_ts_us = state["last_ts_us"]
        views.first_ts_us = state["first_ts_us"]
        views.involvement = {
            int(num): count
            for num, count in state["involvement"].items()
        }
        views.pending_single_count = int(state["pending_single_count"])
        views.pending_single_us = int(state["pending_single_us"])
        views.last_multi_us = state["last_multi_us"]
        views.gaps_multi_count = int(state["gaps_multi_count"])
        views.gaps_multi_us = int(state["gaps_multi_us"])
        views.gaps_single_count = int(state["gaps_single_count"])
        views.gaps_single_us = int(state["gaps_single_us"])
        views.ttr_sketch = GKQuantileSketch.from_state(
            state["ttr_sketch"]
        )
        views.gap_sketch = GKQuantileSketch.from_state(
            state["gap_sketch"]
        )
        views.rate = EwmaRate.from_state(state["rate"])
        return views

    def save(self, root: str | Path, token: str) -> None:
        """Write ``views.json`` bound to one committed manifest state.

        Written via temp-and-rename like the manifest; a stale or torn
        file merely costs a rebuild, never wrong analytics, because
        :meth:`load` refuses any token mismatch.
        """
        root = Path(root)
        path = root / VIEWS_NAME
        tmp = root / (VIEWS_NAME + ".tmp")
        blob = json.dumps(
            {"token": token, "state": self.state()}
        ).encode("utf-8")
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, root: str | Path, token: str) -> "StoreViews | None":
        """Load saved views if they match ``token``; None means rebuild."""
        path = Path(root) / VIEWS_NAME
        try:
            saved = json.loads(path.read_bytes())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(saved, dict) or saved.get("token") != token:
            return None
        try:
            state = saved["state"]
            if state.get("version") != _STATE_VERSION:
                return None
            return cls.from_state(state)
        except (KeyError, TypeError, ValueError):
            return None


# --------------------------------------------------------------------------
# Parity against the cold kernels
# --------------------------------------------------------------------------

def verify_parity(
    payloads: dict[str, dict[str, Any]],
    log,
    *,
    rel_tol: float = 1e-9,
) -> None:
    """Assert materialized payloads match the cold kernels on ``log``.

    Integer-derived values must be exactly equal; floats to
    ``rel_tol`` (see the module docstring for why bit-exact float
    means are impossible against pairwise summation).

    Raises:
        StoreCorruptError: On the first mismatch, naming the path.
    """
    from repro.serve.app import ANALYSES  # lazy: avoids an import cycle

    for name, payload in payloads.items():
        cold = ANALYSES[name](log)
        _compare(name, payload, cold, rel_tol)


def _compare(path: str, ours: Any, cold: Any, rel_tol: float) -> None:
    if isinstance(cold, float) and isinstance(ours, (int, float)):
        ours = float(ours)
        if math.isnan(cold) and math.isnan(ours):
            return
        if math.isclose(ours, cold, rel_tol=rel_tol, abs_tol=1e-12):
            return
        raise StoreCorruptError(
            f"materialized analytics diverge from the cold kernels at "
            f"{path}: {ours!r} != {cold!r}"
        )
    if isinstance(cold, dict) and isinstance(ours, dict):
        if set(cold) != set(ours):
            raise StoreCorruptError(
                f"materialized analytics diverge at {path}: keys "
                f"{sorted(ours)} != {sorted(cold)}"
            )
        for key in cold:
            _compare(f"{path}.{key}", ours[key], cold[key], rel_tol)
        return
    if isinstance(cold, (list, tuple)) and isinstance(ours, (list, tuple)):
        if len(cold) != len(ours):
            raise StoreCorruptError(
                f"materialized analytics diverge at {path}: length "
                f"{len(ours)} != {len(cold)}"
            )
        for index, (a, b) in enumerate(zip(ours, cold)):
            _compare(f"{path}[{index}]", a, b, rel_tol)
        return
    if ours != cold:
        raise StoreCorruptError(
            f"materialized analytics diverge from the cold kernels at "
            f"{path}: {ours!r} != {cold!r}"
        )
