"""Immutable on-disk columnar segments.

A segment is one append's worth of failure records, laid out as
aligned NumPy column arrays in a single file so a reader can
``np.memmap`` it and hand out zero-copy views — a million-record log
never has to be fully loaded to answer a column query.

Layout::

    offset 0   magic  b"RPRSEG01"
    offset 8   u64    header JSON length
    offset 16  bytes  header JSON (schema version, rows, column table,
                      category/locus string tables, min/max stamps)
    ...        pad    zeros to the next 64-byte boundary
    ...        data   one 64-aligned block per column
    tail       footer b"RPRSEGFT" + u64 data_end + sha256(file[0:data_end])

The footer is written last: a torn write (crash, full disk, chaos
injection) leaves a file whose footer is missing, misplaced, or whose
digest disagrees with the bytes — all three are detected by
:func:`open_segment` and surfaced as :class:`StoreCorruptError`, which
is what lets manifest recovery drop a torn tail segment instead of
silently returning bad rows.

Columns (dtypes are fixed by ``SCHEMA_VERSION``)::

    record_id    <i8   stable id, unique within the store
    ts_us        <i8   microseconds since the Unix epoch (naive local,
                       exact for datetime's microsecond resolution)
    node_id      <i8
    ttr_hours    <f8
    category     <i4   code into the segment's category_table
    locus        <i4   code into locus_table, -1 when absent
    month        i1    calendar month of the timestamp (1..12)
    weekday      i1    0 = Monday .. 6 = Sunday
    hour         i1    0..23
    slot_offsets <i8   CSR offsets of GPU slot involvement (rows + 1)
    slot_values  <i4   CSR values (concatenated GPU slot indices)
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np

from repro.errors import StoreCorruptError, StoreError

__all__ = [
    "SCHEMA_VERSION",
    "COLUMN_DTYPES",
    "Segment",
    "write_segment",
    "open_segment",
    "datetimes_to_us",
    "us_to_datetime",
]

SCHEMA_VERSION = 1

_MAGIC = b"RPRSEG01"
_FOOTER_MAGIC = b"RPRSEGFT"
_ALIGN = 64
_FOOTER_LEN = len(_FOOTER_MAGIC) + 8 + 32

#: Column name -> canonical little-endian dtype string.
COLUMN_DTYPES: dict[str, str] = {
    "record_id": "<i8",
    "ts_us": "<i8",
    "node_id": "<i8",
    "ttr_hours": "<f8",
    "category": "<i4",
    "locus": "<i4",
    "month": "i1",
    "weekday": "i1",
    "hour": "i1",
    "slot_offsets": "<i8",
    "slot_values": "<i4",
}

_EPOCH = datetime(1970, 1, 1)
_US = timedelta(microseconds=1)


def datetimes_to_us(stamps) -> np.ndarray:
    """Convert naive datetimes to integer microseconds since the epoch.

    Integer ``timedelta`` division keeps the full microsecond
    precision of :class:`datetime`, so the round trip through
    :func:`us_to_datetime` is exact.
    """
    return np.fromiter(
        ((stamp - _EPOCH) // _US for stamp in stamps),
        dtype=np.int64,
        count=len(stamps),
    )


def us_to_datetime(us: int) -> datetime:
    """Inverse of :func:`datetimes_to_us` for one value."""
    return _EPOCH + timedelta(microseconds=int(us))


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class Segment:
    """One opened segment: zero-copy column arrays over a memmap.

    The arrays are read-only views into ``_buffer`` (the mmap'd file).
    NumPy's base-chain keeps the mapping alive for as long as any view
    — or any array derived from a view — exists, the same pinning
    guarantee :mod:`repro.parallel.shm` relies on, so handing a column
    to a caller that outlives this object is safe.
    """

    path: Path
    rows: int
    category_table: tuple[str, ...]
    locus_table: tuple[str, ...]
    min_ts_us: int
    max_ts_us: int
    min_record_id: int
    max_record_id: int
    columns: dict[str, np.ndarray]
    _buffer: np.memmap | None

    def __len__(self) -> int:
        return self.rows

    def col(self, name: str) -> np.ndarray:
        """One column array (read-only, mmap-backed)."""
        return self.columns[name]


def _column_lengths(rows: int, slots: int) -> dict[str, int]:
    """Element count per column for a segment of ``rows`` records."""
    lengths = {name: rows for name in COLUMN_DTYPES}
    lengths["slot_offsets"] = rows + 1
    lengths["slot_values"] = slots
    return lengths


def write_segment(
    path: str | Path,
    columns: dict[str, np.ndarray],
    category_table: tuple[str, ...],
    locus_table: tuple[str, ...],
) -> dict:
    """Write one immutable segment file; returns its manifest entry.

    ``columns`` must contain every key of :data:`COLUMN_DTYPES`; each
    array is cast to the canonical dtype.  The file is fsync'd before
    returning, so once the caller commits the manifest that names this
    segment, the data it points at is durable.

    Raises:
        StoreError: On a missing/extra column or length mismatch.
    """
    path = Path(path)
    missing = set(COLUMN_DTYPES) - set(columns)
    extra = set(columns) - set(COLUMN_DTYPES)
    if missing or extra:
        raise StoreError(
            f"segment columns mismatch: missing {sorted(missing)}, "
            f"unexpected {sorted(extra)}"
        )
    rows = int(columns["record_id"].shape[0])
    slots = int(columns["slot_values"].shape[0])
    expected = _column_lengths(rows, slots)
    arrays: dict[str, np.ndarray] = {}
    for name, dtype in COLUMN_DTYPES.items():
        array = np.ascontiguousarray(columns[name], dtype=np.dtype(dtype))
        if array.ndim != 1 or array.shape[0] != expected[name]:
            raise StoreError(
                f"segment column {name!r} has shape {array.shape}, "
                f"expected ({expected[name]},)"
            )
        arrays[name] = array

    ts = arrays["ts_us"]
    ids = arrays["record_id"]
    column_meta = []
    # Lay out the data region: header first, then 64-aligned columns.
    header = {
        "schema_version": SCHEMA_VERSION,
        "rows": rows,
        "category_table": list(category_table),
        "locus_table": list(locus_table),
        "min_ts_us": int(ts.min()) if rows else 0,
        "max_ts_us": int(ts.max()) if rows else 0,
        "min_record_id": int(ids.min()) if rows else 0,
        "max_record_id": int(ids.max()) if rows else 0,
        "columns": column_meta,
    }
    # Two passes: the header length depends on the column offsets,
    # which depend on the header length.  Fix the header size by
    # computing offsets against a placeholder, then re-rendering —
    # padding the JSON to its own measured length keeps it stable.
    placeholder = dict(header)
    placeholder["columns"] = [
        {"name": name, "dtype": COLUMN_DTYPES[name],
         "offset": 2 ** 60, "nbytes": arrays[name].nbytes}
        for name in COLUMN_DTYPES
    ]
    header_len = len(json.dumps(placeholder).encode("utf-8"))
    data_start = _aligned(16 + header_len)
    offset = data_start
    for name in COLUMN_DTYPES:
        offset = _aligned(offset)
        column_meta.append(
            {
                "name": name,
                "dtype": COLUMN_DTYPES[name],
                "offset": offset,
                "nbytes": arrays[name].nbytes,
            }
        )
        offset += arrays[name].nbytes
    data_end = offset
    header_bytes = json.dumps(header).encode("utf-8")
    # Offsets rendered shorter than the 2**60 placeholder: pad with
    # spaces (valid JSON whitespace) so the measured length holds.
    header_bytes += b" " * (header_len - len(header_bytes))

    digest = hashlib.sha256()
    with open(path, "wb") as handle:
        def emit(chunk: bytes) -> None:
            digest.update(chunk)
            handle.write(chunk)

        emit(_MAGIC)
        emit(len(header_bytes).to_bytes(8, "little"))
        emit(header_bytes)
        position = 16 + len(header_bytes)
        for meta in column_meta:
            pad = meta["offset"] - position
            emit(b"\x00" * pad)
            emit(arrays[meta["name"]].tobytes())
            position = meta["offset"] + meta["nbytes"]
        handle.write(_FOOTER_MAGIC)
        handle.write(data_end.to_bytes(8, "little"))
        handle.write(digest.digest())
        handle.flush()
        os.fsync(handle.fileno())
    return {
        "file": path.name,
        "rows": rows,
        "nbytes": data_end + _FOOTER_LEN,
        "sha256": digest.hexdigest(),
        "min_ts_us": header["min_ts_us"],
        "max_ts_us": header["max_ts_us"],
        "min_record_id": header["min_record_id"],
        "max_record_id": header["max_record_id"],
    }


def open_segment(path: str | Path, verify: bool = True) -> Segment:
    """Open a segment as zero-copy read-only views over a memmap.

    Args:
        path: Segment file path.
        verify: Recompute the SHA-256 over the data region and compare
            it to the footer digest.  Structural checks (magic, sizes,
            footer placement) always run; the digest pass costs one
            sequential read and is what crash-recovery uses to decide
            whether a tail segment is torn.

    Raises:
        StoreCorruptError: On any structural or checksum failure.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise StoreCorruptError(f"segment {path} unreadable: {exc}") from exc
    if size < 16 + _FOOTER_LEN:
        raise StoreCorruptError(
            f"segment {path} too short ({size} bytes) to hold a "
            f"header and footer"
        )
    buffer = np.memmap(path, dtype=np.uint8, mode="r")
    raw = buffer[:16].tobytes()
    if raw[:8] != _MAGIC:
        raise StoreCorruptError(f"segment {path} has a bad magic number")
    header_len = int.from_bytes(raw[8:16], "little")
    if 16 + header_len + _FOOTER_LEN > size:
        raise StoreCorruptError(
            f"segment {path} header length {header_len} exceeds the file"
        )
    try:
        header = json.loads(buffer[16:16 + header_len].tobytes())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptError(
            f"segment {path} header is not valid JSON: {exc}"
        ) from exc
    if header.get("schema_version") != SCHEMA_VERSION:
        raise StoreCorruptError(
            f"segment {path} has schema version "
            f"{header.get('schema_version')!r}, expected {SCHEMA_VERSION}"
        )
    footer = buffer[size - _FOOTER_LEN:].tobytes()
    if footer[:8] != _FOOTER_MAGIC:
        raise StoreCorruptError(
            f"segment {path} footer magic missing (torn write)"
        )
    data_end = int.from_bytes(footer[8:16], "little")
    if data_end != size - _FOOTER_LEN:
        raise StoreCorruptError(
            f"segment {path} footer places data end at {data_end} but "
            f"the file has {size - _FOOTER_LEN} data bytes"
        )
    if verify:
        digest = hashlib.sha256(buffer[:data_end]).digest()
        if digest != footer[16:]:
            raise StoreCorruptError(
                f"segment {path} checksum mismatch (corrupted data)"
            )

    rows = int(header["rows"])
    columns: dict[str, np.ndarray] = {}
    for meta in header["columns"]:
        name = meta["name"]
        dtype = np.dtype(meta["dtype"])
        start, nbytes = int(meta["offset"]), int(meta["nbytes"])
        if start + nbytes > data_end:
            raise StoreCorruptError(
                f"segment {path} column {name!r} extends past the "
                f"data region"
            )
        # A view of the memmap slice: the base chain pins the mapping.
        array = buffer[start:start + nbytes].view(dtype)
        array.setflags(write=False)
        columns[name] = array
    expected = _column_lengths(
        rows, int(columns["slot_values"].shape[0])
    )
    for name, array in columns.items():
        if array.shape[0] != expected[name]:
            raise StoreCorruptError(
                f"segment {path} column {name!r} has "
                f"{array.shape[0]} elements, expected {expected[name]}"
            )
    return Segment(
        path=path,
        rows=rows,
        category_table=tuple(header["category_table"]),
        locus_table=tuple(header["locus_table"]),
        min_ts_us=int(header["min_ts_us"]),
        max_ts_us=int(header["max_ts_us"]),
        min_record_id=int(header["min_record_id"]),
        max_record_id=int(header["max_record_id"]),
        columns=columns,
        _buffer=buffer,
    )
