"""Append path: FailureLog / record batches -> committed segments.

An append is validated the same way an in-memory log is (every record
runs the full ``FailureRecord``/``FailureLog`` validation), then
frozen into one immutable segment.  Two store-level invariants are
enforced on top:

* **time-monotone appends** — a batch's earliest timestamp may not
  precede the store's watermark (the latest committed timestamp).
  This is what makes event-time cuts (``as_of``) segment prefixes and
  the MTBF gap series incrementally maintainable.
* **monotone record ids** — every id in a batch must exceed the
  store's largest committed id, which guarantees global uniqueness
  without reading old segments back.  ``reindex=True`` renumbers the
  batch instead of rejecting it.
"""

from __future__ import annotations

from datetime import timedelta
from typing import Iterable

import numpy as np

from repro.core.records import FailureLog, FailureRecord
from repro.errors import StoreError
from repro.store.segments import datetimes_to_us, us_to_datetime

__all__ = ["normalize_batch", "batch_columns"]

_PAD = timedelta(hours=1)


def normalize_batch(
    batch: "FailureLog | Iterable[FailureRecord]",
    machine: str,
    strict_taxonomy: bool,
    window_start_us: int | None,
    window_end_us: int | None,
    watermark_us: int | None,
    last_record_id: int,
    reindex: bool,
) -> tuple[FailureLog, int, int]:
    """Validate a batch against the store's invariants.

    Returns ``(validated_log, new_window_start_us, new_window_end_us)``
    where the log carries the (possibly renumbered) records in their
    final on-disk order and the window values are the store's after
    this append.

    Raises:
        StoreError: On machine/taxonomy mismatch, a non-monotone
            batch, or colliding record ids without ``reindex``.
    """
    if isinstance(batch, FailureLog):
        if batch.machine != machine:
            raise StoreError(
                f"store holds {machine!r} events but the batch is for "
                f"{batch.machine!r}"
            )
        if batch._strict_taxonomy != strict_taxonomy:
            raise StoreError(
                "batch taxonomy strictness "
                f"({batch._strict_taxonomy}) does not match the "
                f"store's ({strict_taxonomy})"
            )
        records = batch.records
        batch_window = (batch.window_start, batch.window_end)
    else:
        records = tuple(
            sorted(batch, key=lambda r: (r.timestamp, r.record_id))
        )
        batch_window = None
    if not records:
        raise StoreError("cannot append an empty batch")

    stamps_us = datetimes_to_us([r.timestamp for r in records])
    first_us = int(stamps_us[0])
    last_us = int(stamps_us[-1])
    if watermark_us is not None and first_us < watermark_us:
        raise StoreError(
            f"append is not time-monotone: batch starts at "
            f"{us_to_datetime(first_us)} but the store's watermark is "
            f"{us_to_datetime(watermark_us)}"
        )

    if reindex:
        records = tuple(
            FailureRecord(
                record_id=last_record_id + 1 + offset,
                timestamp=r.timestamp,
                node_id=r.node_id,
                category=r.category,
                ttr_hours=r.ttr_hours,
                gpus_involved=r.gpus_involved,
                root_locus=r.root_locus,
            )
            for offset, r in enumerate(records)
        )
    else:
        smallest = min(r.record_id for r in records)
        if smallest <= last_record_id:
            raise StoreError(
                f"record id {smallest} collides with the store's "
                f"committed ids (last is {last_record_id}); renumber "
                f"the batch or pass reindex=True"
            )

    # Resolve the store window after this append.
    if window_start_us is None:
        # First append fixes the window origin.
        if batch_window is not None:
            new_start_us = int(datetimes_to_us([batch_window[0]])[0])
            new_end_us = int(datetimes_to_us([batch_window[1]])[0])
        else:
            new_start_us = int(
                datetimes_to_us([records[0].timestamp - _PAD])[0]
            )
            new_end_us = int(
                datetimes_to_us([records[-1].timestamp + _PAD])[0]
            )
    else:
        new_start_us = window_start_us
        if batch_window is not None:
            batch_start_us = int(datetimes_to_us([batch_window[0]])[0])
            if batch_start_us != window_start_us:
                raise StoreError(
                    f"batch window starts at {batch_window[0]} but the "
                    f"store's window starts at "
                    f"{us_to_datetime(window_start_us)}; the origin is "
                    f"fixed by the first append"
                )
            new_end_us = max(
                window_end_us or 0,
                int(datetimes_to_us([batch_window[1]])[0]),
            )
        else:
            new_end_us = max(
                window_end_us or 0,
                int(datetimes_to_us([records[-1].timestamp + _PAD])[0]),
            )
    del last_us

    # Full validation: window containment, id uniqueness, taxonomy.
    log = FailureLog(
        machine=machine,
        records=records,
        window_start=us_to_datetime(new_start_us),
        window_end=us_to_datetime(new_end_us),
        _strict_taxonomy=strict_taxonomy,
    )
    return log, new_start_us, new_end_us


def batch_columns(
    log: FailureLog,
) -> tuple[dict[str, np.ndarray], tuple[str, ...], tuple[str, ...]]:
    """Segment-shaped column arrays of a validated batch.

    Reuses the batch's own :class:`ColumnarView` (the exact arrays
    ``build_columns`` derives — calendar fields, category codes, slot
    CSR), so what lands on disk is bit-identical to what the in-memory
    layer computes.
    """
    cols = log.columns
    records = log.records
    locus_table = tuple(
        sorted({r.root_locus for r in records if r.root_locus})
    )
    locus_code = {name: code for code, name in enumerate(locus_table)}
    loci = np.fromiter(
        (
            locus_code[r.root_locus] if r.root_locus else -1
            for r in records
        ),
        dtype=np.int32,
        count=len(records),
    )
    columns = {
        "record_id": np.fromiter(
            (r.record_id for r in records),
            dtype=np.int64,
            count=len(records),
        ),
        "ts_us": datetimes_to_us([r.timestamp for r in records]),
        "node_id": cols.node_ids,
        "ttr_hours": cols.ttr_hours,
        "category": cols.category_codes,
        "locus": loci,
        "month": cols.months,
        "weekday": cols.weekdays,
        "hour": cols.hours_of_day,
        "slot_offsets": cols.slot_offsets,
        "slot_values": cols.slot_values,
    }
    return columns, cols.category_names, locus_table
