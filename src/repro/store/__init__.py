"""repro.store — a persistent, append-only columnar event store.

Failure logs live on disk as immutable, checksummed segments of
aligned NumPy column arrays under an atomic JSON manifest; reads
memory-map the segments and materialize
:class:`~repro.core.columns.ColumnarView` /
:class:`~repro.core.records.FailureLog` without copying the stored
columns.  Every append incrementally updates materialized analytics
(:mod:`repro.store.views`), so opening a store and serving its
``/analyze`` payloads costs O(1) in the store's size — the warm
restart the serving layer's ``store:PATH`` dataset specs build on.

Quick tour::

    from repro.store import init_store, open_store

    store = init_store("events.store", "tsubame3")
    store.append(log)                     # validated, fsync'd, committed
    store.payloads()["breakdown"]         # materialized, O(1)
    log2 = open_store("events.store").log()   # zero-copy over mmap
    past = open_store("events.store", as_of=march).log()  # time travel

See ``docs/STORAGE.md`` for the format specification, recovery
semantics, and the incremental-vs-cold parity contract.
"""

from repro.store.segments import SCHEMA_VERSION
from repro.store.store import (
    FailureStore,
    ingest_log,
    init_store,
    open_store,
)
from repro.store.views import StoreViews, verify_parity

__all__ = [
    "SCHEMA_VERSION",
    "FailureStore",
    "StoreViews",
    "ingest_log",
    "init_store",
    "open_store",
    "verify_parity",
]
