"""The store facade: init / open / append / read / time-travel.

A store is a directory::

    mystore/
      manifest.json        committed truth (atomic, checksummed)
      manifest.prev.json   previous commit (single-corruption fallback)
      views.json           materialized analytics bound to a manifest
      seg-000000-g000.rps  immutable columnar segments, one per append

Open-time recovery, in order:

1. the manifest is parsed and checksum-verified, falling back to the
   previous commit when the current one is torn or corrupt;
2. every listed segment is opened and digest-verified against both
   its own footer and the manifest's recorded digest — a bad *tail*
   segment is quarantined (renamed ``.torn``) and the manifest healed
   back to the previous append's snapshot; a bad non-tail segment
   raises :class:`~repro.errors.StoreCorruptError`, because dropping
   interior data would silently change history;
3. segment files the manifest does not name (a crash between segment
   write and manifest commit) are quarantined as ``.orphan``;
4. materialized views are loaded if their token matches the committed
   manifest, else rebuilt from the segments through the same absorb
   path appends use — bit-identical state either way.

``open_store(path, as_of=...)`` opens a read-only view of the store
as it stood at an event time: time-monotone appends make the cut a
prefix of each segment, and the observation window is truncated to
``as_of`` — "the state of the fleet as of March".
"""

from __future__ import annotations

from datetime import datetime
from pathlib import Path
from typing import Any, Iterable

from repro.core.records import FailureLog, FailureRecord
from repro.errors import StoreCorruptError, StoreError
from repro.machines.specs import get_machine
from repro.store import compact as compact_mod
from repro.store.manifest import (
    MANIFEST_NAME,
    PREV_MANIFEST_NAME,
    commit_manifest,
    load_manifest,
    manifest_fingerprint,
    new_manifest,
)
from repro.store.reader import cut_rows, materialize_log
from repro.store.segments import (
    SCHEMA_VERSION,
    Segment,
    datetimes_to_us,
    open_segment,
    us_to_datetime,
    write_segment,
)
from repro.store.views import StoreViews
from repro.store.writer import batch_columns, normalize_batch

__all__ = ["FailureStore", "ingest_log", "init_store", "open_store"]

_SEGMENT_GLOB = "seg-*.rps"


def init_store(
    path: str | Path,
    machine: str,
    *,
    window_start: datetime | None = None,
    window_end: datetime | None = None,
    strict_taxonomy: bool = True,
) -> "FailureStore":
    """Create an empty store directory and commit its first manifest.

    Raises:
        StoreError: If the directory already holds a store.
        MachineError: If the machine is unknown.
    """
    get_machine(machine)  # validate before touching the filesystem
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    if (root / MANIFEST_NAME).exists() or (
        root / PREV_MANIFEST_NAME
    ).exists():
        raise StoreError(f"{root} already holds a store")
    manifest = new_manifest(machine, SCHEMA_VERSION, strict_taxonomy)
    if (window_start is None) != (window_end is None):
        raise StoreError(
            "pass both window_start and window_end, or neither"
        )
    if window_start is not None:
        if window_end <= window_start:
            raise StoreError(
                f"window_end ({window_end}) must be after "
                f"window_start ({window_start})"
            )
        manifest["window_start_us"] = int(
            datetimes_to_us([window_start])[0]
        )
        manifest["window_end_us"] = int(datetimes_to_us([window_end])[0])
    commit_manifest(root, manifest)
    return FailureStore(root, manifest, [], None)


def open_store(
    path: str | Path,
    *,
    as_of: datetime | None = None,
    verify: bool = True,
) -> "FailureStore":
    """Open an existing store, running crash recovery if needed.

    Args:
        path: Store directory.
        as_of: Open a read-only view of the store at this event time
            (records with ``timestamp <= as_of``; the observation
            window is truncated to ``as_of``).
        verify: Digest-verify every segment (one sequential read per
            segment).  Structural checks always run.

    Raises:
        StoreCorruptError: When the store cannot be recovered without
            losing non-tail data.
    """
    root = Path(path)
    manifest, recovered = load_manifest(root)
    segments, manifest, healed = _open_segments(root, manifest, verify)
    recovered = recovered or healed
    quarantined = _quarantine_orphans(root, manifest)
    if recovered:
        commit_manifest(root, manifest)
    as_of_us: int | None = None
    if as_of is not None:
        as_of_us = int(datetimes_to_us([as_of])[0])
        start_us = manifest["window_start_us"]
        if start_us is None or as_of_us <= start_us:
            raise StoreError(
                f"as_of ({as_of}) must fall after the store's window "
                f"start"
            )
    store = FailureStore(root, manifest, segments, as_of_us)
    store.recovered = recovered
    store.quarantined = quarantined
    return store


def ingest_log(
    path: str | Path,
    log: FailureLog,
    *,
    reindex: bool = False,
) -> dict[str, Any]:
    """Append ``log`` to the store at ``path``, creating it if absent.

    The sink behind ``TraceGenerator.to_store`` and
    ``ClusterSimulator.to_store``: a fresh store adopts the log's
    machine, taxonomy strictness, and observation window; an existing
    one validates the batch against its own invariants.  Returns the
    append summary.
    """
    root = Path(path)
    if (root / MANIFEST_NAME).exists():
        store = open_store(root)
    else:
        store = init_store(
            root,
            log.machine,
            window_start=log.window_start,
            window_end=log.window_end,
            strict_taxonomy=log._strict_taxonomy,
        )
    return store.append(log, reindex=reindex)


def _open_segments(
    root: Path, manifest: dict[str, Any], verify: bool
) -> tuple[list[Segment], dict[str, Any], bool]:
    """Open every listed segment, healing a torn tail.

    A segment that fails verification is only recoverable when it is
    the manifest's *last* one: the manifest is rolled back to the
    previous append's snapshot and the file quarantined.  Interior
    corruption raises — recovery never silently rewrites history.
    """
    healed = False
    while True:
        entries = manifest["segments"]
        segments: list[Segment] = []
        failure: StoreCorruptError | None = None
        for index, entry in enumerate(entries):
            path = root / entry["file"]
            try:
                segment = open_segment(path, verify=verify)
                if verify and segment_digest(segment) != entry["sha256"]:
                    raise StoreCorruptError(
                        f"segment {path} does not match the digest the "
                        f"manifest recorded"
                    )
                if segment.rows != entry["rows"]:
                    raise StoreCorruptError(
                        f"segment {path} holds {segment.rows} rows but "
                        f"the manifest recorded {entry['rows']}"
                    )
            except StoreCorruptError as exc:
                if index != len(entries) - 1:
                    raise StoreCorruptError(
                        f"non-tail segment {entry['file']} is corrupt "
                        f"({exc}); refusing to drop interior data"
                    ) from exc
                failure = exc
                break
            segments.append(segment)
        if failure is None:
            return segments, manifest, healed
        manifest = _drop_tail(root, manifest)
        healed = True


def segment_digest(segment: Segment) -> str:
    """The footer digest a segment carries, as hex."""
    size = segment.path.stat().st_size
    with open(segment.path, "rb") as handle:
        handle.seek(size - 32)
        return handle.read(32).hex()


def _drop_tail(root: Path, manifest: dict[str, Any]) -> dict[str, Any]:
    """Quarantine the torn tail segment and roll the manifest back."""
    manifest = dict(manifest)
    entries = list(manifest["segments"])
    dropped = entries.pop()
    torn = root / dropped["file"]
    if torn.exists():
        torn.rename(torn.with_name(torn.name + ".torn"))
    manifest["segments"] = entries
    appends = [
        snapshot
        for snapshot in manifest["appends"]
        if snapshot["file"] != dropped["file"]
    ]
    manifest["appends"] = appends
    if appends:
        last = appends[-1]
        manifest["rows"] = last["rows_total"]
        manifest["last_record_id"] = last["last_record_id"]
        manifest["watermark_us"] = last["watermark_us"]
        manifest["window_start_us"] = last["window_start_us"]
        manifest["window_end_us"] = last["window_end_us"]
    else:
        manifest["rows"] = 0
        manifest["last_record_id"] = -1
        manifest["watermark_us"] = None
        if not entries:
            manifest["window_start_us"] = None
            manifest["window_end_us"] = None
    return manifest


def _quarantine_orphans(
    root: Path, manifest: dict[str, Any]
) -> list[str]:
    """Rename segment files the manifest does not name.

    An orphan is the footprint of an append that wrote its segment but
    crashed before the manifest commit — invisible to readers, but
    renamed aside so operators can tell recovery happened.
    """
    listed = {entry["file"] for entry in manifest["segments"]}
    quarantined = []
    for path in sorted(root.glob(_SEGMENT_GLOB)):
        if path.name not in listed:
            path.rename(path.with_name(path.name + ".orphan"))
            quarantined.append(path.name)
    return quarantined


class FailureStore:
    """One opened store: append, read, analyze, compact.

    Build via :func:`init_store` / :func:`open_store`, not directly.
    """

    def __init__(
        self,
        root: Path,
        manifest: dict[str, Any],
        segments: list[Segment],
        as_of_us: int | None,
    ) -> None:
        self.root = root
        self.manifest = manifest
        self.segments = segments
        self.as_of_us = as_of_us
        self.recovered = False
        self.quarantined: list[str] = []
        self._views: StoreViews | None = None
        self._log: FailureLog | None = None

    # -- identity ----------------------------------------------------------

    @property
    def machine(self) -> str:
        return self.manifest["machine"]

    @property
    def strict_taxonomy(self) -> bool:
        return bool(self.manifest["strict_taxonomy"])

    @property
    def rows(self) -> int:
        if self.as_of_us is None:
            return int(self.manifest["rows"])
        return sum(
            cut_rows(segment, self.as_of_us)
            for segment in self.segments
        )

    @property
    def watermark(self) -> datetime | None:
        """Latest committed event time (None when empty)."""
        us = self.manifest["watermark_us"]
        return us_to_datetime(us) if us is not None else None

    @property
    def fingerprint(self) -> str:
        """Stable identity of the committed state this handle sees.

        Derived from the manifest body, so it is identical across
        processes and restarts and changes on every append — the
        property the serving layer's result cache keys on.
        """
        token = manifest_fingerprint(self.manifest)
        if self.as_of_us is not None:
            token += f"@{self.as_of_us}"
        return token

    @property
    def _window_end_us(self) -> int:
        if self.as_of_us is not None:
            return self.as_of_us
        return int(self.manifest["window_end_us"])

    # -- append ------------------------------------------------------------

    def append(
        self,
        batch: "FailureLog | Iterable[FailureRecord]",
        *,
        reindex: bool = False,
    ) -> dict[str, Any]:
        """Validate, freeze, and durably commit one batch of events.

        Ordering is segment fsync -> manifest commit -> views save, so
        a crash at any point leaves either the previous committed
        state (plus a quarantinable orphan file) or the new one.

        Returns an append summary (segment file, rows, fingerprint).

        Raises:
            StoreError: On a read-only ``as_of`` handle, or any
                invariant violation (see :mod:`repro.store.writer`).
        """
        if self.as_of_us is not None:
            raise StoreError(
                "this handle is a read-only as_of view; open the "
                "store without as_of to append"
            )
        manifest = self.manifest
        log, start_us, end_us = normalize_batch(
            batch,
            self.machine,
            self.strict_taxonomy,
            manifest["window_start_us"],
            manifest["window_end_us"],
            manifest["watermark_us"],
            int(manifest["last_record_id"]),
            reindex,
        )
        columns, category_table, locus_table = batch_columns(log)
        # Resolve the views against the PRE-append state: resolving
        # after the manifest swap would rebuild them from the new
        # segment list and then absorb the batch a second time.
        views = self.views()
        if views.rows == 0 and views.window_start_us != start_us:
            views = StoreViews(self.machine, start_us)
        seq = int(manifest["next_seq"])
        generation = int(manifest["generation"])
        name = f"seg-{seq:06d}-g{generation:03d}.rps"
        entry = write_segment(
            self.root / name, columns, category_table, locus_table
        )
        entry["generation"] = generation
        entry["seq"] = seq

        updated = dict(manifest)
        updated["segments"] = list(manifest["segments"]) + [entry]
        updated["next_seq"] = seq + 1
        updated["rows"] = int(manifest["rows"]) + len(log)
        updated["last_record_id"] = max(
            int(manifest["last_record_id"]),
            max(r.record_id for r in log.records),
        )
        updated["watermark_us"] = int(columns["ts_us"][-1])
        updated["window_start_us"] = start_us
        updated["window_end_us"] = end_us
        updated["appends"] = list(manifest["appends"]) + [
            {
                "seq": seq,
                "file": name,
                "rows": len(log),
                "rows_total": updated["rows"],
                "last_record_id": updated["last_record_id"],
                "watermark_us": updated["watermark_us"],
                "window_start_us": start_us,
                "window_end_us": end_us,
            }
        ]
        commit_manifest(self.root, updated)
        self.manifest = updated
        self.segments = self.segments + [
            open_segment(self.root / name, verify=False)
        ]
        views.absorb(columns, category_table, locus_table)
        self._views = views
        views.save(self.root, manifest_fingerprint(updated))
        self._log = None
        return {
            "segment": name,
            "rows": len(log),
            "rows_total": updated["rows"],
            "fingerprint": self.fingerprint,
        }

    # -- reads -------------------------------------------------------------

    def log(self) -> FailureLog:
        """Materialize the (possibly time-traveled) FailureLog.

        The log's columnar view aliases the mmap'd segment arrays;
        the result is cached on the handle.

        Raises:
            StoreError: When the store is empty (no window to build a
                log over).
        """
        if self._log is None:
            if self.manifest["window_start_us"] is None:
                raise StoreError(
                    "store is empty; append a batch before reading"
                )
            self._log = materialize_log(
                self.segments,
                self.machine,
                int(self.manifest["window_start_us"]),
                self._window_end_us,
                self.strict_taxonomy,
                self.as_of_us,
            )
        return self._log

    def columns(self):
        """The store's ColumnarView over the mmap'd segments."""
        return self.log().columns

    # -- materialized analytics --------------------------------------------

    def views(self) -> StoreViews:
        """The store's incremental views, loading or rebuilding once.

        A full-store handle loads ``views.json`` when its token
        matches the committed manifest and rebuilds through the
        append-time absorb path otherwise; an ``as_of`` handle always
        rebuilds over the visible prefix (time travel is a query
        feature, not the serving hot path).
        """
        if self._views is not None:
            return self._views
        start_us = self.manifest["window_start_us"]
        if start_us is None:
            self._views = StoreViews(self.machine, 0)
            return self._views
        if self.as_of_us is None:
            token = manifest_fingerprint(self.manifest)
            loaded = StoreViews.load(self.root, token)
            if loaded is not None:
                self._views = loaded
                return loaded
        views = StoreViews(self.machine, int(start_us))
        for segment in self.segments:
            rows = cut_rows(segment, self.as_of_us)
            if rows == 0:
                continue
            columns = segment.columns
            if rows != segment.rows:
                offsets = columns["slot_offsets"][: rows + 1]
                columns = {
                    name: array[:rows]
                    for name, array in columns.items()
                    if name not in ("slot_offsets", "slot_values")
                }
                columns["slot_offsets"] = offsets
                columns["slot_values"] = segment.columns[
                    "slot_values"
                ][: int(offsets[-1])]
            views.absorb(
                columns, segment.category_table, segment.locus_table
            )
        self._views = views
        if self.as_of_us is None:
            views.save(self.root, manifest_fingerprint(self.manifest))
        return views

    def payloads(self) -> dict[str, dict[str, Any]]:
        """Materialized ``/analyze`` payloads (see StoreViews)."""
        if self.manifest["window_start_us"] is None:
            return {}
        return self.views().payloads(self._window_end_us)

    def info(self) -> dict[str, Any]:
        """Operator summary: identity, lineage, and view diagnostics."""
        manifest = self.manifest
        summary: dict[str, Any] = {
            "path": str(self.root),
            "machine": self.machine,
            "schema_version": manifest["schema_version"],
            "strict_taxonomy": self.strict_taxonomy,
            "rows": self.rows,
            "segments": len(self.segments),
            "generation": manifest["generation"],
            "appends": len(manifest["appends"]),
            "fingerprint": self.fingerprint,
            "recovered": self.recovered,
            "quarantined": list(self.quarantined),
        }
        if manifest["window_start_us"] is not None:
            summary["window_start"] = us_to_datetime(
                manifest["window_start_us"]
            ).isoformat()
            summary["window_end"] = us_to_datetime(
                self._window_end_us
            ).isoformat()
        if self.watermark is not None and self.as_of_us is None:
            summary["watermark"] = self.watermark.isoformat()
        if self.as_of_us is not None:
            summary["as_of"] = us_to_datetime(self.as_of_us).isoformat()
        summary["analytics"] = self.views().info()
        return summary

    # -- maintenance -------------------------------------------------------

    def compact(self) -> dict[str, Any]:
        """Merge all segments into one (see :mod:`repro.store.compact`)."""
        if self.as_of_us is not None:
            raise StoreError(
                "this handle is a read-only as_of view; open the "
                "store without as_of to compact"
            )
        return compact_mod.compact_store(self)
