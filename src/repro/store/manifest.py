"""Atomic JSON manifest for the segment store.

The manifest is the store's single source of truth: the list of
committed segments, the schema version, the append watermark, and the
window metadata needed to rebuild a :class:`~repro.core.records.FailureLog`.
A segment file that the manifest does not name does not exist as far
as readers are concerned — which is exactly what makes appends
crash-safe:

1. write the new segment file, fsync it;
2. write ``manifest.json.tmp`` with the segment added, fsync it;
3. keep the previous manifest as ``manifest.prev.json``;
4. ``os.replace`` the temp file over ``manifest.json`` (atomic on
   POSIX), then fsync the directory.

A crash between (1) and (4) leaves an orphan segment file that
recovery quarantines; a crash mid-(4) is impossible to observe thanks
to ``os.replace``.  Deliberate corruption (chaos tests, bad disks) is
caught by the embedded checksum, and :func:`load_manifest` falls back
to ``manifest.prev.json`` — losing only the torn tail append, never
silently serving bad rows.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.errors import StoreCorruptError

__all__ = [
    "MANIFEST_NAME",
    "PREV_MANIFEST_NAME",
    "new_manifest",
    "commit_manifest",
    "load_manifest",
    "manifest_fingerprint",
]

MANIFEST_NAME = "manifest.json"
PREV_MANIFEST_NAME = "manifest.prev.json"

_FORMAT = "repro-store"


def new_manifest(
    machine: str,
    schema_version: int,
    strict_taxonomy: bool,
) -> dict[str, Any]:
    """A fresh manifest for an empty store."""
    return {
        "format": _FORMAT,
        "schema_version": schema_version,
        "machine": machine,
        "strict_taxonomy": bool(strict_taxonomy),
        "window_start_us": None,
        "window_end_us": None,
        "window_explicit": False,
        "generation": 0,
        "next_seq": 0,
        "rows": 0,
        "last_record_id": -1,
        "watermark_us": None,
        "appends": [],
        "segments": [],
    }


def _body_checksum(manifest: dict[str, Any]) -> str:
    body = {k: v for k, v in manifest.items() if k != "checksum"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def commit_manifest(root: str | Path, manifest: dict[str, Any]) -> None:
    """Durably replace the store's manifest with ``manifest``.

    The previous committed manifest (if any) survives as
    ``manifest.prev.json`` so single-step corruption of the current
    file is recoverable.
    """
    root = Path(root)
    manifest = dict(manifest)
    manifest["checksum"] = _body_checksum(manifest)
    blob = json.dumps(manifest, sort_keys=True, indent=1).encode("utf-8")

    target = root / MANIFEST_NAME
    tmp = root / (MANIFEST_NAME + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    if target.exists():
        prev = root / PREV_MANIFEST_NAME
        prev_tmp = root / (PREV_MANIFEST_NAME + ".tmp")
        prev_tmp.write_bytes(target.read_bytes())
        os.replace(prev_tmp, prev)
    os.replace(tmp, target)
    # Make the rename itself durable.
    fd = os.open(root, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _parse(path: Path) -> dict[str, Any]:
    try:
        manifest = json.loads(path.read_bytes())
    except OSError as exc:
        raise StoreCorruptError(f"manifest {path} unreadable: {exc}") from exc
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptError(
            f"manifest {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != _FORMAT:
        raise StoreCorruptError(f"manifest {path} is not a store manifest")
    recorded = manifest.get("checksum")
    if recorded != _body_checksum(manifest):
        raise StoreCorruptError(f"manifest {path} checksum mismatch")
    return manifest


def load_manifest(root: str | Path) -> tuple[dict[str, Any], bool]:
    """Load the committed manifest, falling back to the previous one.

    Returns ``(manifest, recovered)`` — ``recovered`` is True when the
    current manifest was unusable and ``manifest.prev.json`` answered
    instead (the caller should re-commit and quarantine orphans).

    Raises:
        StoreCorruptError: When neither manifest parses and verifies,
            or when the directory holds no manifest at all.
    """
    root = Path(root)
    current = root / MANIFEST_NAME
    previous = root / PREV_MANIFEST_NAME
    if not current.exists() and not previous.exists():
        raise StoreCorruptError(f"no store manifest in {root}")
    if current.exists():
        try:
            return _parse(current), False
        except StoreCorruptError:
            if not previous.exists():
                raise
    try:
        return _parse(previous), True
    except StoreCorruptError as exc:
        raise StoreCorruptError(
            f"store manifest in {root} is corrupt and the previous "
            f"manifest could not be used either: {exc}"
        ) from exc


def manifest_fingerprint(manifest: dict[str, Any]) -> str:
    """Stable identity of a committed store state.

    Derived from the manifest body (segment digests, row counts,
    watermark), so two processes opening the same committed state —
    before and after a restart — agree, and any append changes it.
    """
    return "store-" + _body_checksum(manifest)[:32]
