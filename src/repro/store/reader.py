"""Zero-copy reads: segments -> ColumnarView / FailureLog.

The read path materializes the same structures the in-memory layer
builds from records — :class:`~repro.core.columns.ColumnarView` for
the vectorized kernels, :class:`~repro.core.records.FailureLog` for
the record API — but sources the column arrays from the mmap'd
segments.  For a single-segment store the stored columns (node ids,
TTR, category codes, calendar fields, slot CSR) are handed out as
direct read-only views over the mapping: NumPy's base chain keeps the
mmap alive under every derived array (the same pinning guarantee
:mod:`repro.parallel.shm` documents), so no bytes are copied and no
lifetime bugs are possible.  Multi-segment stores concatenate, which
compaction (:mod:`repro.store.compact`) remedies.

Bit-identity: the assembled view reproduces
:func:`repro.core.columns.build_columns` exactly — the global
category table is the sorted union of segment tables (== the sorted
unique categories present), class/GPU code lookups run through the
same ``_category_table`` helper, and hour offsets use the same float
expression ``(Δus / 1e6) / 3600.0`` that ``timedelta.total_seconds``
produces — so a round trip through the store is indistinguishable
from having built the log in memory.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.columns import ColumnarView, _category_table
from repro.core.records import FailureLog, FailureRecord
from repro.store.segments import Segment, us_to_datetime

__all__ = ["assemble_view", "materialize_log", "cut_rows"]


def cut_rows(segment: Segment, as_of_us: int | None) -> int:
    """Rows of a segment visible at ``as_of_us`` (all when None).

    Appends are time-monotone and segments store records in order, so
    an event-time cut is always a row *prefix* — found by bisecting
    the timestamp column.
    """
    if as_of_us is None or segment.max_ts_us <= as_of_us:
        return segment.rows
    if segment.min_ts_us > as_of_us:
        return 0
    return int(
        np.searchsorted(segment.col("ts_us"), as_of_us, side="right")
    )


def _remap(
    codes: np.ndarray,
    local: tuple[str, ...],
    table: tuple[str, ...],
    none_sentinel: bool = False,
) -> np.ndarray:
    """Translate segment-local codes into a global table's codes."""
    if local == table:
        return codes
    lookup = np.empty(
        len(local) + (1 if none_sentinel else 0), dtype=np.int32
    )
    for index, name in enumerate(local):
        lookup[index] = table.index(name)
    if none_sentinel:
        # -1 (no locus) indexes the extra trailing slot.
        lookup[-1] = -1
    return lookup[codes]


def assemble_view(
    segments: Sequence[Segment],
    machine: str,
    window_start_us: int,
    as_of_us: int | None = None,
) -> tuple[ColumnarView, np.ndarray, np.ndarray, tuple[str, ...]]:
    """Build a ColumnarView over the segments' mmap'd columns.

    Returns ``(view, record_ids, locus_codes, locus_table)`` — the
    extra arrays carry what a ColumnarView does not model but
    :func:`materialize_log` needs.
    """
    visible = []
    for segment in segments:
        rows = cut_rows(segment, as_of_us)
        if rows:
            visible.append((segment, rows))

    names: set[str] = set()
    loci: set[str] = set()
    for segment, _ in visible:
        names.update(segment.category_table)
        loci.update(segment.locus_table)
    table, class_by_code, gpu_by_code, complete = _category_table(
        machine, sorted(names)
    )
    locus_table = tuple(sorted(loci))

    def prefix(segment: Segment, name: str, rows: int) -> np.ndarray:
        array = segment.col(name)
        return array if rows == segment.rows else array[:rows]

    if len(visible) == 1:
        segment, rows = visible[0]
        ts_us = prefix(segment, "ts_us", rows)
        record_ids = prefix(segment, "record_id", rows)
        node_ids = prefix(segment, "node_id", rows)
        ttr = prefix(segment, "ttr_hours", rows)
        codes = _remap(
            prefix(segment, "category", rows),
            segment.category_table,
            table,
        )
        locus_codes = _remap(
            prefix(segment, "locus", rows),
            segment.locus_table,
            locus_table,
            none_sentinel=True,
        )
        months = prefix(segment, "month", rows)
        weekdays = prefix(segment, "weekday", rows)
        hours = prefix(segment, "hour", rows)
        offsets = segment.col("slot_offsets")[: rows + 1]
        slot_values = segment.col("slot_values")[: int(offsets[-1])]
    elif visible:
        parts: dict[str, list[np.ndarray]] = {
            key: []
            for key in (
                "ts_us", "record_id", "node_id", "ttr_hours",
                "category", "locus", "month", "weekday", "hour",
                "slot_values",
            )
        }
        offset_parts: list[np.ndarray] = []
        base = 0
        for segment, rows in visible:
            for key in (
                "ts_us", "record_id", "node_id", "ttr_hours",
                "month", "weekday", "hour",
            ):
                parts[key].append(prefix(segment, key, rows))
            parts["category"].append(
                _remap(
                    prefix(segment, "category", rows),
                    segment.category_table,
                    table,
                )
            )
            parts["locus"].append(
                _remap(
                    prefix(segment, "locus", rows),
                    segment.locus_table,
                    locus_table,
                    none_sentinel=True,
                )
            )
            seg_offsets = segment.col("slot_offsets")[: rows + 1]
            slots = int(seg_offsets[-1])
            parts["slot_values"].append(
                segment.col("slot_values")[:slots]
            )
            offset_parts.append(seg_offsets[:-1] + base)
            base += slots
        offset_parts.append(np.asarray([base], dtype=np.int64))
        ts_us = np.concatenate(parts["ts_us"])
        record_ids = np.concatenate(parts["record_id"])
        node_ids = np.concatenate(parts["node_id"])
        ttr = np.concatenate(parts["ttr_hours"])
        codes = np.concatenate(parts["category"])
        locus_codes = np.concatenate(parts["locus"])
        months = np.concatenate(parts["month"])
        weekdays = np.concatenate(parts["weekday"])
        hours = np.concatenate(parts["hour"])
        slot_values = np.concatenate(parts["slot_values"])
        offsets = np.concatenate(offset_parts)
    else:
        ts_us = record_ids = node_ids = np.empty(0, dtype=np.int64)
        ttr = np.empty(0, dtype=np.float64)
        codes = locus_codes = np.empty(0, dtype=np.int32)
        months = weekdays = hours = np.empty(0, dtype=np.int8)
        slot_values = np.empty(0, dtype=np.int32)
        offsets = np.zeros(1, dtype=np.int64)

    view = ColumnarView(
        machine=machine,
        category_names=table,
        taxonomy_complete=complete,
        ts_hours=(ts_us - window_start_us) / 1e6 / 3600.0,
        node_ids=node_ids,
        ttr_hours=ttr,
        category_codes=codes,
        class_codes=class_by_code[codes],
        gpu_counts=np.diff(offsets).astype(np.int16),
        gpu_category=gpu_by_code[codes],
        months=months,
        weekdays=weekdays,
        hours_of_day=hours,
        slot_values=slot_values,
        slot_offsets=offsets,
    )
    return view, record_ids, locus_codes, locus_table


def materialize_log(
    segments: Sequence[Segment],
    machine: str,
    window_start_us: int,
    window_end_us: int,
    strict_taxonomy: bool,
    as_of_us: int | None = None,
) -> FailureLog:
    """Materialize a FailureLog (records + injected columnar view).

    Records are rebuilt through the validating ``FailureRecord``
    constructor; log-level invariants (chronological order, unique
    ids, in-window timestamps) are guaranteed by the store's append
    rules and checksums, so :meth:`FailureLog._from_trusted` applies —
    the injected view means kernels run on the mmap'd arrays without
    a rebuild.
    """
    view, record_ids, locus_codes, locus_table = assemble_view(
        segments, machine, window_start_us, as_of_us
    )
    ts_us = None
    records = []
    offsets = view.slot_offsets
    slot_values = view.slot_values
    names = view.category_names
    for segment in segments:
        rows = cut_rows(segment, as_of_us)
        if rows:
            part = segment.col("ts_us")
            part = part if rows == segment.rows else part[:rows]
            ts_us = part if ts_us is None else np.concatenate(
                [ts_us, part]
            )
    if ts_us is None:
        ts_us = np.empty(0, dtype=np.int64)
    ids = record_ids.tolist()
    stamps = ts_us.tolist()
    nodes = view.node_ids.tolist()
    ttrs = view.ttr_hours.tolist()
    codes = view.category_codes.tolist()
    loci = locus_codes.tolist()
    bounds = offsets.tolist()
    slots = slot_values.tolist()
    for index in range(len(ids)):
        start, end = bounds[index], bounds[index + 1]
        locus = loci[index]
        records.append(
            FailureRecord(
                record_id=ids[index],
                timestamp=us_to_datetime(stamps[index]),
                node_id=nodes[index],
                category=names[codes[index]],
                ttr_hours=ttrs[index],
                gpus_involved=tuple(slots[start:end]),
                root_locus=locus_table[locus] if locus >= 0 else None,
            )
        )
    return FailureLog._from_trusted(
        machine=machine,
        records=tuple(records),
        window_start=us_to_datetime(window_start_us),
        window_end=us_to_datetime(window_end_us),
        strict_taxonomy=strict_taxonomy,
        columns=view,
    )
