"""Segment compaction: many append-sized segments -> one.

Each append freezes its own segment, so a long-lived store
accumulates files and the read path pays a concatenation per column.
Compaction merges every segment into a single generation-stamped one
and commits a manifest that references only it — the data, the
analytics state, and the store fingerprint's *meaning* are unchanged
(the fingerprint value changes because the lineage did, which is
correct: caches key on committed state, and compaction is a commit).

Crash safety mirrors appends: the merged segment is written and
fsync'd first, the manifest swap is atomic, and the superseded files
are deleted only after the commit — a crash in between leaves them as
orphans for open-time quarantine, never a half-merged store.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.store.manifest import commit_manifest, manifest_fingerprint
from repro.store.reader import _remap
from repro.store.segments import COLUMN_DTYPES, open_segment, write_segment

__all__ = ["compact_store"]


def compact_store(store) -> dict[str, Any]:
    """Merge all of ``store``'s segments into one; returns a summary."""
    manifest = store.manifest
    segments = store.segments
    if len(segments) <= 1:
        return {
            "compacted": False,
            "segments": len(segments),
            "reason": "store already has at most one segment",
        }

    category_table = tuple(
        sorted(set().union(*(s.category_table for s in segments)))
    )
    locus_table = tuple(
        sorted(set().union(*(s.locus_table for s in segments)))
    )
    merged: dict[str, list[np.ndarray]] = {
        name: [] for name in COLUMN_DTYPES if name != "slot_offsets"
    }
    offset_base = 0
    offset_parts: list[np.ndarray] = []
    for segment in segments:
        for name in COLUMN_DTYPES:
            if name in ("slot_offsets", "category", "locus"):
                continue
            merged[name].append(segment.col(name))
        merged["category"].append(
            _remap(
                segment.col("category"), segment.category_table,
                category_table,
            )
        )
        merged["locus"].append(
            _remap(
                segment.col("locus"), segment.locus_table, locus_table,
                none_sentinel=True,
            )
        )
        offsets = segment.col("slot_offsets")
        offset_parts.append(offsets[:-1] + offset_base)
        offset_base += int(offsets[-1])
    offset_parts.append(np.asarray([offset_base], dtype=np.int64))
    columns = {
        name: np.concatenate(parts) for name, parts in merged.items()
    }
    columns["slot_offsets"] = np.concatenate(offset_parts)

    generation = int(manifest["generation"]) + 1
    seq = int(manifest["next_seq"])
    name = f"seg-{seq:06d}-g{generation:03d}.rps"
    entry = write_segment(
        store.root / name, columns, category_table, locus_table
    )
    entry["generation"] = generation
    entry["seq"] = seq

    updated = dict(manifest)
    updated["generation"] = generation
    updated["next_seq"] = seq + 1
    updated["segments"] = [entry]
    # One snapshot survives: the appends history is collapsed into the
    # merged segment (a torn-tail rollback can only return to here).
    updated["appends"] = [
        {
            "seq": seq,
            "file": name,
            "rows": int(manifest["rows"]),
            "rows_total": int(manifest["rows"]),
            "last_record_id": int(manifest["last_record_id"]),
            "watermark_us": manifest["watermark_us"],
            "window_start_us": manifest["window_start_us"],
            "window_end_us": manifest["window_end_us"],
        }
    ]
    updated["compactions"] = list(manifest.get("compactions", [])) + [
        {
            "generation": generation,
            "merged": [s.path.name for s in segments],
            "file": name,
        }
    ]
    commit_manifest(store.root, updated)

    # The incremental views are a function of the record sequence,
    # which compaction preserves — carry them forward under the new
    # token instead of rebuilding.
    views = store.views()
    store.manifest = updated
    views.save(store.root, manifest_fingerprint(updated))
    old_files = [s.path for s in segments]
    store.segments = [open_segment(store.root / name, verify=False)]
    store._log = None
    for path in old_files:
        path.unlink(missing_ok=True)
    return {
        "compacted": True,
        "segments": len(old_files),
        "segment": name,
        "generation": generation,
        "rows": int(updated["rows"]),
        "fingerprint": store.fingerprint,
    }
