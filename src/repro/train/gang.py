"""Gang-scheduled synchronous training job on the simulated cluster.

:class:`GangTrainingRun` models one LLM pre-training job that owns N
nodes for the whole run.  Steps are synchronous, so a failure on *any*
member node interrupts the whole gang: the job is torn down, waits out
a detection delay, re-queues for capacity, pays the checkpoint restart
cost, and resumes from its last committed checkpoint.  Work is
committed only at checkpoint boundaries (the existing
:class:`~repro.sim.checkpoint.CheckpointPolicy` economics), which makes
the lost-work bound exact: an interruption can never destroy more than
one checkpoint interval of work plus the in-flight step.

The run publishes the same engine-bus job topics as the batch
scheduler (``job_submit`` / ``job_start`` / ``job_killed`` /
``job_complete``), so trace recording, bit-exact replay, and the
golden corpus work on training runs with no recorder changes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.cluster import Cluster
from repro.sim.engine import SimulationEngine
from repro.train.config import TrainingJobConfig

__all__ = ["TrainStats", "GangTrainingRun"]

#: Synthetic job id of the single gang job on the engine bus.
GANG_JOB_ID = 0

#: Float slack for the work/cycle arithmetic (hours).
_TOL = 1e-9


@dataclass(frozen=True)
class TrainStats:
    """Outcome of one gang-scheduled training run.

    All work quantities are in *job wall-clock hours* (multiply by the
    gang size for node-hours).  ``lost_work_by_category`` attributes
    every lost-work hour to the failure category of the interrupting
    failure — the attribution table behind the ETTF analytics.
    """

    job_nodes: int
    step_time_hours: float
    interrupts: int
    restarts: int
    steps_committed: int
    work_committed_hours: float
    lost_work_hours: float
    lost_work_by_category: dict[str, float]
    stall_hours: float
    restart_overhead_hours: float
    checkpoint_overhead_hours: float
    blast_radius_node_hours: float
    elapsed_hours: float
    completed: bool
    completed_at_hours: float | None = None

    @property
    def ettr(self) -> float:
        """Effective-training-time ratio: committed work / wall clock.

        The ETTR/goodput framing of Meta's fleet study — 1.0 means
        every wall-clock hour became committed training progress.
        """
        if self.elapsed_hours <= 0:
            return 0.0
        return self.work_committed_hours / self.elapsed_hours

    @property
    def interrupts_per_day(self) -> float:
        """Interruptions per 24 simulated hours."""
        if self.elapsed_hours <= 0:
            return 0.0
        return self.interrupts * 24.0 / self.elapsed_hours

    @property
    def mean_time_between_interrupts_hours(self) -> float:
        """Observed job MTBF (elapsed / interrupts; inf when clean)."""
        if self.interrupts == 0:
            return math.inf
        return self.elapsed_hours / self.interrupts

    @property
    def goodput_fraction(self) -> float:
        """Alias for :attr:`ettr` (the scheduler-stat name)."""
        return self.ettr


class GangTrainingRun:
    """One synchronous training job bound to a simulated cluster.

    Args:
        engine: The simulation engine (shared with injector/repair).
        cluster: The simulated cluster to claim nodes from.
        config: Gang shape and step/detection timing.
        policy: Checkpoint economics; required — a synchronous gang
            without checkpointing restarts from zero on every failure,
            which is never how these jobs run in production.

    Raises:
        SimulationError: When the gang is larger than the cluster.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: Cluster,
        config: TrainingJobConfig,
        policy: CheckpointPolicy,
    ) -> None:
        if config.num_nodes > cluster.num_nodes:
            raise SimulationError(
                f"gang of {config.num_nodes} nodes exceeds the cluster's "
                f"{cluster.num_nodes}"
            )
        self._engine = engine
        self._cluster = cluster
        self._config = config
        self._policy = policy
        # One "cycle" = the steps filling one checkpoint interval plus
        # the checkpoint itself.  Work commits at cycle boundaries.
        self._steps_per_cycle = max(
            1, math.ceil(policy.interval_hours / config.step_time_hours
                         - _TOL)
        )
        self._cycle_work = self._steps_per_cycle * config.step_time_hours
        self._cycle_wall = self._cycle_work + policy.cost_hours

        self._members: frozenset[int] = frozenset()
        self._epoch = 0
        self._started_ever = False
        self._done = False
        self._completed_at: float | None = None
        self._segment_start = 0.0
        self._pending_since: float | None = None
        self._eligible_at = 0.0

        self._interrupts = 0
        self._restarts = 0
        self._steps_committed = 0
        self._work_committed = 0.0
        self._lost_work = 0.0
        self._lost_by_category: dict[str, float] = {}
        self._stall_hours = 0.0
        self._restart_overhead = 0.0
        self._checkpoint_overhead = 0.0
        self._blast_radius_node_hours = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Submit the gang job and try to claim its nodes."""
        duration = self._config.total_work_hours
        if self._engine.has_subscribers("job_submit"):
            self._engine.publish(
                "job_submit",
                job_id=GANG_JOB_ID,
                num_nodes=self._config.num_nodes,
                duration_hours=duration if duration is not None else 0.0,
                time_hours=self._engine.now,
            )
        self._pending_since = self._engine.now
        self._eligible_at = self._engine.now
        self._try_start()

    @property
    def running(self) -> bool:
        """True while the gang holds its nodes."""
        return bool(self._members)

    @property
    def members(self) -> frozenset[int]:
        """Node ids the gang currently occupies."""
        return self._members

    # -- failure / repair hooks --------------------------------------------

    def handle_node_failure(self, node_id: int, category: str) -> None:
        """React to a node failure: interrupt the gang if it's a member."""
        if self._done or node_id not in self._members:
            return
        now = self._engine.now
        self._epoch += 1  # invalidate any scheduled completion
        self._interrupts += 1
        self._members = frozenset()
        elapsed = now - self._segment_start
        lost = 0.0
        if elapsed > _TOL:
            # Commit the checkpoint cycles this segment finished, then
            # charge whatever ran since the last checkpoint as lost.
            cycles = int((elapsed + _TOL) // self._cycle_wall)
            self._commit_cycles(cycles)
            residual = elapsed - cycles * self._cycle_wall
            lost = min(max(0.0, residual), self._cycle_work)
        if self._capped_remaining() <= _TOL:
            # The failure landed after the final useful checkpoint;
            # everything is already committed — finish, don't restart.
            lost = 0.0
            if self._engine.has_subscribers("job_killed"):
                self._engine.publish(
                    "job_killed",
                    job_id=GANG_JOB_ID,
                    node_id=node_id,
                    time_hours=now,
                )
            self._finish(now)
            return
        self._lost_work += lost
        if lost > 0.0:
            self._lost_by_category[category] = (
                self._lost_by_category.get(category, 0.0) + lost
            )
        if self._engine.has_subscribers("job_killed"):
            self._engine.publish(
                "job_killed",
                job_id=GANG_JOB_ID,
                node_id=node_id,
                time_hours=now,
            )
        self._pending_since = now
        self._eligible_at = now + self._config.detection_delay_hours
        delay = self._config.detection_delay_hours
        if delay > 0:
            self._engine.schedule_in(delay, self._try_start)
        else:
            self._try_start()

    def handle_node_repair(self, node_id: int) -> None:
        """React to capacity returning: retry the restart queue."""
        del node_id  # capacity change only; _try_start re-reads state
        self._try_start()

    # -- internals ---------------------------------------------------------

    def _capped_remaining(self) -> float:
        if self._config.total_work_hours is None:
            return math.inf
        return self._config.total_work_hours - self._work_committed

    def _commit_cycles(self, cycles: int) -> None:
        if cycles <= 0:
            return
        work = cycles * self._cycle_work
        remaining = self._capped_remaining()
        if math.isfinite(remaining):
            work = min(work, remaining)
        self._work_committed += work
        self._steps_committed += math.ceil(
            work / self._config.step_time_hours - _TOL
        )
        self._checkpoint_overhead += cycles * self._policy.cost_hours

    def _try_start(self) -> None:
        if self._done or self._members:
            return
        now = self._engine.now
        if now + _TOL < self._eligible_at:
            return  # teardown/detection still in progress
        free = self._cluster.available_nodes()
        if len(free) < self._config.num_nodes:
            return  # stay queued; the next repair retries
        nodes = tuple(free[: self._config.num_nodes])
        self._members = frozenset(nodes)
        if self._pending_since is not None:
            stall = now - self._pending_since
            self._stall_hours += stall
            self._pending_since = None
        else:  # pragma: no cover - _try_start only runs while pending
            stall = 0.0
        restart_cost = (
            self._policy.restart_cost_hours if self._started_ever else 0.0
        )
        if self._started_ever:
            self._restarts += 1
            self._restart_overhead += restart_cost
        # Blast radius: every interruption idles the *whole* gang for
        # the stall plus the restore, not just the failed node.
        self._blast_radius_node_hours += (
            self._config.num_nodes * (stall + restart_cost)
        )
        self._started_ever = True
        self._segment_start = now + restart_cost
        if self._engine.has_subscribers("job_start"):
            self._engine.publish(
                "job_start",
                job_id=GANG_JOB_ID,
                nodes=list(nodes),
                time_hours=now,
            )
        remaining = self._capped_remaining()
        if math.isfinite(remaining):
            epoch = self._epoch
            self._engine.schedule_at(
                self._segment_start + self._wall_for(remaining),
                lambda e=epoch: self._complete(e),
            )

    def _wall_for(self, work: float) -> float:
        """Wall-clock time to run ``work`` hours from a fresh restore."""
        full = int((work + _TOL) // self._cycle_work)
        tail = work - full * self._cycle_work
        if tail <= _TOL:
            # The last cycle needs no trailing checkpoint: completion
            # itself commits it.
            return max(0.0, full * self._cycle_wall - self._policy.cost_hours)
        tail_steps = math.ceil(tail / self._config.step_time_hours - _TOL)
        return (full * self._cycle_wall
                + tail_steps * self._config.step_time_hours)

    def _complete(self, epoch: int) -> None:
        if self._done or epoch != self._epoch or not self._members:
            return  # stale completion: the gang was interrupted
        work = self._capped_remaining()
        full = int((work + _TOL) // self._cycle_work)
        tail = work - full * self._cycle_work
        if tail <= _TOL:
            checkpoints = max(0, full - 1)
            steps = full * self._steps_per_cycle
        else:
            checkpoints = full
            steps = (full * self._steps_per_cycle
                     + math.ceil(tail / self._config.step_time_hours - _TOL))
        self._work_committed += work
        self._steps_committed += steps
        self._checkpoint_overhead += checkpoints * self._policy.cost_hours
        self._finish(self._engine.now)

    def _finish(self, now: float) -> None:
        self._members = frozenset()
        self._done = True
        self._completed_at = now
        if self._engine.has_subscribers("job_complete"):
            self._engine.publish(
                "job_complete",
                job_id=GANG_JOB_ID,
                time_hours=now,
            )

    # -- reporting ---------------------------------------------------------

    def finalize(self, horizon_hours: float) -> TrainStats:
        """Fold the end-of-horizon state and build the stats report.

        A still-running segment commits its finished checkpoint cycles
        (in-flight work past the last checkpoint is neither committed
        nor lost — the job would resume it after the horizon); a
        still-queued gang accrues stall and blast radius up to the
        horizon.
        """
        if not self._done:
            if self._members:
                elapsed = horizon_hours - self._segment_start
                if elapsed > _TOL:
                    cycles = int((elapsed + _TOL) // self._cycle_wall)
                    self._commit_cycles(cycles)
            elif self._pending_since is not None:
                stall = max(0.0, horizon_hours - self._pending_since)
                self._stall_hours += stall
                self._blast_radius_node_hours += (
                    self._config.num_nodes * stall
                )
                self._pending_since = None
        # float() keeps the canonical-JSON encoding of the stat
        # independent of whether the caller passed an int horizon.
        elapsed_total = float(
            self._completed_at if self._completed_at is not None
            else horizon_hours
        )
        return TrainStats(
            job_nodes=self._config.num_nodes,
            step_time_hours=self._config.step_time_hours,
            interrupts=self._interrupts,
            restarts=self._restarts,
            steps_committed=self._steps_committed,
            work_committed_hours=self._work_committed,
            lost_work_hours=self._lost_work,
            lost_work_by_category=dict(sorted(
                self._lost_by_category.items()
            )),
            stall_hours=self._stall_hours,
            restart_overhead_hours=self._restart_overhead,
            checkpoint_overhead_hours=self._checkpoint_overhead,
            blast_radius_node_hours=self._blast_radius_node_hours,
            elapsed_hours=elapsed_total,
            completed=self._done,
            completed_at_hours=self._completed_at,
        )
