"""Configuration of a gang-scheduled LLM pre-training job.

One training job owns a fixed gang of N nodes for the whole run.
Steps are synchronous: every participating node must be up for the
job to make progress, so *any* member failure stalls the entire gang —
the blast-radius regime Meta's fleet study (arXiv:2410.21680) and the
504-GPU operations report (arXiv:2605.09370) describe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.errors import ValidationError

__all__ = ["TrainingJobConfig"]


@dataclass(frozen=True)
class TrainingJobConfig:
    """Parameters of one gang-scheduled synchronous training job.

    Attributes:
        num_nodes: Gang size — nodes the job must hold simultaneously.
        step_time_hours: Wall-clock time of one synchronous training
            step (the in-flight work quantum lost on interruption).
        detection_delay_hours: Time between a member-node failure and
            the moment the job is back in the restart queue (failure
            detection + teardown, before any waiting for capacity).
        total_work_hours: Useful work needed to finish the run; None
            trains continuously for the whole horizon.
    """

    num_nodes: int = 64
    step_time_hours: float = 0.01
    detection_delay_hours: float = 0.05
    total_work_hours: float | None = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValidationError(
                f"num_nodes must be >= 1, got {self.num_nodes}"
            )
        for name in ("step_time_hours", "detection_delay_hours"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ValidationError(f"{name} must be finite, got {value!r}")
        if self.step_time_hours <= 0:
            raise ValidationError(
                f"step_time_hours must be positive, got "
                f"{self.step_time_hours}"
            )
        if self.detection_delay_hours < 0:
            raise ValidationError(
                f"detection_delay_hours must be >= 0, got "
                f"{self.detection_delay_hours}"
            )
        if self.total_work_hours is not None:
            if (not math.isfinite(self.total_work_hours)
                    or self.total_work_hours <= 0):
                raise ValidationError(
                    f"total_work_hours must be positive and finite, got "
                    f"{self.total_work_hours!r}"
                )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view (trace headers, serve payloads)."""
        return {
            "num_nodes": self.num_nodes,
            "step_time_hours": self.step_time_hours,
            "detection_delay_hours": self.detection_delay_hours,
            "total_work_hours": self.total_work_hours,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TrainingJobConfig":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValidationError: On missing keys or invalid values.
        """
        try:
            return cls(
                num_nodes=int(data["num_nodes"]),
                step_time_hours=float(data["step_time_hours"]),
                detection_delay_hours=float(data["detection_delay_hours"]),
                total_work_hours=(
                    None if data["total_work_hours"] is None
                    else float(data["total_work_hours"])
                ),
            )
        except KeyError as exc:
            raise ValidationError(
                f"training config is missing key {exc.args[0]!r}"
            ) from None
