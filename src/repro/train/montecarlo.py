"""Monte-Carlo ensembles of gang-training runs.

Mirrors :mod:`repro.sim.montecarlo` for the training vertical: R
independently-seeded :class:`~repro.sim.simulator.ClusterSimulator`
runs with a gang job, folded into constant-memory ensemble statistics
over the ETTF metrics.  The same determinism contract holds — seeds
from :func:`~repro.sim.montecarlo.spawn_seeds` (prefix-stable),
dispatch through the fault-tolerant :func:`repro.parallel.sweep_iter`
(input-ordered outcomes), and a sequential fold — so serial and
parallel ensembles are bit-identical for a fixed master seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError, ValidationError
from repro.parallel import SweepOutcome, sweep_iter
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.montecarlo import MetricStats, _MetricFold, spawn_seeds
from repro.sim.simulator import ClusterSimulator, SimulationReport
from repro.train.config import TrainingJobConfig

__all__ = [
    "TRAIN_METRICS",
    "TrainEnsembleReport",
    "run_train_replications",
    "train_ensemble_payload",
]

#: Per-replication training metrics summarised by the ensemble.
#: ``availability`` comes from the cluster; everything else from the
#: run's :class:`~repro.train.gang.TrainStats`.
TRAIN_METRICS = (
    "ettr",
    "interrupts",
    "restarts",
    "interrupts_per_day",
    "work_committed_hours",
    "lost_work_hours",
    "stall_hours",
    "restart_overhead_hours",
    "checkpoint_overhead_hours",
    "blast_radius_node_hours",
    "availability",
)


def _metric_value(report: SimulationReport, name: str) -> float:
    if name == "availability":
        return float(report.availability)
    return float(getattr(report.train, name))


@dataclass(frozen=True)
class TrainEnsembleReport:
    """Summary of a training-run replication ensemble."""

    machine: str
    horizon_hours: float
    gang_nodes: int
    replications: int
    failed_replications: int
    ci: float
    metrics: dict[str, MetricStats]
    errors: tuple[tuple[int, str], ...] = ()

    @property
    def ettr(self) -> MetricStats:
        """Shortcut for the headline metric."""
        return self.metrics["ettr"]

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"{self.machine}: gang of {self.gang_nodes} nodes, "
            f"{self.replications} replications x "
            f"{self.horizon_hours:g} h "
            f"({int(self.ci * 100)}% percentile intervals)"
        ]
        if self.failed_replications:
            lines.append(
                f"  {self.failed_replications} replication(s) failed"
            )
        lines.extend(f"  {self.metrics[name]}" for name in TRAIN_METRICS)
        return "\n".join(lines)


@dataclass(frozen=True)
class _TrainTask:
    """Picklable spec of one training replication."""

    machine: str
    seed: int
    horizon_hours: float
    intensity: float
    presample: bool
    gang_nodes: int
    step_time_hours: float
    detection_delay_hours: float
    total_work_hours: float | None
    checkpoint_interval_hours: float
    checkpoint_cost_hours: float
    restart_cost_hours: float


def _run_train_replication(task: _TrainTask) -> SimulationReport:
    """Worker entry point: one seeded training run, report only."""
    simulator = ClusterSimulator(
        task.machine,
        seed=task.seed,
        intensity=task.intensity,
        presample=task.presample,
        keep_injected_log=False,
        checkpoint_policy=CheckpointPolicy(
            interval_hours=task.checkpoint_interval_hours,
            cost_hours=task.checkpoint_cost_hours,
            restart_cost_hours=task.restart_cost_hours,
        ),
        train=TrainingJobConfig(
            num_nodes=task.gang_nodes,
            step_time_hours=task.step_time_hours,
            detection_delay_hours=task.detection_delay_hours,
            total_work_hours=task.total_work_hours,
        ),
    )
    return simulator.run(task.horizon_hours)


def run_train_replications(
    machine: str,
    replications: int,
    horizon_hours: float,
    checkpoint_policy: CheckpointPolicy,
    train: TrainingJobConfig | None = None,
    seed: int = 0,
    intensity: float = 1.0,
    ci: float = 0.95,
    max_workers: int | None = None,
    presample: bool = True,
    retries: int = 0,
) -> TrainEnsembleReport:
    """Run a Monte-Carlo ensemble of gang-training runs.

    Args:
        machine: Any registered machine name.
        replications: Independently-seeded runs (>= 1).
        horizon_hours: Simulated horizon of each run.
        checkpoint_policy: Checkpoint economics shared by every run.
        train: Gang shape; defaults to :class:`TrainingJobConfig`'s
            64-node gang.
        seed: Master seed (prefix-stable per-replication spawning).
        intensity: Failure-rate multiplier.
        ci: Confidence level of the percentile intervals, in (0, 1).
        max_workers: ``None``/``1`` serial; ``N > 1`` fans out over the
            warm worker pool.  Bit-identical at any worker count.
        presample: Injector draw strategy.
        retries: Per-replication retry budget before recording failure.

    Returns:
        A :class:`TrainEnsembleReport`; failed replications are skipped
        by the fold and attributed in ``errors``.

    Raises:
        ValidationError: On invalid ensemble parameters.
        SimulationError: If every replication failed.
    """
    if replications < 1:
        raise ValidationError(
            f"replications must be >= 1, got {replications}"
        )
    if not 0.0 < ci < 1.0:
        raise ValidationError(f"ci must lie in (0, 1), got {ci}")
    if train is None:
        train = TrainingJobConfig()
    tasks = [
        _TrainTask(
            machine=machine,
            seed=replication_seed,
            horizon_hours=horizon_hours,
            intensity=intensity,
            presample=presample,
            gang_nodes=train.num_nodes,
            step_time_hours=train.step_time_hours,
            detection_delay_hours=train.detection_delay_hours,
            total_work_hours=train.total_work_hours,
            checkpoint_interval_hours=checkpoint_policy.interval_hours,
            checkpoint_cost_hours=checkpoint_policy.cost_hours,
            restart_cost_hours=checkpoint_policy.restart_cost_hours,
        )
        for replication_seed in spawn_seeds(seed, replications)
    ]
    folds = {name: _MetricFold(name) for name in TRAIN_METRICS}
    errors: list[tuple[int, str]] = []
    outcome: SweepOutcome
    for outcome in sweep_iter(
        _run_train_replication,
        tasks,
        processes=max_workers,
        retries=retries,
    ):
        if not outcome.ok:
            errors.append(
                (
                    outcome.index,
                    f"{type(outcome.error).__name__}: {outcome.error}",
                )
            )
            continue
        report = outcome.result
        for name, fold in folds.items():
            fold.push(_metric_value(report, name))
    completed = replications - len(errors)
    if completed == 0:
        raise SimulationError(
            f"all {replications} training replications failed; first "
            f"error: {errors[0][1]}"
        )
    return TrainEnsembleReport(
        machine=machine,
        horizon_hours=horizon_hours,
        gang_nodes=train.num_nodes,
        replications=completed,
        failed_replications=len(errors),
        ci=ci,
        metrics={name: fold.stats(ci) for name, fold in folds.items()},
        errors=tuple(errors),
    )


def train_ensemble_payload(
    ensemble: TrainEnsembleReport,
) -> dict[str, Any]:
    """JSON-friendly view of a training ensemble (CLI/serve)."""
    return {
        "machine": ensemble.machine,
        "horizon_hours": ensemble.horizon_hours,
        "gang_nodes": ensemble.gang_nodes,
        "replications": ensemble.replications,
        "failed_replications": ensemble.failed_replications,
        "ci": ensemble.ci,
        "metrics": {
            name: {
                "mean": stats.mean,
                "std": stats.std,
                "stderr": stats.stderr,
                "ci_lower": stats.ci_lower,
                "ci_upper": stats.ci_upper,
            }
            for name, stats in ensemble.metrics.items()
        },
        "errors": [list(item) for item in ensemble.errors],
    }
