"""LLM training-fleet reliability model.

``repro.train`` is the training-workload vertical on top of
:mod:`repro.sim`: gang-scheduled synchronous jobs whose blast radius is
the whole gang (:mod:`repro.train.gang`), Monte-Carlo ensembles of
their ETTF/goodput outcomes (:mod:`repro.train.montecarlo`), log-driven
ETTF analytics for serving (:mod:`repro.train.metrics`), and the
cross-machine comparative study generalizing the source paper's
performance-error proportionality to modern GPU fleets
(:mod:`repro.train.compare`).
"""

from repro.train.compare import (
    TrainComparison,
    TrainComparisonRow,
    compare_training,
)
from repro.train.config import TrainingJobConfig
from repro.train.gang import GangTrainingRun, TrainStats
from repro.train.metrics import ettf_payload
from repro.train.montecarlo import (
    TRAIN_METRICS,
    TrainEnsembleReport,
    run_train_replications,
    train_ensemble_payload,
)

__all__ = [
    "GangTrainingRun",
    "TRAIN_METRICS",
    "TrainComparison",
    "TrainComparisonRow",
    "TrainEnsembleReport",
    "TrainStats",
    "TrainingJobConfig",
    "compare_training",
    "ettf_payload",
    "run_train_replications",
    "train_ensemble_payload",
]
