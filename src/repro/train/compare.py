"""Cross-machine training-reliability study (synth -> sim -> analyze).

Generalizes the source paper's *performance-error-proportionality*
argument (Rpeak x MTBF: how many FLOPs a machine banks per failure-free
period) to gang-scheduled training: for each machine, a calibrated
synthetic log provides the MTBF/MTTR, a Young/Daly checkpoint policy
is derived from the *gang's* MTBF, a Monte-Carlo ensemble of gang
training runs measures ETTR and interruption rates, and the row's
``goodput_pflops`` / ``pflop_hours_between_interrupts`` columns state
the modern form of the paper's claim — Tsubame-3 beats Tsubame-2 on
both, and the H100 fleet extends the same direction at a far larger
failure rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.metrics import mtbf, mttr
from repro.errors import ValidationError
from repro.machines.specs import get_machine
from repro.sim.checkpoint import young_daly_policy
from repro.synth.generator import generate_log
from repro.train.config import TrainingJobConfig
from repro.train.montecarlo import (
    TrainEnsembleReport,
    run_train_replications,
)

__all__ = ["TrainComparisonRow", "TrainComparison", "compare_training"]


@dataclass(frozen=True)
class TrainComparisonRow:
    """One machine's line of the cross-machine training study."""

    machine: str
    fleet_nodes: int
    gang_nodes: int
    rpeak_pflops: float
    system_mtbf_hours: float
    system_mttr_hours: float
    job_mtbf_hours: float
    checkpoint_interval_hours: float
    ettr_mean: float
    ettr_ci_lower: float
    ettr_ci_upper: float
    interrupts_per_day_mean: float
    lost_work_hours_per_day: float
    goodput_pflops: float
    pflop_hours_between_interrupts: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view."""
        return {
            "machine": self.machine,
            "fleet_nodes": self.fleet_nodes,
            "gang_nodes": self.gang_nodes,
            "rpeak_pflops": self.rpeak_pflops,
            "system_mtbf_hours": self.system_mtbf_hours,
            "system_mttr_hours": self.system_mttr_hours,
            "job_mtbf_hours": self.job_mtbf_hours,
            "checkpoint_interval_hours": self.checkpoint_interval_hours,
            "ettr_mean": self.ettr_mean,
            "ettr_ci_lower": self.ettr_ci_lower,
            "ettr_ci_upper": self.ettr_ci_upper,
            "interrupts_per_day_mean": self.interrupts_per_day_mean,
            "lost_work_hours_per_day": self.lost_work_hours_per_day,
            "goodput_pflops": self.goodput_pflops,
            "pflop_hours_between_interrupts": (
                self.pflop_hours_between_interrupts
            ),
        }


@dataclass(frozen=True)
class TrainComparison:
    """The full cross-machine study."""

    gang_nodes: int
    horizon_hours: float
    replications: int
    rows: tuple[TrainComparisonRow, ...]

    def row_for(self, machine: str) -> TrainComparisonRow:
        """Look up one machine's row.

        Raises:
            ValidationError: When the machine is not in the study.
        """
        for row in self.rows:
            if row.machine == machine:
                return row
        raise ValidationError(f"no comparison row for {machine!r}")

    def proportionality_ratio(
        self, newer: str, older: str
    ) -> dict[str, float]:
        """Newer/older ratios of the generalized proportionality
        columns (> 1.0 everywhere reproduces the paper's direction)."""
        new, old = self.row_for(newer), self.row_for(older)
        return {
            "goodput_pflops": new.goodput_pflops / old.goodput_pflops,
            "pflop_hours_between_interrupts": (
                new.pflop_hours_between_interrupts
                / old.pflop_hours_between_interrupts
            ),
        }

    def table(self) -> str:
        """Render the study as an aligned text table."""
        headers = (
            "machine", "fleet", "gang", "rpeak_pf", "mtbf_h",
            "job_mtbf_h", "ettr", "int/day", "lost_h/day",
            "goodput_pf", "pf_h/interrupt",
        )
        body = [
            (
                row.machine,
                str(row.fleet_nodes),
                str(row.gang_nodes),
                f"{row.rpeak_pflops:.1f}",
                f"{row.system_mtbf_hours:.2f}",
                f"{row.job_mtbf_hours:.1f}",
                f"{row.ettr_mean:.4f}",
                f"{row.interrupts_per_day_mean:.3f}",
                f"{row.lost_work_hours_per_day:.3f}",
                f"{row.goodput_pflops:.2f}",
                f"{row.pflop_hours_between_interrupts:.1f}",
            )
            for row in self.rows
        ]
        widths = [
            max(len(headers[i]), *(len(line[i]) for line in body))
            for i in range(len(headers))
        ]
        def fmt(line: tuple[str, ...]) -> str:
            return "  ".join(
                cell.rjust(widths[i]) for i, cell in enumerate(line)
            )
        ruler = "  ".join("-" * w for w in widths)
        return "\n".join([fmt(headers), ruler, *(fmt(l) for l in body)])

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view."""
        return {
            "gang_nodes": self.gang_nodes,
            "horizon_hours": self.horizon_hours,
            "replications": self.replications,
            "rows": [row.to_dict() for row in self.rows],
        }


def compare_training(
    machines: tuple[str, ...],
    gang_nodes: int = 64,
    horizon_hours: float = 720.0,
    replications: int = 8,
    seed: int = 0,
    step_time_hours: float = 0.01,
    detection_delay_hours: float = 0.05,
    checkpoint_cost_hours: float = 0.25,
    restart_cost_hours: float = 0.5,
    max_workers: int | None = None,
) -> TrainComparison:
    """Run the cross-machine training study.

    Per machine: a calibrated synthetic log (seeded identically across
    machines) supplies MTBF/MTTR; the Young/Daly policy is derived from
    the *gang's* MTBF (system MTBF x fleet / gang, clamping the gang to
    the fleet); a Monte-Carlo ensemble of simulated training runs
    supplies the measured ETTR distribution.

    Raises:
        ValidationError: On an empty machine list or bad gang size.
    """
    if not machines:
        raise ValidationError("compare_training needs at least one machine")
    if gang_nodes < 1:
        raise ValidationError(
            f"gang_nodes must be >= 1, got {gang_nodes}"
        )
    rows = []
    for machine in machines:
        spec = get_machine(machine)
        gang = min(gang_nodes, spec.num_nodes)
        log = generate_log(machine, seed=seed)
        system_mtbf = mtbf(log)
        system_mttr = mttr(log)
        job_mtbf = system_mtbf * spec.num_nodes / gang
        policy = young_daly_policy(
            checkpoint_cost_hours, job_mtbf,
            restart_cost_hours=restart_cost_hours,
        )
        ensemble: TrainEnsembleReport = run_train_replications(
            machine,
            replications=replications,
            horizon_hours=horizon_hours,
            checkpoint_policy=policy,
            train=TrainingJobConfig(
                num_nodes=gang,
                step_time_hours=step_time_hours,
                detection_delay_hours=detection_delay_hours,
            ),
            seed=seed,
            max_workers=max_workers,
        )
        ettr = ensemble.metrics["ettr"]
        interrupts = ensemble.metrics["interrupts_per_day"]
        lost = ensemble.metrics["lost_work_hours"]
        gang_rpeak = spec.rpeak_pflops * (gang / spec.num_nodes)
        goodput = gang_rpeak * ettr.mean
        per_day = interrupts.mean
        pflop_hours = (
            gang_rpeak * (24.0 / per_day) if per_day > 0
            else gang_rpeak * horizon_hours
        )
        rows.append(
            TrainComparisonRow(
                machine=machine,
                fleet_nodes=spec.num_nodes,
                gang_nodes=gang,
                rpeak_pflops=spec.rpeak_pflops,
                system_mtbf_hours=system_mtbf,
                system_mttr_hours=system_mttr,
                job_mtbf_hours=job_mtbf,
                checkpoint_interval_hours=policy.interval_hours,
                ettr_mean=ettr.mean,
                ettr_ci_lower=ettr.ci_lower,
                ettr_ci_upper=ettr.ci_upper,
                interrupts_per_day_mean=per_day,
                lost_work_hours_per_day=(
                    lost.mean * 24.0 / horizon_hours
                ),
                goodput_pflops=goodput,
                pflop_hours_between_interrupts=pflop_hours,
            )
        )
    return TrainComparison(
        gang_nodes=gang_nodes,
        horizon_hours=horizon_hours,
        replications=replications,
        rows=tuple(rows),
    )
