"""ETTF analytics over a failure log.

The serve-side counterpart of the simulation's
:class:`~repro.train.gang.TrainStats`: given a machine's failure log,
estimate — analytically, via the same Young/Daly waste model the
simulator executes — what a gang-scheduled training job of each size
would experience on that machine.  ``ettf_payload`` is the
``/analyze/{dataset}/ettf`` endpoint body.

ETTR here follows the Meta fleet-study definition: the effective
training-time ratio, committed-useful-work hours per wall-clock hour.
``useful_pflops`` generalizes the source paper's
performance-error-proportionality metric (Rpeak x MTBF) to modern
fleets: the share of peak FLOPs a gang actually banks after failures
and checkpoint overhead.
"""

from __future__ import annotations

from typing import Any

from repro.core.metrics import job_interruption_probability, mtbf, mttr
from repro.core.records import FailureLog
from repro.machines.specs import get_machine
from repro.sim.checkpoint import (
    expected_waste_fraction,
    young_daly_policy,
)

__all__ = ["DEFAULT_GANG_GRID", "DEFAULT_CHECKPOINT_COST_HOURS",
           "ettf_payload"]

#: Gang sizes evaluated by default (clamped to the fleet size).
DEFAULT_GANG_GRID = (8, 64, 256, 512)

#: Default checkpoint cost, matching the exposure report's convention.
DEFAULT_CHECKPOINT_COST_HOURS = 0.25


def ettf_payload(
    log: FailureLog,
    gang_grid: tuple[int, ...] = DEFAULT_GANG_GRID,
    checkpoint_cost_hours: float = DEFAULT_CHECKPOINT_COST_HOURS,
) -> dict[str, Any]:
    """ETTF/goodput estimates for gang-training jobs on this machine.

    For each gang size n the job MTBF is the system MTBF thinned by
    n / fleet; the checkpoint interval is the Young/Daly optimum at
    that MTBF; ETTR is 1 - expected waste; ``useful_pflops`` is the
    gang's share of Rpeak discounted by its ETTR.
    """
    spec = get_machine(log.machine)
    system_mtbf = mtbf(log)
    system_mttr = mttr(log)
    rows = []
    for nodes in sorted({min(n, spec.num_nodes) for n in gang_grid}):
        job_mtbf = system_mtbf * spec.num_nodes / nodes
        policy = young_daly_policy(checkpoint_cost_hours, job_mtbf)
        waste = expected_waste_fraction(policy, job_mtbf)
        ettr = 1.0 - waste
        rows.append({
            "gang_nodes": nodes,
            "job_mtbf_hours": job_mtbf,
            "checkpoint_interval_hours": policy.interval_hours,
            "expected_waste_fraction": waste,
            "ettr_estimate": ettr,
            "interrupts_per_day": 24.0 / job_mtbf,
            "interruption_probability_24h": job_interruption_probability(
                system_mtbf, spec.num_nodes, nodes, 24.0
            ),
            "useful_pflops": (
                spec.rpeak_pflops * (nodes / spec.num_nodes) * ettr
            ),
        })
    return {
        "machine": log.machine,
        "failures": len(log),
        "fleet_nodes": spec.num_nodes,
        "rpeak_pflops": spec.rpeak_pflops,
        "system_mtbf_hours": system_mtbf,
        "system_mttr_hours": system_mttr,
        "checkpoint_cost_hours": checkpoint_cost_hours,
        "gangs": rows,
    }
