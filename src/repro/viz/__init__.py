"""Text rendering of the paper's chart types.

The benchmark harness regenerates every figure as text: horizontal bar
charts (Figures 2-5 and 12), CDF curves (Figures 6 and 9), boxplot
tables (Figures 7, 10 and 11) and event timelines (Figure 8).
"""

from repro.viz.ascii import (
    bar_chart,
    cdf_chart,
    boxplot_table,
    histogram,
    render_table,
    sparkline,
    timeline,
)

__all__ = [
    "bar_chart",
    "boxplot_table",
    "cdf_chart",
    "histogram",
    "render_table",
    "sparkline",
    "timeline",
]
