"""ASCII chart rendering.

Pure functions from data to a multi-line string; no terminal control
codes, so output is stable in CI logs and the EXPERIMENTS.md appendix.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ValidationError
from repro.stats.ecdf import ECDF
from repro.stats.summary import FiveNumberSummary

__all__ = [
    "bar_chart",
    "cdf_chart",
    "boxplot_table",
    "histogram",
    "sparkline",
    "timeline",
    "render_table",
]

_FULL_BLOCK = "#"


def bar_chart(
    rows: Sequence[tuple[str, float]],
    width: int = 40,
    value_format: str = "{:.1f}",
    title: str = "",
) -> str:
    """Render labelled values as a horizontal bar chart.

    Args:
        rows: (label, value) pairs, rendered top to bottom.
        width: Width in characters of the longest bar.
        value_format: Format spec applied to each value.
        title: Optional heading line.

    Raises:
        ValidationError: On empty rows, non-positive width, or negative
            values.
    """
    if not rows:
        raise ValidationError("bar_chart needs at least one row")
    if width < 1:
        raise ValidationError(f"width must be positive, got {width}")
    if any(value < 0 for _, value in rows):
        raise ValidationError("bar_chart values must be non-negative")
    label_width = max(len(label) for label, _ in rows)
    peak = max(value for _, value in rows)
    lines = [title] if title else []
    for label, value in rows:
        length = int(round(width * value / peak)) if peak > 0 else 0
        bar = _FULL_BLOCK * length
        rendered = value_format.format(value)
        lines.append(f"{label:<{label_width}} |{bar:<{width}}| {rendered}")
    return "\n".join(lines)


def cdf_chart(
    curves: dict[str, ECDF],
    num_points: int = 20,
    width: int = 40,
    unit: str = "h",
    title: str = "",
) -> str:
    """Render one or more ECDFs as rows of (x, F(x)) with a bar for F.

    All curves share one x-grid spanning the union of supports, so two
    machines' distributions line up visually — the Figure 6/9 layout.
    """
    if not curves:
        raise ValidationError("cdf_chart needs at least one curve")
    if num_points < 2:
        raise ValidationError(
            f"num_points must be at least 2, got {num_points}"
        )
    low = min(curve.support[0] for curve in curves.values())
    high = max(curve.support[1] for curve in curves.values())
    if high <= low:
        high = low + 1.0
    step = (high - low) / (num_points - 1)
    lines = [title] if title else []
    name_width = max(len(name) for name in curves)
    for name, curve in curves.items():
        lines.append(f"-- {name} --")
        for index in range(num_points):
            x = low + index * step
            fraction = curve(x)
            bar = _FULL_BLOCK * int(round(width * fraction))
            lines.append(
                f"{name:<{name_width}} {x:>10.1f}{unit} "
                f"|{bar:<{width}}| {fraction:6.1%}"
            )
    return "\n".join(lines)


def boxplot_table(
    rows: Sequence[tuple[str, FiveNumberSummary]],
    unit: str = "h",
    title: str = "",
) -> str:
    """Render five-number summaries as a table (the boxplot figures)."""
    if not rows:
        raise ValidationError("boxplot_table needs at least one row")
    header = (
        f"{'label':<20} {'n':>5} {'min':>9} {'q1':>9} {'median':>9} "
        f"{'q3':>9} {'max':>9} {'mean':>9}"
    )
    lines = [title, header, "-" * len(header)] if title else [
        header, "-" * len(header)
    ]
    for label, summary in rows:
        lines.append(
            f"{label:<20} {summary.n:>5} "
            f"{summary.minimum:>8.1f}{unit} {summary.q1:>8.1f}{unit} "
            f"{summary.median:>8.1f}{unit} {summary.q3:>8.1f}{unit} "
            f"{summary.maximum:>8.1f}{unit} {summary.mean:>8.1f}{unit}"
        )
    return "\n".join(lines)


def timeline(
    events: Sequence[tuple[float, int]],
    span: float,
    width: int = 72,
    title: str = "",
) -> str:
    """Render (time, magnitude) events on a single-line timeline.

    Events at the same character cell keep the largest magnitude; cells
    render '.' for magnitude 1 and the digit for 2-9.  This is the
    Figure 8 view: multi-GPU failures (digits >= 2) visibly clump.
    """
    if span <= 0:
        raise ValidationError(f"span must be positive, got {span}")
    if width < 10:
        raise ValidationError(f"width must be at least 10, got {width}")
    cells = [0] * width
    for time, magnitude in events:
        if not 0 <= time <= span:
            raise ValidationError(
                f"event time {time} outside [0, {span}]"
            )
        if magnitude < 1:
            raise ValidationError(
                f"event magnitude must be >= 1, got {magnitude}"
            )
        index = min(width - 1, int(width * time / span))
        cells[index] = max(cells[index], magnitude)
    body = "".join(
        " " if cell == 0 else ("." if cell == 1 else str(min(cell, 9)))
        for cell in cells
    )
    lines = [title] if title else []
    lines.append(f"|{body}|")
    lines.append(f"0{'h':<1}{' ' * (width - 12)}{span:>9.0f}h")
    return "\n".join(lines)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Render a simple aligned text table.

    Raises:
        ValidationError: If any row length differs from the header.
    """
    if not headers:
        raise ValidationError("render_table needs headers")
    for row in rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(
            f"{str(cell):<{widths[i]}}" for i, cell in enumerate(cells)
        ).rstrip()

    lines = [title] if title else []
    lines.append(fmt(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Render a numeric series as a one-line bar sparkline.

    Uses eight ASCII-safe levels (space, ., :, -, =, +, *, #) scaled
    between the series minimum and maximum.

    Raises:
        ValidationError: On empty or non-finite input.
    """
    if len(values) == 0:
        raise ValidationError("sparkline needs at least one value")
    levels = " .:-=+*#"
    floats = [float(v) for v in values]
    if any(v != v or v in (float("inf"), float("-inf")) for v in floats):
        raise ValidationError("sparkline values must be finite")
    if width is not None:
        if width < 1:
            raise ValidationError(f"width must be >= 1, got {width}")
        # Downsample by averaging equal chunks.
        if len(floats) > width:
            chunk = len(floats) / width
            floats = [
                sum(floats[int(i * chunk):int((i + 1) * chunk) or None])
                / max(1, len(floats[int(i * chunk):int((i + 1) * chunk)
                                    or None]))
                for i in range(width)
            ]
    low = min(floats)
    high = max(floats)
    if high == low:
        return levels[4] * len(floats)
    scale = (len(levels) - 1) / (high - low)
    return "".join(
        levels[int(round((v - low) * scale))] for v in floats
    )


def histogram(
    sample: Sequence[float],
    num_bins: int = 10,
    width: int = 40,
    value_format: str = "{:.1f}",
    title: str = "",
) -> str:
    """Render a sample as a binned horizontal-bar histogram.

    Raises:
        ValidationError: On empty/non-finite input or bad parameters.
    """
    values = [float(v) for v in sample]
    if not values:
        raise ValidationError("histogram needs a non-empty sample")
    if any(v != v or v in (float("inf"), float("-inf")) for v in values):
        raise ValidationError("histogram sample must be finite")
    if num_bins < 1:
        raise ValidationError(f"num_bins must be >= 1, got {num_bins}")
    low, high = min(values), max(values)
    if high == low:
        high = low + 1.0
    bin_width = (high - low) / num_bins
    counts = [0] * num_bins
    for v in values:
        index = min(int((v - low) / bin_width), num_bins - 1)
        counts[index] += 1
    rows = []
    for index, count in enumerate(counts):
        left = low + index * bin_width
        right = left + bin_width
        label = (f"[{value_format.format(left)}, "
                 f"{value_format.format(right)})")
        rows.append((label, float(count)))
    return bar_chart(rows, width=width, value_format="{:.0f}",
                     title=title)
