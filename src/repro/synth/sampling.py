"""Low-level sampling helpers shared by the trace generator.

Everything here is deterministic given a :class:`numpy.random.Generator`
so that a seeded trace is bit-for-bit reproducible.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "allocate_counts",
    "weighted_sample_without_replacement",
    "shuffled",
]


def allocate_counts(weights: Mapping[str, float], total: int) -> dict[str, int]:
    """Split ``total`` into integer counts proportional to ``weights``.

    Uses the largest-remainder method, so the result always sums to
    ``total`` exactly and each count is within one of its ideal share.
    This is what lets a generated log reproduce the paper's category
    percentages (44.37% GPU on Tsubame-2, 50.59% software on
    Tsubame-3) without multinomial noise.

    Args:
        weights: Non-negative weights per label; at least one positive.
        total: Non-negative number of items to allocate.

    Raises:
        ValidationError: On negative weights, an all-zero weight map,
            or a negative total.
    """
    if total < 0:
        raise ValidationError(f"total must be non-negative, got {total}")
    if not weights:
        raise ValidationError("weights must be non-empty")
    if any(value < 0 for value in weights.values()):
        raise ValidationError("weights must be non-negative")
    weight_sum = float(sum(weights.values()))
    if weight_sum <= 0:
        raise ValidationError("at least one weight must be positive")

    labels = sorted(weights)
    ideals = {
        label: total * weights[label] / weight_sum for label in labels
    }
    counts = {label: int(np.floor(ideals[label])) for label in labels}
    shortfall = total - sum(counts.values())
    # Hand the leftover units to the largest fractional remainders;
    # ties broken by label so the allocation is deterministic.
    by_remainder = sorted(
        labels, key=lambda label: (-(ideals[label] - counts[label]), label)
    )
    for label in by_remainder[:shortfall]:
        counts[label] += 1
    return counts


def weighted_sample_without_replacement(
    rng: np.random.Generator,
    items: Sequence[int],
    weights: Sequence[float],
    k: int,
) -> list[int]:
    """Draw ``k`` distinct items with probability proportional to weight.

    Sequential weighted draws (the "exponential sort" would also work;
    this explicit loop keeps the weight semantics obvious).

    Raises:
        ValidationError: If k exceeds the population or weights are
            invalid.
    """
    if k < 0:
        raise ValidationError(f"k must be non-negative, got {k}")
    if k > len(items):
        raise ValidationError(
            f"cannot draw {k} distinct items from {len(items)}"
        )
    if len(items) != len(weights):
        raise ValidationError(
            f"items ({len(items)}) and weights ({len(weights)}) must have "
            f"equal length"
        )
    if any(w < 0 for w in weights):
        raise ValidationError("weights must be non-negative")
    pool = list(items)
    pool_weights = [float(w) for w in weights]
    chosen: list[int] = []
    for _ in range(k):
        total = sum(pool_weights)
        if total <= 0:
            # All remaining weights are zero; fall back to uniform.
            index = int(rng.integers(len(pool)))
        else:
            probabilities = [w / total for w in pool_weights]
            index = int(rng.choice(len(pool), p=probabilities))
        chosen.append(pool.pop(index))
        pool_weights.pop(index)
    return chosen


def shuffled(rng: np.random.Generator, items: Sequence) -> list:
    """Return a shuffled copy of ``items``."""
    result = list(items)
    rng.shuffle(result)
    return result
