"""Stream replay adapter for synthetic traces.

Bridges the trace generator to :mod:`repro.stream`: generate a
calibrated log and hand it over as a monotonic event stream, so the
online estimators can be exercised against ground truth whose batch
statistics are known exactly.

Imports of :mod:`repro.stream` are deferred to call time so that
``repro.synth`` stays importable on its own.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.synth.generator import GeneratorConfig, generate_log

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stream.events import StreamEvent
    from repro.stream.sources import ReplaySource

__all__ = ["stream_synthetic", "replay_source"]


def replay_source(
    machine: str,
    seed: int = 0,
    config: GeneratorConfig | None = None,
    include_repairs: bool = False,
) -> "ReplaySource":
    """Generate a calibrated trace and wrap it as a replay source.

    Args:
        machine: ``"tsubame2"`` or ``"tsubame3"``.
        seed: Generator seed, ignored when ``config`` is given.
        config: Full generator configuration.
        include_repairs: Also emit REPAIR events at recovery times.
    """
    from repro.stream.sources import ReplaySource

    log = generate_log(machine, seed=seed, config=config)
    return ReplaySource(log, include_repairs=include_repairs)


def stream_synthetic(
    machine: str,
    seed: int = 0,
    config: GeneratorConfig | None = None,
    include_repairs: bool = False,
) -> Iterator["StreamEvent"]:
    """Generate a calibrated trace and yield it as stream events."""
    return iter(
        replay_source(
            machine,
            seed=seed,
            config=config,
            include_repairs=include_repairs,
        )
    )
