"""Recovery-time (TTR) sampling.

Each category's recovery time is lognormal: repairs are multiplicative
processes (diagnose, order part, swap, re-test) and field TTR data is
strongly right-skewed.  The per-category (mean, sigma) pairs come from
the machine profile; hardware categories carry larger sigmas, which is
what makes Figure 10's hardware-vs-software spread comparison come out.
A final global rescale pins the overall mean to the profile's MTTR
target (~55 h on both machines, Figure 9).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CalibrationError, ValidationError

__all__ = ["LognormalTtrSampler", "normalize_to_mean"]


class LognormalTtrSampler:
    """Samples recovery times for one category.

    Args:
        mean_hours: Target mean of the (unnormalised) TTR distribution.
        sigma: Log-space standard deviation; larger means more spread.
    """

    def __init__(self, mean_hours: float, sigma: float) -> None:
        if mean_hours <= 0:
            raise CalibrationError(
                f"TTR mean must be positive, got {mean_hours}"
            )
        if sigma < 0:
            raise CalibrationError(f"TTR sigma must be >= 0, got {sigma}")
        self._sigma = sigma
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2).
        self._mu = math.log(mean_hours) - 0.5 * sigma * sigma

    @property
    def mean_hours(self) -> float:
        """Mean of the sampled distribution."""
        return math.exp(self._mu + 0.5 * self._sigma * self._sigma)

    @property
    def sigma(self) -> float:
        """Log-space standard deviation."""
        return self._sigma

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one recovery time in hours."""
        if self._sigma == 0.0:
            return math.exp(self._mu)
        return float(rng.lognormal(self._mu, self._sigma))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` recovery times in one vectorized call.

        Same distribution as :meth:`sample`; batching exists so the
        fault injector can pre-sample its draws instead of paying one
        RNG round-trip per simulated failure.

        Raises:
            ValidationError: On a non-positive ``n``.
        """
        if n < 1:
            raise ValidationError(f"n must be positive, got {n}")
        if self._sigma == 0.0:
            return np.full(n, math.exp(self._mu))
        return rng.lognormal(self._mu, self._sigma, size=n)


def normalize_to_mean(
    values: list[float], target_mean: float
) -> list[float]:
    """Rescale a positive sample so its mean equals ``target_mean``.

    A pure rescale preserves every *relative* property the analyses
    look at — the ECDF shape, per-category ordering, and spread ratios
    — while pinning the headline MTTR.

    Raises:
        ValidationError: On an empty sample, non-positive target, or a
            sample with non-positive mean.
    """
    if not values:
        raise ValidationError("cannot normalise an empty sample")
    if target_mean <= 0:
        raise ValidationError(
            f"target mean must be positive, got {target_mean}"
        )
    current = float(np.mean(values))
    if current <= 0:
        raise ValidationError(
            f"sample mean must be positive, got {current}"
        )
    factor = target_mean / current
    return [value * factor for value in values]
