"""Node placement: which node each failure lands on.

Reproduces Figure 4 (per-node failure-count distribution) and the RQ2
class split (on Tsubame-2 repeat failures are almost exclusively
hardware — 352 vs 1; on Tsubame-3 they are roughly balanced — 104 vs
95).  Placement happens in two steps:

1. sample per-node multiplicities from the profile's count
   distribution so the Figure 4 histogram matches, then
2. fill the node "slots" with concrete failures, steering software
   failures toward or away from multi-failure nodes according to the
   profile's ``multi_node_software_share``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CalibrationError, ValidationError
from repro.synth.sampling import shuffled

__all__ = ["sample_node_multiplicities", "assign_failures_to_nodes"]


def sample_node_multiplicities(
    rng: np.random.Generator,
    distribution: dict[int, float],
    total_failures: int,
    num_nodes: int,
) -> list[int]:
    """Sample per-affected-node failure counts summing to the total.

    Counts are drawn i.i.d. from ``distribution`` until the running sum
    reaches ``total_failures``; the final draw is clipped so the sum is
    exact.  The resulting histogram converges on the target
    distribution for the log sizes used here (hundreds of failures).

    Raises:
        ValidationError: On invalid inputs.
        CalibrationError: If more nodes would be affected than exist.
    """
    if total_failures < 1:
        raise ValidationError(
            f"total_failures must be positive, got {total_failures}"
        )
    if num_nodes < 1:
        raise ValidationError(f"num_nodes must be positive, got {num_nodes}")
    if not distribution:
        raise ValidationError("node count distribution must be non-empty")
    counts = sorted(distribution)
    probabilities = np.asarray(
        [distribution[k] for k in counts], dtype=float
    )
    if np.any(probabilities < 0) or probabilities.sum() <= 0:
        raise ValidationError(
            "node count distribution must have non-negative probabilities "
            "with a positive sum"
        )
    probabilities = probabilities / probabilities.sum()

    multiplicities: list[int] = []
    remaining = total_failures
    while remaining > 0:
        draw = int(rng.choice(counts, p=probabilities))
        draw = min(draw, remaining)
        multiplicities.append(draw)
        remaining -= draw
        if len(multiplicities) > num_nodes:
            raise CalibrationError(
                f"placing {total_failures} failures needs more than the "
                f"{num_nodes} nodes available"
            )
    return multiplicities


def assign_failures_to_nodes(
    rng: np.random.Generator,
    is_software: list[bool],
    multiplicities: list[int],
    num_nodes: int,
    multi_node_software_share: float,
    node_weights: np.ndarray | None = None,
) -> list[int]:
    """Assign each failure (by index) to a node id.

    Args:
        rng: Seeded generator.
        is_software: Per-failure flag — True for software (and unknown)
            failures, False for hardware.  Order matches the failure
            sequence; the returned node list uses the same order.
        multiplicities: Per-affected-node failure counts (from
            :func:`sample_node_multiplicities`).
        num_nodes: Fleet size; affected node ids are drawn from it
            without replacement.
        multi_node_software_share: Target fraction of the failures on
            multi-failure nodes that are software.
        node_weights: Optional per-node selection propensity (length
            ``num_nodes``).  Rack-correlated weights reproduce the
            non-uniform rack distribution the paper's generalizability
            discussion mentions; None selects nodes uniformly.

    Returns:
        A node id for every failure index.

    Raises:
        ValidationError: If the multiplicities do not cover the
            failures exactly or the weights are invalid.
    """
    total = len(is_software)
    if sum(multiplicities) != total:
        raise ValidationError(
            f"multiplicities sum to {sum(multiplicities)} but there are "
            f"{total} failures"
        )
    if not 0.0 <= multi_node_software_share <= 1.0:
        raise ValidationError(
            "multi_node_software_share must lie in [0, 1]"
        )
    if node_weights is None:
        node_ids = rng.choice(num_nodes, size=len(multiplicities),
                              replace=False)
    else:
        weights = np.asarray(node_weights, dtype=float)
        if weights.shape != (num_nodes,):
            raise ValidationError(
                f"node_weights must have length {num_nodes}, got shape "
                f"{weights.shape}"
            )
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValidationError(
                "node_weights must be non-negative with a positive sum"
            )
        node_ids = rng.choice(
            num_nodes,
            size=len(multiplicities),
            replace=False,
            p=weights / weights.sum(),
        )

    # Build the slot pools: one slot per failure a node will host.
    multi_slots: list[int] = []
    single_slots: list[int] = []
    for node_id, count in zip(node_ids, multiplicities):
        if count > 1:
            multi_slots.extend([int(node_id)] * count)
        else:
            single_slots.append(int(node_id))

    software_indices = shuffled(
        rng, [i for i, flag in enumerate(is_software) if flag]
    )
    hardware_indices = shuffled(
        rng, [i for i, flag in enumerate(is_software) if not flag]
    )

    # Decide which failures land on multi-failure nodes.
    target_software = int(round(multi_node_software_share
                                * len(multi_slots)))
    target_software = min(target_software, len(software_indices),
                          len(multi_slots))
    multi_members = software_indices[:target_software]
    needed_hardware = len(multi_slots) - len(multi_members)
    if needed_hardware > len(hardware_indices):
        # Not enough hardware failures: top up with software ones.
        shortfall = needed_hardware - len(hardware_indices)
        multi_members += hardware_indices
        multi_members += software_indices[
            target_software:target_software + shortfall
        ]
        single_members = software_indices[target_software + shortfall:]
    else:
        multi_members += hardware_indices[:needed_hardware]
        single_members = (
            software_indices[target_software:]
            + hardware_indices[needed_hardware:]
        )

    assignment = [0] * total
    for index, node in zip(shuffled(rng, multi_members), multi_slots):
        assignment[index] = node
    for index, node in zip(shuffled(rng, single_members), single_slots):
        assignment[index] = node
    return assignment
