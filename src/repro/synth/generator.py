"""Synthetic failure-trace generator.

:class:`TraceGenerator` turns a calibrated
:class:`~repro.synth.profiles.MachineProfile` into a
:class:`~repro.core.records.FailureLog` that reproduces the paper's
published statistics: category mix (Figure 2), software root loci
(Figure 3), per-node counts (Figure 4), GPU slot skew (Figure 5),
multi-GPU involvement (Table III), TBF shape (Figures 6-7), multi-GPU
temporal clustering (Figure 8), TTR shape (Figures 9-10) and
seasonality (Figures 11-12).

Every stochastic choice flows from one seeded
:class:`numpy.random.Generator`, so a (profile, config) pair is fully
reproducible.  :class:`GeneratorConfig` exposes ablation switches that
the ablation benchmarks flip to show which mechanism produces which
figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

import numpy as np

from repro.core import taxonomy
from repro.core.records import FailureLog, FailureRecord
from repro.core.taxonomy import FailureClass
from repro.errors import ValidationError
from repro.machines.racks import rack_layout_for
from repro.machines.specs import get_machine
from repro.machines.topology import NodeTopology, build_node_topology
from repro.synth.arrivals import (
    MonthlyIntensityWarp,
    arrival_offsets_hours,
    calibrate_weibull,
)
from repro.synth.involvement import assign_involvement_labels, choose_slots
from repro.synth.placement import (
    assign_failures_to_nodes,
    sample_node_multiplicities,
)
from repro.synth.profiles import MachineProfile, profile_for
from repro.synth.recovery import LognormalTtrSampler, normalize_to_mean
from repro.synth.sampling import allocate_counts, shuffled

__all__ = ["GeneratorConfig", "TraceGenerator", "generate_log"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for one generation run.

    Attributes:
        seed: RNG seed; identical seeds give identical logs.
        num_failures: Optional override of the profile's log size; the
            category mix, involvement table and root loci are rescaled
            proportionally (largest-remainder).
        arrival_seasonality: Warp arrival times by the profile's month
            weights (Figure 12).  Off = homogeneous arrivals.
        ttr_seasonality: Apply the profile's monthly TTR factors
            (Figure 11).  Off = stationary recovery times.
        burst_clustering: Cluster multi-GPU failures in time
            (Figure 8).  Off = involvement labels are exchangeable.
        slot_weighting: Use the profile's per-slot GPU propensities
            (Figure 5).  Off = uniform slots.
        topology_affinity: Bonus multiplier pulling co-failing GPUs
            onto bus-mates; 1.0 disables the topology effect.
        normalize_mttr: Rescale recovery times so the log's mean TTR
            equals the profile target exactly (Figure 9).
        rack_skew: Concentrate affected nodes onto rack-correlated
            hotspots (the paper's non-uniform rack distribution).  Off
            = affected nodes drawn uniformly from the fleet.
    """

    seed: int = 0
    num_failures: int | None = None
    arrival_seasonality: bool = True
    ttr_seasonality: bool = True
    burst_clustering: bool = True
    slot_weighting: bool = True
    topology_affinity: float = 3.0
    normalize_mttr: bool = True
    rack_skew: bool = True

    def __post_init__(self) -> None:
        if self.num_failures is not None and self.num_failures < 2:
            raise ValidationError(
                f"num_failures must be >= 2, got {self.num_failures}"
            )
        if self.topology_affinity < 1.0:
            raise ValidationError(
                f"topology_affinity must be >= 1, got "
                f"{self.topology_affinity}"
            )


class TraceGenerator:
    """Generates calibrated synthetic failure logs for one machine."""

    def __init__(
        self,
        profile: MachineProfile,
        config: GeneratorConfig | None = None,
    ) -> None:
        self._profile = profile
        self._config = config or GeneratorConfig()
        self._spec = get_machine(profile.machine)
        self._topology: NodeTopology = build_node_topology(profile.machine)

    @property
    def profile(self) -> MachineProfile:
        return self._profile

    @property
    def config(self) -> GeneratorConfig:
        return self._config

    # -- pipeline stages -------------------------------------------------

    def _scaled_counts(self, total: int) -> dict[str, int]:
        """Category counts for a (possibly overridden) log size."""
        if total == self._profile.total_failures:
            return dict(self._profile.category_counts)
        weights = {
            name: float(count)
            for name, count in self._profile.category_counts.items()
        }
        return allocate_counts(weights, total)

    def _category_sequence(
        self, rng: np.random.Generator, counts: dict[str, int]
    ) -> list[str]:
        sequence: list[str] = []
        for name in sorted(counts):
            sequence.extend([name] * counts[name])
        return shuffled(rng, sequence)

    def _arrival_offsets(
        self, rng: np.random.Generator, total: int
    ) -> np.ndarray:
        span = self._spec.log_span_hours
        renewal = calibrate_weibull(
            mean_hours=span / total,
            p75_hours=self._profile.tbf_p75_hours
            * (self._profile.total_failures / total)
            if total != self._profile.total_failures
            else self._profile.tbf_p75_hours,
        )
        offsets = arrival_offsets_hours(rng, renewal, total, span)
        if self._config.arrival_seasonality:
            warp = MonthlyIntensityWarp(
                self._spec.log_start,
                self._spec.log_end,
                self._profile.month_weights,
            )
            offsets = warp.warp(offsets)
        return offsets

    def _involvement(
        self,
        rng: np.random.Generator,
        num_gpu_failures: int,
    ) -> list[tuple[int, ...]]:
        """Slots involved for each GPU failure, in time order."""
        profile = self._profile
        recorded_total = sum(profile.gpu_involvement_counts.values())
        base_total = recorded_total + profile.gpu_involvement_unrecorded
        if num_gpu_failures == base_total:
            involvement_counts = dict(profile.gpu_involvement_counts)
            unrecorded = profile.gpu_involvement_unrecorded
        else:
            weights = {
                str(k): float(v)
                for k, v in profile.gpu_involvement_counts.items()
            }
            weights["0"] = float(profile.gpu_involvement_unrecorded)
            scaled = allocate_counts(weights, num_gpu_failures)
            unrecorded = scaled.pop("0")
            involvement_counts = {int(k): v for k, v in scaled.items()}
        burst = (
            profile.burst_continue_probability
            if self._config.burst_clustering
            else 0.0
        )
        labels = assign_involvement_labels(
            rng, involvement_counts, unrecorded, burst
        )
        slot_weights = (
            self._profile.gpu_slot_weights
            if self._config.slot_weighting
            else tuple(1.0 for _ in self._profile.gpu_slot_weights)
        )
        topology = (
            self._topology if self._config.topology_affinity > 1.0 else None
        )
        slots: list[tuple[int, ...]] = []
        for label in labels:
            if label == 0:
                slots.append(())
            else:
                slots.append(
                    choose_slots(
                        rng,
                        label,
                        slot_weights,
                        topology=topology,
                        affinity=self._config.topology_affinity,
                    )
                )
        return slots

    def _root_loci(
        self, rng: np.random.Generator, num_software: int
    ) -> list[str]:
        counts = self._profile.root_locus_counts
        if counts is None or num_software == 0:
            return []
        if sum(counts.values()) != num_software:
            weights = {name: float(c) for name, c in counts.items()}
            scaled = allocate_counts(weights, num_software)
        else:
            scaled = dict(counts)
        sequence: list[str] = []
        for name in sorted(scaled):
            sequence.extend([name] * scaled[name])
        return shuffled(rng, sequence)

    def _recovery_times(
        self,
        rng: np.random.Generator,
        categories: list[str],
        months: list[int],
    ) -> list[float]:
        # Dedicated substream: recovery times must not shift when an
        # unrelated stage (placement, involvement) changes how much
        # randomness it consumes.
        del rng
        rng = np.random.default_rng([self._config.seed, 880011])
        samplers = {
            name: LognormalTtrSampler(
                self._profile.category_ttr_mean_hours[name],
                self._profile.category_ttr_sigma[name],
            )
            for name in set(categories)
        }
        values = []
        for name, month in zip(categories, months):
            ttr = samplers[name].sample(rng)
            if self._config.ttr_seasonality:
                ttr *= self._profile.ttr_month_factors[month - 1]
            values.append(ttr)
        if self._config.normalize_mttr:
            values = normalize_to_mean(
                values, self._profile.mttr_target_hours
            )
        return values

    def _node_weights(self, rng: np.random.Generator):
        """Rack-correlated node selection weights (None when disabled).

        Drawn from a dedicated substream (seeded off the config seed,
        not ``rng``) so that toggling rack skew does not perturb every
        other sampled quantity of the trace.
        """
        del rng  # signature kept symmetric with the other stages
        if not self._config.rack_skew:
            return None
        sigma = self._profile.rack_skew_sigma
        if sigma <= 0:
            return None
        layout = rack_layout_for(self._profile.machine)
        rack_rng = np.random.default_rng([self._config.seed, 771221])
        rack_weights = rack_rng.lognormal(0.0, sigma,
                                          size=layout.num_racks)
        return np.asarray(
            [
                rack_weights[layout.rack_of(node)]
                for node in range(self._spec.num_nodes)
            ]
        )

    # -- public API --------------------------------------------------------

    def generate(self) -> FailureLog:
        """Generate one complete failure log."""
        rng = np.random.default_rng(self._config.seed)
        total = self._config.num_failures or self._profile.total_failures

        counts = self._scaled_counts(total)
        categories = self._category_sequence(rng, counts)
        offsets = self._arrival_offsets(rng, total)
        stamps = [
            self._spec.log_start + timedelta(hours=float(offset))
            for offset in offsets
        ]

        # GPU involvement along the time-ordered GPU failure indices.
        gpu_indices = [
            i for i, name in enumerate(categories) if name == "GPU"
        ]
        gpu_slots = self._involvement(rng, len(gpu_indices))
        slots_by_index: dict[int, tuple[int, ...]] = dict(
            zip(gpu_indices, gpu_slots)
        )

        # Root loci for Tsubame-3 software failures.
        software_indices = [
            i for i, name in enumerate(categories) if name == "Software"
        ]
        loci = self._root_loci(rng, len(software_indices))
        locus_by_index = dict(zip(software_indices, loci))

        # Node placement with the hardware/software steering.
        is_software = [
            taxonomy.failure_class(self._profile.machine, name)
            is not FailureClass.HARDWARE
            for name in categories
        ]
        multiplicities = sample_node_multiplicities(
            rng,
            self._profile.node_count_distribution,
            total,
            self._spec.num_nodes,
        )
        nodes = assign_failures_to_nodes(
            rng,
            is_software,
            multiplicities,
            self._spec.num_nodes,
            self._profile.multi_node_software_share,
            node_weights=self._node_weights(rng),
        )

        months = [stamp.month for stamp in stamps]
        ttrs = self._recovery_times(rng, categories, months)

        records = [
            FailureRecord(
                record_id=index,
                timestamp=stamps[index],
                node_id=nodes[index],
                category=categories[index],
                ttr_hours=ttrs[index],
                gpus_involved=slots_by_index.get(index, ()),
                root_locus=locus_by_index.get(index),
            )
            for index in range(total)
        ]
        return FailureLog(
            machine=self._profile.machine,
            records=tuple(records),
            window_start=self._spec.log_start,
            window_end=self._spec.log_end,
        )

    def to_store(self, path, *, reindex: bool = False):
        """Generate one log and append it to the store at ``path``.

        A missing store is created with this machine's observation
        window; see :func:`repro.store.ingest_log`.  Returns the
        append summary.
        """
        from repro.store import ingest_log

        return ingest_log(path, self.generate(), reindex=reindex)


def generate_log(
    machine: str,
    seed: int = 0,
    config: GeneratorConfig | None = None,
) -> FailureLog:
    """Convenience one-call generation of a machine's calibrated log.

    Args:
        machine: ``"tsubame2"`` or ``"tsubame3"``.
        seed: RNG seed, ignored when ``config`` is given.
        config: Full configuration (overrides ``seed``).
    """
    profile = profile_for(machine)
    if config is None:
        config = GeneratorConfig(seed=seed)
    return TraceGenerator(profile, config).generate()
