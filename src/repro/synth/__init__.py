"""Calibrated synthetic failure-trace generation.

The Tsubame failure logs are proprietary; this package is the
substitution (see DESIGN.md): a generator whose statistical targets
come from every number the paper publishes, so that the analysis
pipeline in :mod:`repro.core` exercises the same code paths it would on
the real logs and reproduces the published shape of every figure and
table.
"""

from repro.synth.arrivals import (
    MonthlyIntensityWarp,
    WeibullRenewal,
    arrival_offsets_hours,
    calibrate_weibull,
)
from repro.synth.generator import GeneratorConfig, TraceGenerator, generate_log
from repro.synth.involvement import assign_involvement_labels, choose_slots
from repro.synth.placement import (
    assign_failures_to_nodes,
    sample_node_multiplicities,
)
from repro.synth.profiles import (
    MachineProfile,
    TSUBAME2_PROFILE,
    TSUBAME3_PROFILE,
    profile_for,
)
from repro.synth.recovery import LognormalTtrSampler, normalize_to_mean
from repro.synth.replay import replay_source, stream_synthetic
from repro.synth.sampling import (
    allocate_counts,
    weighted_sample_without_replacement,
)
from repro.synth.scenarios import (
    replicate_scenario,
    with_failure_rate_scaled,
    with_operational_practices_of,
    with_software_share,
)

__all__ = [
    "GeneratorConfig",
    "LognormalTtrSampler",
    "MachineProfile",
    "MonthlyIntensityWarp",
    "TSUBAME2_PROFILE",
    "TSUBAME3_PROFILE",
    "TraceGenerator",
    "WeibullRenewal",
    "allocate_counts",
    "arrival_offsets_hours",
    "assign_failures_to_nodes",
    "assign_involvement_labels",
    "calibrate_weibull",
    "choose_slots",
    "generate_log",
    "normalize_to_mean",
    "profile_for",
    "replay_source",
    "replicate_scenario",
    "sample_node_multiplicities",
    "stream_synthetic",
    "weighted_sample_without_replacement",
    "with_failure_rate_scaled",
    "with_operational_practices_of",
    "with_software_share",
]
