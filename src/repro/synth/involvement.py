"""GPU involvement: how many and which GPU slots a failure touches.

Reproduces three published observations at once:

* **Table III** — the exact counts of GPU failures involving 1, 2, 3
  (and on Tsubame-3, 4) GPUs, by consuming a fixed multiset of labels.
* **Figure 8** — multi-GPU failures cluster in time.  Labels are
  assigned along the time-ordered GPU failure sequence with a bursty
  Markov rule: right after a multi-GPU failure, the next GPU failure is
  more likely to be multi-GPU again.
* **Figure 5** — slot selection is weighted by the profile's per-slot
  propensities, with a topology affinity bonus: once a slot is chosen,
  slots sharing its PCIe switch / I/O hub are likelier to join the same
  failure ("fallen off the bus" takes out bus-mates together).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.machines.topology import NodeTopology
from repro.synth.sampling import weighted_sample_without_replacement

__all__ = ["assign_involvement_labels", "choose_slots"]


def assign_involvement_labels(
    rng: np.random.Generator,
    involvement_counts: dict[int, int],
    unrecorded: int,
    burst_continue_probability: float,
) -> list[int]:
    """Order the Table III label multiset along the GPU failure sequence.

    Args:
        rng: Seeded generator.
        involvement_counts: k -> number of failures involving exactly k
            GPUs (k >= 1).
        unrecorded: Number of failures with no recorded involvement;
            these get label 0.
        burst_continue_probability: Probability that the failure
            following a multi-GPU failure is drawn from the remaining
            multi-GPU labels (when any remain).  0 disables clustering.

    Returns:
        One label per GPU failure, in time order.  The multiset of
        labels equals the input counts exactly.

    Raises:
        ValidationError: On invalid counts or probability.
    """
    if unrecorded < 0:
        raise ValidationError(
            f"unrecorded must be non-negative, got {unrecorded}"
        )
    if not 0.0 <= burst_continue_probability <= 1.0:
        raise ValidationError(
            "burst_continue_probability must lie in [0, 1]"
        )
    remaining: dict[int, int] = {0: unrecorded}
    for k, count in involvement_counts.items():
        if k < 1:
            raise ValidationError(
                f"involvement keys must be >= 1, got {k}"
            )
        if count < 0:
            raise ValidationError(
                f"involvement counts must be non-negative, got {count}"
            )
        if count:
            remaining[k] = count
    if remaining.get(0, 0) == 0:
        remaining.pop(0, None)
    total = sum(remaining.values())

    labels: list[int] = []
    previous_multi = False
    for _ in range(total):
        multi_pool = {k: c for k, c in remaining.items() if k > 1 and c}
        if (
            previous_multi
            and multi_pool
            and rng.random() < burst_continue_probability
        ):
            pool = multi_pool
        else:
            pool = {k: c for k, c in remaining.items() if c}
        keys = sorted(pool)
        weights = np.asarray([pool[k] for k in keys], dtype=float)
        label = int(rng.choice(keys, p=weights / weights.sum()))
        labels.append(label)
        remaining[label] -= 1
        previous_multi = label > 1
    return labels


def choose_slots(
    rng: np.random.Generator,
    num_involved: int,
    slot_weights: tuple[float, ...],
    topology: NodeTopology | None = None,
    affinity: float = 3.0,
) -> tuple[int, ...]:
    """Pick which GPU slots a failure involves.

    The first slot is drawn by raw propensity; each further slot's
    weight is multiplied by ``affinity`` when it shares a PCIe switch
    or I/O hub with a slot already chosen (topology permitting).

    Args:
        rng: Seeded generator.
        num_involved: Number of distinct slots to pick (>= 1).
        slot_weights: Per-slot propensity, index = slot id.
        topology: Node topology for the affinity bonus; None disables
            it.
        affinity: Multiplier (>= 1) applied to bus-mates of chosen
            slots.

    Raises:
        ValidationError: On invalid arguments.
    """
    num_slots = len(slot_weights)
    if num_involved < 1 or num_involved > num_slots:
        raise ValidationError(
            f"num_involved must be in [1, {num_slots}], got {num_involved}"
        )
    if affinity < 1.0:
        raise ValidationError(f"affinity must be >= 1, got {affinity}")
    if num_involved == num_slots:
        return tuple(range(num_slots))
    if topology is None:
        chosen = weighted_sample_without_replacement(
            rng, list(range(num_slots)), list(slot_weights), num_involved
        )
        return tuple(sorted(chosen))

    chosen: list[int] = []
    available = list(range(num_slots))
    for _ in range(num_involved):
        weights = []
        for slot in available:
            weight = float(slot_weights[slot])
            if any(
                slot in topology.gpus_sharing_switch(done)
                for done in chosen
            ):
                weight *= affinity
            weights.append(weight)
        picked = weighted_sample_without_replacement(
            rng, available, weights, 1
        )[0]
        chosen.append(picked)
        available.remove(picked)
    return tuple(sorted(chosen))
