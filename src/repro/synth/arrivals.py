"""Failure arrival-time processes.

The generator draws inter-arrival gaps from a Weibull renewal process
whose (shape, scale) are solved numerically so the *mean* and the
*75th percentile* of the gap distribution match the paper's Figure 6
targets (MTBF ~15 h with p75 ~20 h on Tsubame-2; MTBF ~72 h with p75
~93 h on Tsubame-3).  Seasonal intensity (Figure 12) is applied by
warping time through a per-month cumulative-intensity function, which
reshapes monthly densities without changing the total count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta
from functools import lru_cache

import numpy as np
from scipy import optimize, special

from repro.errors import CalibrationError, ValidationError

__all__ = [
    "WeibullRenewal",
    "calibrate_weibull",
    "arrival_offsets_hours",
    "MonthlyIntensityWarp",
]

_LN4 = math.log(4.0)


@dataclass(frozen=True)
class WeibullRenewal:
    """A calibrated Weibull inter-arrival distribution."""

    shape: float
    scale: float

    @property
    def mean_hours(self) -> float:
        """Mean of the gap distribution."""
        return self.scale * special.gamma(1.0 + 1.0 / self.shape)

    @property
    def p75_hours(self) -> float:
        """75th percentile of the gap distribution."""
        return self.scale * _LN4 ** (1.0 / self.shape)

    def sample_gaps(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` inter-arrival gaps in hours."""
        if n < 1:
            raise ValidationError(f"n must be positive, got {n}")
        return self.scale * rng.weibull(self.shape, size=n)


@lru_cache(maxsize=256)
def calibrate_weibull(
    mean_hours: float, p75_hours: float
) -> WeibullRenewal:
    """Solve for the Weibull (shape, scale) hitting a mean and a p75.

    The ratio p75/mean pins the shape (it is strictly decreasing in the
    shape parameter), after which the scale follows from the mean.
    The numerical solve (a bounded minimisation plus a Brent root
    find) is cached on the target pair: every Monte-Carlo replication
    of the same profile re-calibrates the same renewal process.

    Raises:
        CalibrationError: If the targets are non-positive or the ratio
            falls outside the attainable range for shapes in
            [0.3, 10.0].
    """
    if mean_hours <= 0 or p75_hours <= 0:
        raise CalibrationError(
            f"calibration targets must be positive, got mean="
            f"{mean_hours}, p75={p75_hours}"
        )
    target_ratio = p75_hours / mean_hours

    def ratio(shape: float) -> float:
        return _LN4 ** (1.0 / shape) / special.gamma(1.0 + 1.0 / shape)

    # The ratio rises from ~0.32 at shape 0.3 to a peak of ~1.396 near
    # shape 1.25, then falls again; most targets are attainable on both
    # sides.  We deliberately solve on the heavy-tail branch (shape
    # below the peak): failure inter-arrivals in the field are
    # over-dispersed (clustered), so shape <= 1-ish is the physical
    # regime.
    low = 0.3
    peak = float(
        optimize.minimize_scalar(
            lambda shape: -ratio(shape), bounds=(low, 3.0), method="bounded"
        ).x
    )
    if not ratio(low) <= target_ratio <= ratio(peak):
        raise CalibrationError(
            f"p75/mean ratio {target_ratio:.3f} is not attainable by a "
            f"Weibull with shape in [{low}, {peak:.2f}] "
            f"(attainable range [{ratio(low):.3f}, {ratio(peak):.3f}])"
        )
    shape = float(
        optimize.brentq(lambda s: ratio(s) - target_ratio, low, peak)
    )
    scale = mean_hours / special.gamma(1.0 + 1.0 / shape)
    return WeibullRenewal(shape=shape, scale=float(scale))


def arrival_offsets_hours(
    rng: np.random.Generator,
    renewal: WeibullRenewal,
    n: int,
    span_hours: float,
    edge_pad_hours: float = 1.0,
) -> np.ndarray:
    """Place ``n`` arrivals in (0, span) with the renewal's gap shape.

    Gaps are sampled from the renewal distribution and the cumulative
    arrival times are then linearly rescaled so the last arrival lands
    at ``span - edge_pad``.  Rescaling is a pure change of scale, so
    the gap distribution's *shape* (and the p75/mean ratio) survives,
    while every generated log exactly fills its observation window —
    which keeps span-based MTBF estimates on target.

    Raises:
        ValidationError: If the span cannot hold n padded arrivals.
    """
    if n < 2:
        raise ValidationError(f"need at least 2 arrivals, got {n}")
    if span_hours <= 2 * edge_pad_hours:
        raise ValidationError(
            f"span {span_hours} h is too short for padding "
            f"{edge_pad_hours} h"
        )
    gaps = renewal.sample_gaps(rng, n)
    # Guard against pathological all-zero draws.
    if gaps.sum() <= 0:
        raise CalibrationError("sampled gaps sum to zero; bad calibration")
    cumulative = np.cumsum(gaps)
    usable = span_hours - 2 * edge_pad_hours
    scaled = edge_pad_hours + usable * cumulative / cumulative[-1]
    return scaled


class MonthlyIntensityWarp:
    """Warp arrival times so monthly densities follow target weights.

    The warp is the inverse of the cumulative intensity
    Lambda(t) = integral of the per-month weight, normalised so the
    window maps onto itself.  Uniformly spread input times come out
    distributed with per-month mass proportional to
    weight(month) x days(month).
    """

    def __init__(
        self,
        window_start: datetime,
        window_end: datetime,
        month_weights: tuple[float, ...],
    ) -> None:
        if len(month_weights) != 12:
            raise ValidationError(
                f"month_weights must have 12 entries, got "
                f"{len(month_weights)}"
            )
        if any(weight <= 0 for weight in month_weights):
            raise ValidationError("month weights must be positive")
        if window_end <= window_start:
            raise ValidationError("window_end must be after window_start")
        self._start = window_start
        self._span_hours = (
            (window_end - window_start).total_seconds() / 3600.0
        )
        # Build the piecewise-constant intensity at month boundaries.
        boundaries = [0.0]
        weights = []
        cursor = window_start
        while cursor < window_end:
            if cursor.month == 12:
                next_month = cursor.replace(
                    year=cursor.year + 1, month=1, day=1,
                    hour=0, minute=0, second=0, microsecond=0,
                )
            else:
                next_month = cursor.replace(
                    month=cursor.month + 1, day=1,
                    hour=0, minute=0, second=0, microsecond=0,
                )
            segment_end = min(next_month, window_end)
            boundaries.append(
                (segment_end - window_start).total_seconds() / 3600.0
            )
            weights.append(month_weights[cursor.month - 1])
            cursor = segment_end
        self._boundaries = np.asarray(boundaries)
        self._weights = np.asarray(weights)
        durations = np.diff(self._boundaries)
        cumulative = np.concatenate(
            ([0.0], np.cumsum(self._weights * durations))
        )
        # Normalise Lambda so it maps [0, span] onto [0, span].
        self._cumulative = cumulative * (self._span_hours / cumulative[-1])

    def warp(self, offsets_hours: np.ndarray) -> np.ndarray:
        """Map input offsets through the inverse cumulative intensity.

        Input and output both live in [0, span]; monotonicity (and
        hence event ordering) is preserved.
        """
        offsets = np.asarray(offsets_hours, dtype=float)
        if np.any(offsets < 0) or np.any(offsets > self._span_hours):
            raise ValidationError(
                "offsets to warp must lie within the observation window"
            )
        return np.interp(offsets, self._cumulative, self._boundaries)

    def to_datetimes(self, offsets_hours: np.ndarray) -> list[datetime]:
        """Convert hour offsets into datetimes from the window start."""
        return [
            self._start + timedelta(hours=float(offset))
            for offset in offsets_hours
        ]
