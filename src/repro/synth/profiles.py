"""Calibration profiles for the synthetic failure traces.

A :class:`MachineProfile` bundles every statistical target the DSN 2021
paper reports for one machine.  Values the paper states explicitly are
used verbatim (category shares for GPU/CPU/SSD/software/power board,
the multi-GPU involvement table, MTBF/MTTR and the TBF p75); values
the paper only shows graphically are plausible reconstructions that
preserve the published shape.  See DESIGN.md section 5 for the full
provenance list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.taxonomy import SOFTWARE_ROOT_LOCI, categories_for
from repro.errors import CalibrationError, ValidationError
from repro.machines.specs import get_machine

__all__ = ["MachineProfile", "TSUBAME2_PROFILE", "TSUBAME3_PROFILE",
           "A100_PROFILE", "H100_PROFILE", "profile_for"]


@dataclass(frozen=True)
class MachineProfile:
    """Statistical targets for one machine's synthetic failure trace.

    Attributes:
        machine: Machine name (must exist in
            :mod:`repro.machines.specs`).
        total_failures: Log size (897 for Tsubame-2, 338 for
            Tsubame-3).
        category_counts: Target count per failure category; must sum to
            ``total_failures`` and every category must exist in the
            machine taxonomy.
        tbf_p75_hours: Target 75th percentile of the time between
            failures (20 h / 93 h in Figure 6).
        mttr_target_hours: Target mean time to recovery (~55 h on both
            machines, Figure 9).
        category_ttr_mean_hours: Mean recovery time per category, in
            hours.  The share-weighted mean lands near the MTTR target;
            the generator can optionally normalise exactly.
        category_ttr_sigma: Lognormal sigma (log-space) per category.
            Hardware categories get larger sigmas than software ones,
            reproducing Figure 10's spread observation.
        node_count_distribution: Probability that an affected node sees
            exactly k failures (Figure 4).
        multi_node_software_share: Fraction of the failures on
            multi-failure nodes that are software failures (~0 on
            Tsubame-2 — 1 of 353; ~0.48 on Tsubame-3 — 95 of 199).
        gpu_slot_weights: Relative failure propensity per GPU slot
            (Figure 5).
        gpu_involvement_counts: Exact Table III counts — number of GPU
            failures involving exactly k GPUs.
        gpu_involvement_unrecorded: GPU failures without recorded
            involvement (the gap between the GPU category count and the
            Table III total: 30 on Tsubame-2, 13 on Tsubame-3).
        burst_continue_probability: Probability that the GPU failure
            following a multi-GPU failure is also multi-GPU, producing
            the Figure 8 temporal clustering.
        month_weights: Relative failure intensity per calendar month
            (Figure 12).
        ttr_month_factors: Multiplicative recovery-time factor per
            calendar month (Figure 11; on Tsubame-2 the second half of
            the year runs higher, on Tsubame-3 it does not).
        root_locus_counts: For Tsubame-3, target counts per software
            root locus (Figure 3); None on Tsubame-2.
        rack_skew_sigma: Log-space sigma of per-rack failure
            propensity.  0 spreads affected nodes uniformly; larger
            values concentrate failures onto a few racks — the
            non-uniform rack distribution the paper's generalizability
            discussion reports.
    """

    machine: str
    total_failures: int
    category_counts: dict[str, int]
    tbf_p75_hours: float
    mttr_target_hours: float
    category_ttr_mean_hours: dict[str, float]
    category_ttr_sigma: dict[str, float]
    node_count_distribution: dict[int, float]
    multi_node_software_share: float
    gpu_slot_weights: tuple[float, ...]
    gpu_involvement_counts: dict[int, int]
    gpu_involvement_unrecorded: int
    burst_continue_probability: float
    month_weights: tuple[float, ...]
    ttr_month_factors: tuple[float, ...]
    root_locus_counts: dict[str, int] | None = field(default=None)
    rack_skew_sigma: float = 0.6

    def __post_init__(self) -> None:
        if self.rack_skew_sigma < 0:
            raise ValidationError(
                f"rack_skew_sigma must be >= 0, got {self.rack_skew_sigma}"
            )
        spec = get_machine(self.machine)
        valid = {cat.name for cat in categories_for(self.machine)}
        if self.total_failures <= 1:
            raise ValidationError(
                f"total_failures must exceed 1, got {self.total_failures}"
            )
        unknown = set(self.category_counts) - valid
        if unknown:
            raise ValidationError(
                f"category_counts references unknown categories "
                f"{sorted(unknown)} for {self.machine}"
            )
        if sum(self.category_counts.values()) != self.total_failures:
            raise CalibrationError(
                f"category counts sum to "
                f"{sum(self.category_counts.values())}, expected "
                f"{self.total_failures}"
            )
        # Zero is legal: rescaled what-if scenarios can round a rare
        # category down to no occurrences.  Negative counts never are.
        bad = {k: v for k, v in self.category_counts.items() if v < 0}
        if bad:
            raise ValidationError(
                f"category_counts must be non-negative; offending "
                f"entries: {bad}"
            )
        if not self.tbf_p75_hours > 0:
            raise ValidationError(
                f"tbf_p75_hours must be strictly positive, got "
                f"{self.tbf_p75_hours!r}"
            )
        if not self.mttr_target_hours > 0:
            raise ValidationError(
                f"mttr_target_hours must be strictly positive, got "
                f"{self.mttr_target_hours!r}"
            )
        for mapping, label in (
            (self.category_ttr_mean_hours, "category_ttr_mean_hours"),
            (self.category_ttr_sigma, "category_ttr_sigma"),
        ):
            missing = set(self.category_counts) - set(mapping)
            if missing:
                raise CalibrationError(
                    f"{label} is missing categories {sorted(missing)}"
                )
        if any(v <= 0 for v in self.category_ttr_mean_hours.values()):
            raise ValidationError(
                "category_ttr_mean_hours entries must be strictly positive"
            )
        if any(v < 0 for v in self.category_ttr_sigma.values()):
            raise ValidationError(
                "category_ttr_sigma entries must be >= 0"
            )
        if any(w <= 0 for w in self.gpu_slot_weights):
            raise ValidationError(
                "gpu_slot_weights entries must be strictly positive"
            )
        if any(p <= 0 for p in self.node_count_distribution.values()):
            raise ValidationError(
                "node_count_distribution probabilities must be strictly "
                "positive"
            )
        if abs(sum(self.node_count_distribution.values()) - 1.0) > 1e-9:
            raise CalibrationError(
                "node_count_distribution probabilities must sum to 1"
            )
        if any(k < 1 for k in self.node_count_distribution):
            raise ValidationError(
                "node_count_distribution keys are failure counts >= 1"
            )
        if not 0.0 <= self.multi_node_software_share <= 1.0:
            raise ValidationError(
                "multi_node_software_share must lie in [0, 1]"
            )
        if len(self.gpu_slot_weights) != spec.gpus_per_node:
            raise CalibrationError(
                f"gpu_slot_weights has {len(self.gpu_slot_weights)} "
                f"entries but {self.machine} nodes carry "
                f"{spec.gpus_per_node} GPUs"
            )
        max_involved = max(
            (k for k, v in self.gpu_involvement_counts.items() if v > 0),
            default=0,
        )
        if max_involved > spec.gpus_per_node:
            raise CalibrationError(
                f"involvement of {max_involved} GPUs exceeds the node's "
                f"{spec.gpus_per_node}"
            )
        gpu_total = (
            sum(self.gpu_involvement_counts.values())
            + self.gpu_involvement_unrecorded
        )
        if gpu_total != self.category_counts.get("GPU", 0):
            raise CalibrationError(
                f"GPU involvement counts ({gpu_total}) must equal the GPU "
                f"category count ({self.category_counts.get('GPU', 0)})"
            )
        if not 0.0 <= self.burst_continue_probability <= 1.0:
            raise ValidationError(
                "burst_continue_probability must lie in [0, 1]"
            )
        for name, series in (
            ("month_weights", self.month_weights),
            ("ttr_month_factors", self.ttr_month_factors),
        ):
            if len(series) != 12:
                raise CalibrationError(f"{name} must have 12 entries")
            if any(value <= 0 for value in series):
                raise CalibrationError(f"{name} entries must be positive")
        if self.root_locus_counts is not None:
            software = self.category_counts.get("Software", 0)
            if sum(self.root_locus_counts.values()) != software:
                raise CalibrationError(
                    f"root locus counts sum to "
                    f"{sum(self.root_locus_counts.values())}, expected the "
                    f"Software category count {software}"
                )
            unknown_loci = set(self.root_locus_counts) - set(
                SOFTWARE_ROOT_LOCI
            )
            if unknown_loci:
                raise CalibrationError(
                    f"unknown software root loci {sorted(unknown_loci)}"
                )

    @property
    def tbf_mean_hours(self) -> float:
        """Implied mean time between failures: span / failures."""
        return get_machine(self.machine).log_span_hours / self.total_failures

    @property
    def mean_failures_per_affected_node(self) -> float:
        """Expected failures per affected node under the Figure 4
        distribution."""
        return sum(
            k * p for k, p in self.node_count_distribution.items()
        )

    def implied_mttr_hours(self) -> float:
        """Share-weighted mean recovery time before normalisation."""
        total = sum(self.category_counts.values())
        return sum(
            count * self.category_ttr_mean_hours[name]
            for name, count in self.category_counts.items()
        ) / total

    def category_share(self, name: str) -> float:
        """Target share of one category."""
        return self.category_counts.get(name, 0) / self.total_failures


def _tsubame2_profile() -> MachineProfile:
    # Target counts over 897 failures.  GPU 44.37%, CPU 1.78% and
    # SSD ~4% are stated in the paper; the remainder reconstructs the
    # Figure 2(a) bars (fan / network / software next most frequent).
    category_counts = {
        "GPU": 398,           # 44.37%
        "FAN": 86,
        "Network": 60,
        "OtherSW": 52,
        "IB": 42,
        "Disk": 38,
        "SSD": 36,            # 4.0%
        "Memory": 30,
        "System Board": 26,
        "PSU": 26,
        "Boot": 22,
        "Down": 18,
        "PBS": 18,
        "OtherHW": 16,
        "CPU": 16,            # 1.78%
        "VM": 8,
        "Rack": 5,
    }
    ttr_means = {
        "GPU": 58.0, "FAN": 35.0, "Network": 40.0, "OtherSW": 25.0,
        "IB": 50.0, "Disk": 60.0, "SSD": 110.0, "Memory": 75.0,
        "System Board": 95.0, "PSU": 65.0, "Boot": 18.0, "Down": 30.0,
        "PBS": 14.0, "OtherHW": 55.0, "CPU": 100.0, "VM": 16.0,
        "Rack": 85.0,
    }
    ttr_sigmas = {
        "GPU": 0.70, "FAN": 0.60, "Network": 0.55, "OtherSW": 0.40,
        "IB": 0.60, "Disk": 0.65, "SSD": 0.50, "Memory": 0.60,
        "System Board": 0.80, "PSU": 0.60, "Boot": 0.35, "Down": 0.40,
        "PBS": 0.30, "OtherHW": 0.70, "CPU": 0.60, "VM": 0.35,
        "Rack": 0.70,
    }
    return MachineProfile(
        machine="tsubame2",
        total_failures=897,
        category_counts=category_counts,
        tbf_p75_hours=20.0,
        mttr_target_hours=55.0,
        category_ttr_mean_hours=ttr_means,
        category_ttr_sigma=ttr_sigmas,
        # ~60% of affected nodes see exactly one failure (Figure 4a).
        node_count_distribution={1: 0.60, 2: 0.11, 3: 0.12, 4: 0.07,
                                 5: 0.05, 6: 0.03, 7: 0.02},
        # 1 software failure out of 353 on multi-failure nodes.
        multi_node_software_share=0.003,
        # GPU 1 sees ~20-25% more failures than GPUs 0 and 2 (Fig 5a).
        # Slot 2's raw weight sits below slot 0's because the topology
        # affinity (GPUs 1 and 2 share an I/O hub) pulls slot 2 into
        # two-GPU failures; the marginals come out 0 ~= 2 < 1.
        gpu_slot_weights=(1.0, 1.7, 0.55),
        # Table III: 112 / 128 / 128 over 368 recorded GPU failures.
        gpu_involvement_counts={1: 112, 2: 128, 3: 128},
        gpu_involvement_unrecorded=30,
        burst_continue_probability=0.60,
        month_weights=(0.80, 0.90, 1.00, 1.10, 1.00, 0.90,
                       1.10, 1.20, 1.30, 1.10, 0.90, 0.70),
        # Second half of the year recovers slower on Tsubame-2 (Fig 11).
        ttr_month_factors=(0.85, 0.80, 0.90, 0.85, 0.90, 0.80,
                           1.20, 1.25, 1.30, 1.20, 1.15, 1.25),
    )


def _tsubame3_profile() -> MachineProfile:
    # Target counts over 338 failures.  Software 50.59%, GPU 27.81%,
    # CPU 3.25% and power board ~1% are stated in the paper.
    category_counts = {
        "Software": 171,      # 50.59%
        "GPU": 94,            # 27.81%
        "CPU": 11,            # 3.25%
        "Omni-Path": 10,
        "Disk": 9,
        "Memory": 8,
        "Lustre": 6,
        "Unknown": 6,
        "GPUDriver": 5,
        "CRC": 4,
        "SXM2-Board": 4,
        "Power-Board": 3,     # 0.89%
        "SXM2_Cable": 3,
        "IP": 2,
        "Ribbon Cable": 1,
        "Led Front Panel": 1,
    }
    ttr_means = {
        "Software": 38.0, "GPU": 70.0, "CPU": 95.0, "Omni-Path": 60.0,
        "Disk": 65.0, "Memory": 80.0, "Lustre": 30.0, "Unknown": 45.0,
        "GPUDriver": 22.0, "CRC": 40.0, "SXM2-Board": 100.0,
        "Power-Board": 155.0, "SXM2_Cable": 75.0, "IP": 110.0,
        "Ribbon Cable": 60.0, "Led Front Panel": 25.0,
    }
    ttr_sigmas = {
        "Software": 0.40, "GPU": 0.70, "CPU": 0.60, "Omni-Path": 0.60,
        "Disk": 0.65, "Memory": 0.60, "Lustre": 0.40, "Unknown": 0.50,
        "GPUDriver": 0.35, "CRC": 0.55, "SXM2-Board": 0.70,
        "Power-Board": 0.50, "SXM2_Cable": 0.60, "IP": 0.60,
        "Ribbon Cable": 0.50, "Led Front Panel": 0.40,
    }
    # Figure 3: ~43% GPU-driver-related, ~20% unknown, 14 further loci
    # with decreasing counts; 171 loci in total.
    root_locus_counts = {
        "gpu_driver": 74,             # 43.3%
        "unknown": 34,                # 19.9%
        "cuda_version_mismatch": 9,
        "omnipath_driver": 8,
        "gpu_direct": 7,
        "mpi_library": 6,
        "batch_script": 5,
        "filesystem_client": 5,
        "nfs_mount": 4,
        "container_runtime": 4,
        "python_stack": 4,
        "memory_leak": 3,
        "firmware_mismatch": 3,
        "license_server": 2,
        "lustre_bug": 2,              # kernel panics and lustre bugs
        "kernel_panic": 1,            # are rare (Section III, RQ1)
    }
    return MachineProfile(
        machine="tsubame3",
        total_failures=338,
        category_counts=category_counts,
        tbf_p75_hours=93.0,
        mttr_target_hours=55.0,
        category_ttr_mean_hours=ttr_means,
        category_ttr_sigma=ttr_sigmas,
        # ~60% of affected nodes see more than one failure (Figure 4b);
        # the three-failure share is ~50% higher than Tsubame-2's.
        node_count_distribution={1: 0.40, 2: 0.10, 3: 0.18, 4: 0.12,
                                 5: 0.09, 6: 0.06, 7: 0.03, 8: 0.02},
        # 95 software vs 104 hardware failures on multi-failure nodes.
        multi_node_software_share=0.48,
        # GPUs 0 and 3 fail considerably more than 1 and 2 (Fig 5b).
        gpu_slot_weights=(1.45, 0.80, 0.80, 1.45),
        # Table III: 75 / 4 / 2 / 0 over 81 recorded GPU failures.
        gpu_involvement_counts={1: 75, 2: 4, 3: 2, 4: 0},
        gpu_involvement_unrecorded=13,
        # Tsubame-3 has only 6 multi-GPU failures; a high continuation
        # probability is needed for them to visibly chain (Figure 8).
        burst_continue_probability=0.95,
        month_weights=(1.05, 0.95, 1.10, 1.00, 1.15, 1.05,
                       0.85, 0.90, 1.00, 1.10, 0.85, 0.80),
        # No seasonal recovery trend on Tsubame-3 (Figure 11b).
        ttr_month_factors=(1.0,) * 12,
        root_locus_counts=root_locus_counts,
    )


def _a100_profile() -> MachineProfile:
    # Target counts over 5840 failures in a one-year window (fleet MTBF
    # ~1.5 h, per-node MTBF ~1536 h).  The ~60% GPU-incident share and
    # the ECC/HBM/NVLink split follow Meta's Llama-3 fleet study
    # (arXiv:2410.21680 Table 3: GPU and HBM faults dominate hardware
    # interruptions) and the A100 half of arXiv:2503.11901.
    category_counts = {
        "GPU": 1170,          # 20.0% — "fell off the bus", Xid faults
        "GPU-ECC": 880,       # 15.1% — uncorrectable double-bit ECC
        "GPU-HBM": 610,       # 10.4% — HBM2e row-remap exhaustion
        "NVLink": 730,        # 12.5% — NVLink/NVSwitch lane errors
        "GPUDriver": 640,     # 11.0% — driver/CUDA runtime faults
        "IB": 380,
        "Network": 230,
        "CPU": 90,
        "Memory": 310,
        "SSD": 120,
        "PSU": 110,
        "System Board": 100,
        "Thermal": 85,
        "Filesystem": 175,
        "Scheduler": 95,
        "OtherSW": 70,
        "Unknown": 45,
    }
    ttr_means = {
        "GPU": 18.0, "GPU-ECC": 6.0, "GPU-HBM": 48.0, "NVLink": 12.0,
        "GPUDriver": 2.5, "IB": 10.0, "Network": 8.0, "CPU": 72.0,
        "Memory": 36.0, "SSD": 24.0, "PSU": 30.0, "System Board": 96.0,
        "Thermal": 14.0, "Filesystem": 5.0, "Scheduler": 3.0,
        "OtherSW": 4.0, "Unknown": 9.0,
    }
    ttr_sigmas = {
        "GPU": 0.70, "GPU-ECC": 0.45, "GPU-HBM": 0.65, "NVLink": 0.55,
        "GPUDriver": 0.35, "IB": 0.55, "Network": 0.50, "CPU": 0.60,
        "Memory": 0.60, "SSD": 0.50, "PSU": 0.55, "System Board": 0.75,
        "Thermal": 0.50, "Filesystem": 0.40, "Scheduler": 0.30,
        "OtherSW": 0.40, "Unknown": 0.50,
    }
    return MachineProfile(
        machine="a100",
        total_failures=5840,
        category_counts=category_counts,
        # Fleet-level TBF mean is 1.5 h; the p75 ratio (~1.27x) keeps
        # the Weibull calibration on its mildly heavy-tailed branch.
        tbf_p75_hours=1.9,
        mttr_target_hours=18.5,
        category_ttr_mean_hours=ttr_means,
        category_ttr_sigma=ttr_sigmas,
        # At a 1.5 h fleet MTBF over a year, essentially every node
        # fails repeatedly (5840 failures / 1024 nodes ~ 5.7 mean);
        # the tail mirrors the "sick node" repeat offenders Meta
        # reports (mean ~6.3 failures per affected node).
        node_count_distribution={1: 0.05, 2: 0.07, 3: 0.09, 4: 0.11,
                                 5: 0.12, 6: 0.12, 7: 0.11, 8: 0.10,
                                 9: 0.08, 10: 0.06, 12: 0.05, 14: 0.03,
                                 16: 0.01},
        multi_node_software_share=0.35,
        # Mild positional skew across the 8 SXM sockets: the corner
        # sockets near the power stages run hotter.
        gpu_slot_weights=(1.1, 0.95, 1.0, 0.9, 1.05, 0.95, 1.0, 1.15),
        # Most GPU failures take out a single card; full-board (8-GPU)
        # events are rare but present (baseboard-level faults).
        gpu_involvement_counts={1: 920, 2: 130, 3: 40, 4: 20, 8: 10},
        gpu_involvement_unrecorded=50,
        burst_continue_probability=0.55,
        month_weights=(0.95, 0.95, 1.00, 1.05, 1.10, 1.05,
                       1.10, 1.05, 1.00, 0.95, 0.90, 0.90),
        ttr_month_factors=(1.0,) * 12,
        rack_skew_sigma=0.4,
    )


def _h100_profile() -> MachineProfile:
    # Target counts over 3660 failures in a one-year window (fleet MTBF
    # ~2.4 h over 512 nodes, per-node MTBF ~1229 h).  The higher
    # ECC/HBM3 share and the new GSP firmware category follow the H100
    # characterization in arXiv:2503.11901; operational rates
    # cross-checked against the 504-GPU report (arXiv:2605.09370).
    category_counts = {
        "GPU": 660,           # 18.0%
        "GPU-ECC": 620,       # 16.9% — HBM3 uncorrectable errors rise
        "GPU-HBM": 450,       # 12.3%
        "NVLink": 400,        # 10.9%
        "GSP": 290,           # 7.9% — GSP firmware hangs (H100-new)
        "GPUDriver": 330,
        "IB": 230,
        "Network": 130,
        "CPU": 45,
        "Memory": 150,
        "SSD": 60,
        "PSU": 65,
        "System Board": 55,
        "Thermal": 70,
        "Filesystem": 60,
        "Scheduler": 20,
        "OtherSW": 15,
        "Unknown": 10,
    }
    ttr_means = {
        "GPU": 15.0, "GPU-ECC": 4.0, "GPU-HBM": 40.0, "NVLink": 10.0,
        "GSP": 1.5, "GPUDriver": 2.0, "IB": 9.0, "Network": 7.0,
        "CPU": 60.0, "Memory": 30.0, "SSD": 20.0, "PSU": 28.0,
        "System Board": 80.0, "Thermal": 12.0, "Filesystem": 4.0,
        "Scheduler": 2.5, "OtherSW": 3.5, "Unknown": 8.0,
    }
    ttr_sigmas = {
        "GPU": 0.70, "GPU-ECC": 0.45, "GPU-HBM": 0.65, "NVLink": 0.55,
        "GSP": 0.25, "GPUDriver": 0.35, "IB": 0.55, "Network": 0.50,
        "CPU": 0.60, "Memory": 0.60, "SSD": 0.50, "PSU": 0.55,
        "System Board": 0.75, "Thermal": 0.50, "Filesystem": 0.40,
        "Scheduler": 0.30, "OtherSW": 0.40, "Unknown": 0.50,
    }
    return MachineProfile(
        machine="h100",
        total_failures=3660,
        category_counts=category_counts,
        # Mean TBF 2.39 h; p75 ~1.3x the mean.
        tbf_p75_hours=3.1,
        mttr_target_hours=14.8,
        category_ttr_mean_hours=ttr_means,
        category_ttr_sigma=ttr_sigmas,
        # 3660 failures over 512 nodes forces a mean of ~7.1 failures
        # per node; this distribution's mean is ~8.2 per affected node.
        node_count_distribution={1: 0.03, 2: 0.03, 3: 0.05, 4: 0.06,
                                 5: 0.08, 6: 0.10, 7: 0.11, 8: 0.11,
                                 9: 0.10, 10: 0.09, 12: 0.10, 14: 0.08,
                                 16: 0.06},
        multi_node_software_share=0.40,
        gpu_slot_weights=(1.1, 0.95, 1.0, 0.9, 1.05, 0.95, 1.0, 1.15),
        gpu_involvement_counts={1: 500, 2: 70, 3: 25, 4: 20, 8: 15},
        gpu_involvement_unrecorded=30,
        burst_continue_probability=0.50,
        month_weights=(0.95, 0.95, 1.00, 1.05, 1.10, 1.05,
                       1.10, 1.05, 1.00, 0.95, 0.90, 0.90),
        ttr_month_factors=(1.0,) * 12,
        rack_skew_sigma=0.35,
    )


TSUBAME2_PROFILE = _tsubame2_profile()
TSUBAME3_PROFILE = _tsubame3_profile()
A100_PROFILE = _a100_profile()
H100_PROFILE = _h100_profile()

_PROFILES = {
    "tsubame2": TSUBAME2_PROFILE,
    "tsubame3": TSUBAME3_PROFILE,
    "a100": A100_PROFILE,
    "h100": H100_PROFILE,
}


@lru_cache(maxsize=None)
def profile_for(machine: str) -> MachineProfile:
    """Return the calibrated profile for a machine.

    Cached: profiles are frozen and looked up on every simulator /
    generator construction, which Monte-Carlo replication multiplies
    by the replication count.

    Raises:
        CalibrationError: If no profile exists for the machine.
    """
    try:
        return _PROFILES[machine]
    except KeyError:
        raise CalibrationError(
            f"no calibration profile for machine {machine!r}; known: "
            f"{sorted(_PROFILES)}"
        ) from None
