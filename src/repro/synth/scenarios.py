"""Scenario library: derived calibration profiles for what-if studies.

The paper's implications invite extrapolation: "the number of GPUs per
node is likely to increase [24], [25]" (RQ3), software failures are
growing (RQ1), and operational practice (health tests, proactive
replacement) is what contained multi-GPU failures on Tsubame-3.  Each
scenario here derives a new :class:`MachineProfile` from a published
one by a controlled, documented transformation, so the analysis
pipeline can answer counterfactuals with the same machinery it uses
for the historical logs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.records import FailureLog
from repro.errors import CalibrationError
from repro.parallel import sweep
from repro.synth.profiles import MachineProfile
from repro.synth.sampling import allocate_counts

__all__ = [
    "replicate_scenario",
    "with_failure_rate_scaled",
    "with_operational_practices_of",
    "with_software_share",
]


def _generate_seeded(task: tuple[MachineProfile, int]) -> FailureLog:
    """Generate one scenario log — module-level for the process pool."""
    # Imported here to avoid a circular import at package load time
    # (generator -> profiles -> ... while scenarios loads).
    from repro.synth.generator import GeneratorConfig, TraceGenerator

    profile, seed = task
    return TraceGenerator(profile, GeneratorConfig(seed=seed)).generate()


def replicate_scenario(
    profile: MachineProfile,
    seeds: tuple[int, ...],
    processes: int | None = None,
) -> list[FailureLog]:
    """Generate one log per seed for a (possibly derived) profile.

    The Monte-Carlo companion to the single-seed what-if studies: run
    the same scenario under many seeds and aggregate, so a conclusion
    ("the multi-GPU share collapses under T3 practices") is a
    distribution rather than one draw.  Replication is spread over
    worker processes via :func:`repro.parallel.sweep`; the returned
    logs are seed-ordered and bit-identical to the serial loop.

    Raises:
        CalibrationError: If no seeds are given.
    """
    if not seeds:
        raise CalibrationError("replicate_scenario needs at least one seed")
    return sweep(
        _generate_seeded,
        [(profile, seed) for seed in seeds],
        processes=processes,
    )


def with_failure_rate_scaled(
    profile: MachineProfile, factor: float
) -> MachineProfile:
    """Scale a profile's overall failure rate by ``factor``.

    The observation window is fixed, so the log size scales; the
    category mix, involvement shares and every other target are
    preserved proportionally.  Use factors > 1 for stress scenarios
    (e.g. end-of-life hardware) and < 1 for optimistic ones.

    Raises:
        CalibrationError: If the scaled log would be too small.
    """
    if factor <= 0:
        raise CalibrationError(f"factor must be positive, got {factor}")
    total = int(round(profile.total_failures * factor))
    if total < 10:
        raise CalibrationError(
            f"scaled log of {total} failures is too small to calibrate"
        )
    category_counts = allocate_counts(
        {k: float(v) for k, v in profile.category_counts.items()}, total
    )
    gpu_total = category_counts.get("GPU", 0)
    involvement_weights = {
        str(k): float(v) for k, v in profile.gpu_involvement_counts.items()
    }
    involvement_weights["0"] = float(profile.gpu_involvement_unrecorded)
    scaled_involvement = allocate_counts(involvement_weights, gpu_total)
    unrecorded = scaled_involvement.pop("0")
    root_locus_counts = profile.root_locus_counts
    if root_locus_counts is not None:
        root_locus_counts = allocate_counts(
            {k: float(v) for k, v in root_locus_counts.items()},
            category_counts.get("Software", 0),
        )
    # p75 scales with the mean gap (shape preserved).
    p75 = profile.tbf_p75_hours * profile.total_failures / total
    return replace(
        profile,
        total_failures=total,
        category_counts=category_counts,
        gpu_involvement_counts={
            int(k): v for k, v in scaled_involvement.items()
        },
        gpu_involvement_unrecorded=unrecorded,
        tbf_p75_hours=p75,
        root_locus_counts=root_locus_counts,
    )


def with_operational_practices_of(
    profile: MachineProfile, donor: MachineProfile
) -> MachineProfile:
    """Transplant a donor's multi-GPU operational practice.

    RQ3 attributes Tsubame-3's collapse in simultaneous multi-GPU
    failures to operational practice (health tests for multi-GPU
    cards, proactive replacement, better-debugged multi-GPU jobs), not
    hardware.  This scenario keeps the base profile's rates and mixes
    but adopts the donor's involvement *shares* and burst behaviour,
    answering "what would Tsubame-2's Table III have looked like under
    Tsubame-3's practices?".

    Involvement beyond the base machine's GPU count folds into the
    largest feasible bucket.

    Raises:
        CalibrationError: If either profile lacks GPU failures.
    """
    base_gpu = profile.category_counts.get("GPU", 0)
    donor_total = (
        sum(donor.gpu_involvement_counts.values())
        + donor.gpu_involvement_unrecorded
    )
    if base_gpu == 0 or donor_total == 0:
        raise CalibrationError(
            "both profiles need GPU failures to transplant practices"
        )
    max_slots = len(profile.gpu_slot_weights)
    weights: dict[str, float] = {
        "0": float(donor.gpu_involvement_unrecorded)
    }
    for k, count in donor.gpu_involvement_counts.items():
        bucket = str(min(k, max_slots))
        weights[bucket] = weights.get(bucket, 0.0) + float(count)
    scaled = allocate_counts(weights, base_gpu)
    unrecorded = scaled.pop("0", 0)
    return replace(
        profile,
        gpu_involvement_counts={int(k): v for k, v in scaled.items()},
        gpu_involvement_unrecorded=unrecorded,
        burst_continue_probability=donor.burst_continue_probability,
    )


def with_software_share(
    profile: MachineProfile, software_share: float,
    software_category: str = "OtherSW",
) -> MachineProfile:
    """Grow (or shrink) the software share of a profile's failures.

    RQ1's trend — software becoming the dominant failure type as AI/ML
    workloads arrive — extended to arbitrary shares.  The total failure
    count is preserved; the software category absorbs/releases counts
    and all other categories rescale proportionally.

    Raises:
        CalibrationError: On an unattainable share or unknown category.
    """
    if not 0.0 <= software_share < 1.0:
        raise CalibrationError(
            f"software_share must lie in [0, 1), got {software_share}"
        )
    if software_category not in profile.category_counts:
        raise CalibrationError(
            f"profile has no category {software_category!r}"
        )
    total = profile.total_failures
    software_count = int(round(software_share * total))
    others = {
        name: float(count)
        for name, count in profile.category_counts.items()
        if name != software_category
    }
    if not others or all(v == 0 for v in others.values()):
        raise CalibrationError(
            "profile needs non-software categories to rescale"
        )
    scaled_others = allocate_counts(others, total - software_count)
    category_counts = dict(scaled_others)
    category_counts[software_category] = software_count

    # GPU involvement must keep matching the (possibly changed) GPU
    # category count.
    gpu_total = category_counts.get("GPU", 0)
    involvement_weights = {
        str(k): float(v) for k, v in profile.gpu_involvement_counts.items()
    }
    involvement_weights["0"] = float(profile.gpu_involvement_unrecorded)
    scaled_involvement = allocate_counts(involvement_weights, gpu_total)
    unrecorded = scaled_involvement.pop("0")

    root_locus_counts = profile.root_locus_counts
    if root_locus_counts is not None and software_category == "Software":
        root_locus_counts = allocate_counts(
            {k: float(v) for k, v in root_locus_counts.items()},
            software_count,
        )
    return replace(
        profile,
        category_counts=category_counts,
        gpu_involvement_counts={
            int(k): v for k, v in scaled_involvement.items()
        },
        gpu_involvement_unrecorded=unrecorded,
        root_locus_counts=root_locus_counts,
    )
