"""Rack layout: mapping nodes to racks.

The paper's generalizability discussion notes that "the non-uniform
distribution of failures among racks is also present in
multi-GPU-per-node systems".  A :class:`RackLayout` gives every node a
rack, enabling the rack-level spatial analysis in
:mod:`repro.core.spatial` and rack-skewed placement in the generator.

Tsubame-2 housed its 1408 thin nodes in 44-rack rows (32 nodes per
rack); Tsubame-3 packs 540 nodes into 20 SGI ICE XA racks (27 per
rack).  Exact historical racking is not public; these layouts preserve
the fleet sizes and realistic rack granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import MachineError
from repro.machines.specs import get_machine

__all__ = ["RackLayout", "rack_layout_for"]


@dataclass(frozen=True)
class RackLayout:
    """Assignment of node ids to racks.

    Nodes are racked contiguously: rack r holds nodes
    [r * nodes_per_rack, (r+1) * nodes_per_rack), with the final rack
    possibly short.
    """

    machine: str
    num_nodes: int
    nodes_per_rack: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise MachineError(
                f"num_nodes must be positive, got {self.num_nodes}"
            )
        if self.nodes_per_rack < 1:
            raise MachineError(
                f"nodes_per_rack must be positive, got "
                f"{self.nodes_per_rack}"
            )

    @property
    def num_racks(self) -> int:
        """Number of racks (last one may be partially filled)."""
        return -(-self.num_nodes // self.nodes_per_rack)

    def rack_of(self, node_id: int) -> int:
        """Return the rack index of a node.

        Raises:
            MachineError: On an out-of-range node id.
        """
        if not 0 <= node_id < self.num_nodes:
            raise MachineError(
                f"node id {node_id} out of range [0, {self.num_nodes})"
            )
        return node_id // self.nodes_per_rack

    def nodes_in_rack(self, rack_id: int) -> range:
        """Return the node-id range of one rack.

        Raises:
            MachineError: On an out-of-range rack id.
        """
        if not 0 <= rack_id < self.num_racks:
            raise MachineError(
                f"rack id {rack_id} out of range [0, {self.num_racks})"
            )
        start = rack_id * self.nodes_per_rack
        end = min(start + self.nodes_per_rack, self.num_nodes)
        return range(start, end)

    def rack_size(self, rack_id: int) -> int:
        """Number of nodes in one rack."""
        return len(self.nodes_in_rack(rack_id))


_NODES_PER_RACK = {
    "tsubame2": 32,
    "tsubame3": 27,
    # Dense HGX chassis draw ~6-10 kW each; power/cooling caps the
    # modern fleets well below the Tsubame-era rack densities.
    "a100": 16,
    "h100": 8,
}


@lru_cache(maxsize=None)
def rack_layout_for(machine: str) -> RackLayout:
    """Return the rack layout for a machine.

    Cached: the layout is frozen and re-requested by every
    :class:`~repro.synth.generator.TraceGenerator` construction.

    Raises:
        MachineError: If the machine is unknown.
    """
    spec = get_machine(machine)
    nodes_per_rack = _NODES_PER_RACK.get(machine)
    if nodes_per_rack is None:
        raise MachineError(f"no rack layout for machine {machine!r}")
    return RackLayout(
        machine=machine,
        num_nodes=spec.num_nodes,
        nodes_per_rack=nodes_per_rack,
    )
