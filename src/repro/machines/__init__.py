"""Machine models for the Tsubame supercomputers.

This package encodes Table I (node configurations), Figure 1 (node
topologies) and the fleet-level component inventory the paper's MTBF
normalisation argument relies on ("7040 for Tsubame-2 and 3240 for
Tsubame-3").
"""

from repro.machines.components import Component, ComponentKind
from repro.machines.racks import RackLayout, rack_layout_for
from repro.machines.specs import (
    MachineSpec,
    TSUBAME2,
    TSUBAME3,
    get_machine,
    known_machines,
)
from repro.machines.topology import NodeTopology, build_node_topology

__all__ = [
    "Component",
    "ComponentKind",
    "MachineSpec",
    "NodeTopology",
    "RackLayout",
    "TSUBAME2",
    "TSUBAME3",
    "build_node_topology",
    "get_machine",
    "known_machines",
    "rack_layout_for",
]
