"""Node topology graphs (Figure 1).

The paper's Figure 1 sketches the hardware topology of a compute node
on each machine.  We model it as an undirected networkx graph whose
vertices are :class:`~repro.machines.components.Component` names:

* **Tsubame-2**: two Westmere sockets; GPU 0 hangs off CPU 0's I/O hub,
  GPUs 1 and 2 off CPU 1's; one InfiniBand NIC (2 ports) per I/O hub.
* **Tsubame-3**: two Broadwell sockets, each feeding a PLX PCIe switch;
  each switch connects two SXM2 P100s; the four GPUs are additionally
  fully meshed with NVLink; four Omni-Path ports, two per switch.

Topology queries back the spatial analyses: GPU slots that share a
switch/socket form natural correlation domains for simultaneous
multi-GPU failures (RQ3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import networkx as nx

from repro.errors import MachineError
from repro.machines.components import Component, ComponentKind
from repro.machines.specs import MachineSpec, get_machine

__all__ = ["NodeTopology", "build_node_topology"]


@dataclass(frozen=True)
class NodeTopology:
    """A node's hardware topology graph with convenience queries."""

    machine: str
    graph: nx.Graph = field(repr=False)

    def components(self, kind: ComponentKind) -> list[Component]:
        """Return all components of one kind, sorted by slot."""
        found = [
            data["component"]
            for _, data in self.graph.nodes(data=True)
            if data["component"].kind is kind
        ]
        return sorted(found, key=lambda c: c.slot)

    @property
    def gpu_slots(self) -> tuple[int, ...]:
        """GPU slot indices present in the topology."""
        return tuple(c.slot for c in self.components(ComponentKind.GPU))

    def gpus_sharing_switch(self, gpu_slot: int) -> tuple[int, ...]:
        """Return GPU slots reachable from ``gpu_slot`` through one
        PCIe switch or I/O hub (including the slot itself).

        These are the slots most likely to fail together through a
        shared bus — the "fallen off the bus" multi-GPU failure mode
        the paper reports.
        """
        name = f"gpu{gpu_slot}"
        if name not in self.graph:
            raise MachineError(
                f"no GPU slot {gpu_slot} on machine {self.machine!r}"
            )
        shared: set[int] = set()
        for neighbor in self.graph.neighbors(name):
            kind = self.graph.nodes[neighbor]["component"].kind
            if kind not in (ComponentKind.PCIE_SWITCH, ComponentKind.CPU):
                continue
            for peer in self.graph.neighbors(neighbor):
                component = self.graph.nodes[peer]["component"]
                if component.kind is ComponentKind.GPU:
                    shared.add(component.slot)
        return tuple(sorted(shared))

    def nvlink_peers(self, gpu_slot: int) -> tuple[int, ...]:
        """Return GPU slots directly linked to ``gpu_slot`` by NVLink."""
        name = f"gpu{gpu_slot}"
        if name not in self.graph:
            raise MachineError(
                f"no GPU slot {gpu_slot} on machine {self.machine!r}"
            )
        peers = []
        for neighbor in self.graph.neighbors(name):
            component = self.graph.nodes[neighbor]["component"]
            if component.kind is ComponentKind.GPU:
                peers.append(component.slot)
        return tuple(sorted(peers))

    def hop_distance(self, first_gpu: int, second_gpu: int) -> int:
        """Shortest-path hop count between two GPU slots."""
        src, dst = f"gpu{first_gpu}", f"gpu{second_gpu}"
        for name in (src, dst):
            if name not in self.graph:
                raise MachineError(
                    f"no component {name!r} on machine {self.machine!r}"
                )
        return int(nx.shortest_path_length(self.graph, src, dst))


def _add(graph: nx.Graph, component: Component) -> str:
    graph.add_node(component.name, component=component)
    return component.name


def _build_tsubame2(spec: MachineSpec) -> nx.Graph:
    graph = nx.Graph()
    board = _add(graph, Component(ComponentKind.SYSTEM_BOARD, 0, "HP SL390s"))
    cpus = [
        _add(graph, Component(ComponentKind.CPU, i, spec.cpu_model))
        for i in range(spec.cpus_per_node)
    ]
    memories = [
        _add(graph, Component(ComponentKind.MEMORY, i, f"{spec.memory_gb}GB"))
        for i in range(spec.cpus_per_node)
    ]
    # I/O hubs stand in for the Westmere-era Tylersburg chipset.
    hubs = [
        _add(graph, Component(ComponentKind.PCIE_SWITCH, i, "Tylersburg IOH"))
        for i in range(2)
    ]
    gpus = [
        _add(graph, Component(ComponentKind.GPU, i, spec.gpu_model))
        for i in range(spec.gpus_per_node)
    ]
    nics = [
        _add(graph, Component(ComponentKind.NIC, i, "4X QDR InfiniBand"))
        for i in range(2)
    ]
    ssd = _add(graph, Component(ComponentKind.SSD, 0, spec.ssd))

    for cpu, memory, hub in zip(cpus, memories, hubs):
        graph.add_edge(board, cpu)
        graph.add_edge(cpu, memory)
        graph.add_edge(cpu, hub)
    graph.add_edge(cpus[0], cpus[1])  # QPI
    # GPU 0 on socket 0's hub; GPUs 1 and 2 on socket 1's hub.
    graph.add_edge(hubs[0], gpus[0])
    graph.add_edge(hubs[1], gpus[1])
    graph.add_edge(hubs[1], gpus[2])
    graph.add_edge(hubs[0], nics[0])
    graph.add_edge(hubs[1], nics[1])
    graph.add_edge(hubs[0], ssd)
    return graph


def _build_tsubame3(spec: MachineSpec) -> nx.Graph:
    graph = nx.Graph()
    board = _add(graph, Component(ComponentKind.SYSTEM_BOARD, 0,
                                  "SGI ICE XA"))
    cpus = [
        _add(graph, Component(ComponentKind.CPU, i, spec.cpu_model))
        for i in range(spec.cpus_per_node)
    ]
    memories = [
        _add(graph, Component(ComponentKind.MEMORY, i, f"{spec.memory_gb}GB"))
        for i in range(spec.cpus_per_node)
    ]
    switches = [
        _add(graph, Component(ComponentKind.PCIE_SWITCH, i, "PLX PEX9700"))
        for i in range(2)
    ]
    gpus = [
        _add(graph, Component(ComponentKind.GPU, i, spec.gpu_model))
        for i in range(spec.gpus_per_node)
    ]
    nics = [
        _add(graph, Component(ComponentKind.NIC, i, "Omni-Path HFI 100Gbps"))
        for i in range(4)
    ]
    ssd = _add(graph, Component(ComponentKind.SSD, 0, spec.ssd))

    for cpu, memory, switch in zip(cpus, memories, switches):
        graph.add_edge(board, cpu)
        graph.add_edge(cpu, memory)
        graph.add_edge(cpu, switch)
    graph.add_edge(cpus[0], cpus[1])  # QPI
    # Each PLX switch feeds two SXM2 GPUs: {0, 1} and {2, 3}.
    graph.add_edge(switches[0], gpus[0])
    graph.add_edge(switches[0], gpus[1])
    graph.add_edge(switches[1], gpus[2])
    graph.add_edge(switches[1], gpus[3])
    # NVLink full mesh among the four P100s.
    for i in range(4):
        for j in range(i + 1, 4):
            graph.add_edge(gpus[i], gpus[j], link="nvlink")
    # Two Omni-Path ports per switch.
    graph.add_edge(switches[0], nics[0])
    graph.add_edge(switches[0], nics[1])
    graph.add_edge(switches[1], nics[2])
    graph.add_edge(switches[1], nics[3])
    graph.add_edge(switches[0], ssd)
    return graph


def _build_hgx(spec: MachineSpec) -> nx.Graph:
    """Shared builder for the 8-GPU HGX baseboards (A100 and H100).

    Two sockets, four PCIe switches (two per socket), two GPUs per
    switch, a NIC per GPU for the rail-optimized fabric, and an
    NVLink/NVSwitch full mesh across all eight SXM sockets.
    """
    graph = nx.Graph()
    board = _add(graph, Component(ComponentKind.SYSTEM_BOARD, 0,
                                  "HGX baseboard"))
    cpus = [
        _add(graph, Component(ComponentKind.CPU, i, spec.cpu_model))
        for i in range(spec.cpus_per_node)
    ]
    memories = [
        _add(graph, Component(ComponentKind.MEMORY, i, f"{spec.memory_gb}GB"))
        for i in range(spec.cpus_per_node)
    ]
    switches = [
        _add(graph, Component(ComponentKind.PCIE_SWITCH, i, "PCIe switch"))
        for i in range(4)
    ]
    gpus = [
        _add(graph, Component(ComponentKind.GPU, i, spec.gpu_model))
        for i in range(spec.gpus_per_node)
    ]
    nics = [
        _add(graph, Component(ComponentKind.NIC, i, spec.interconnect))
        for i in range(spec.gpus_per_node)
    ]
    ssd = _add(graph, Component(ComponentKind.SSD, 0, spec.ssd))

    for cpu, memory in zip(cpus, memories):
        graph.add_edge(board, cpu)
        graph.add_edge(cpu, memory)
    graph.add_edge(cpus[0], cpus[1])  # socket interconnect
    # Two PCIe switches per socket; two GPUs and two NICs per switch.
    for index, switch in enumerate(switches):
        graph.add_edge(cpus[index // 2], switch)
        graph.add_edge(switch, gpus[2 * index])
        graph.add_edge(switch, gpus[2 * index + 1])
        graph.add_edge(switch, nics[2 * index])
        graph.add_edge(switch, nics[2 * index + 1])
    # NVSwitch-backed NVLink full mesh among the eight SXM GPUs.
    for i in range(spec.gpus_per_node):
        for j in range(i + 1, spec.gpus_per_node):
            graph.add_edge(gpus[i], gpus[j], link="nvlink")
    graph.add_edge(switches[0], ssd)
    return graph


_BUILDERS = {
    "tsubame2": _build_tsubame2,
    "tsubame3": _build_tsubame3,
    "a100": _build_hgx,
    "h100": _build_hgx,
}


@lru_cache(maxsize=None)
def build_node_topology(machine: str) -> NodeTopology:
    """Build the Figure 1 node topology for ``machine``.

    Cached: the networkx graph build is by far the most expensive of
    the per-replication constructor lookups, and the returned topology
    is treated as read-only everywhere (callers must not mutate
    ``.graph``).

    Raises:
        MachineError: If the machine is unknown.
    """
    spec = get_machine(machine)
    builder = _BUILDERS.get(machine)
    if builder is None:
        raise MachineError(f"no topology builder for machine {machine!r}")
    return NodeTopology(machine=machine, graph=builder(spec))
