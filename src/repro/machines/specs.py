"""Machine specifications for the modelled fleets.

Tsubame-2 and Tsubame-3 mirror Table I of the source paper.  The A100
and H100 HGX fleets extend the study to modern multi-GPU AI clusters,
calibrated against the published reliability numbers in Meta's
large-scale training study (arXiv:2410.21680), the H100/A100 GPU
resilience characterization (arXiv:2503.11901), and the 504-GPU LLM
pre-training operations report (arXiv:2605.09370); see
docs/CALIBRATION.md for the per-number sources.

The spec carries everything the paper's system-level arguments use:
per-node CPU/GPU counts (for the component-inventory normalisation of
the MTBF comparison), node counts, and the theoretical peak performance
(Rpeak) used by the *performance-error-proportionality* metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from functools import lru_cache

from repro.errors import MachineError

__all__ = [
    "MachineSpec",
    "TSUBAME2",
    "TSUBAME3",
    "A100",
    "H100",
    "get_machine",
    "known_machines",
]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one Tsubame generation.

    Attributes mirror Table I of the paper plus the fleet-level facts
    quoted in the text (node count, Rpeak, log observation window).
    """

    name: str
    display_name: str
    cpu_model: str
    cpu_cores: int
    cpu_threads: int
    cpus_per_node: int
    memory_gb: int
    gpu_model: str
    gpus_per_node: int
    ssd: str
    interconnect: str
    num_nodes: int
    rpeak_pflops: float
    power_mw: float
    log_start: datetime
    log_end: datetime
    reported_failures: int

    def __post_init__(self) -> None:
        for field_name in ("cpu_cores", "cpu_threads", "cpus_per_node",
                           "memory_gb", "gpus_per_node", "num_nodes",
                           "reported_failures"):
            value = getattr(self, field_name)
            if value <= 0:
                raise MachineError(
                    f"machine {self.name!r}: {field_name} must be strictly "
                    f"positive, got {value!r}"
                )
        for field_name in ("rpeak_pflops", "power_mw"):
            value = getattr(self, field_name)
            if not value > 0:
                raise MachineError(
                    f"machine {self.name!r}: {field_name} must be strictly "
                    f"positive, got {value!r}"
                )
        if self.log_end <= self.log_start:
            raise MachineError(
                f"machine {self.name!r}: log window is empty or reversed "
                f"({self.log_start} .. {self.log_end})"
            )

    @property
    def total_cpus(self) -> int:
        """Fleet-wide CPU socket count."""
        return self.num_nodes * self.cpus_per_node

    @property
    def total_gpus(self) -> int:
        """Fleet-wide GPU card count."""
        return self.num_nodes * self.gpus_per_node

    @property
    def total_compute_components(self) -> int:
        """CPU + GPU component inventory.

        The paper quotes 7040 for Tsubame-2 and 3240 for Tsubame-3 and
        argues the MTBF improvement is not merely a side effect of the
        smaller inventory.
        """
        return self.total_cpus + self.total_gpus

    @property
    def log_span_hours(self) -> float:
        """Length of the failure-log observation window in hours."""
        return (self.log_end - self.log_start).total_seconds() / 3600.0

    @property
    def gpu_slots(self) -> tuple[int, ...]:
        """GPU slot indices on one node (0-based, as in Figure 1)."""
        return tuple(range(self.gpus_per_node))

    def table1_row(self) -> dict[str, str]:
        """Return this machine's column of Table I as label -> value."""
        return {
            "CPU": self.cpu_model,
            "Cores/Threads per CPU": f"{self.cpu_cores} cores / "
                                     f"{self.cpu_threads} threads",
            "Num CPUs": str(self.cpus_per_node),
            "Memory per Node": f"{self.memory_gb}GB",
            "GPU": self.gpu_model,
            "Num GPUs": str(self.gpus_per_node),
            "SSD": self.ssd,
            "Interconnect": self.interconnect,
        }


#: Tsubame-2 (2010): 1408 nodes, 3x NVIDIA K20X per node.
TSUBAME2 = MachineSpec(
    name="tsubame2",
    display_name="Tsubame-2",
    cpu_model="Intel Xeon X5670 (Westmere-EP, 2.93GHz)",
    cpu_cores=6,
    cpu_threads=12,
    cpus_per_node=2,
    memory_gb=58,
    gpu_model="NVIDIA Tesla K20X (GK110)",
    gpus_per_node=3,
    ssd="120 GB",
    interconnect="4X QDR InfiniBand - 2 ports",
    num_nodes=1408,
    rpeak_pflops=2.3,
    power_mw=1.4,
    log_start=datetime(2012, 1, 7),
    log_end=datetime(2013, 8, 1),
    reported_failures=897,
)

#: Tsubame-3 (2017): 540 nodes, 4x NVIDIA P100 per node.
TSUBAME3 = MachineSpec(
    name="tsubame3",
    display_name="Tsubame-3",
    cpu_model="Intel Xeon E5-2680 V4 (Broadwell-EP, 2.4GHz)",
    cpu_cores=14,
    cpu_threads=28,
    cpus_per_node=2,
    memory_gb=256,
    gpu_model="NVIDIA Tesla P100 (NVlink-Optimized)",
    gpus_per_node=4,
    ssd="2TB",
    interconnect="Intel Omni-Path HFI 100Gbps - 4 ports",
    num_nodes=540,
    rpeak_pflops=12.1,
    power_mw=0.792,
    log_start=datetime(2017, 5, 9),
    log_end=datetime(2020, 2, 22),
    reported_failures=338,
)

#: A100 HGX fleet (2023 window): 1024 nodes, 8x NVIDIA A100-SXM4 per
#: node.  Node MTBF (~1536 h) and the GPU-dominated failure mix follow
#: Meta's Llama-3 fleet study (arXiv:2410.21680) and the A100 half of
#: the GPU resilience characterization (arXiv:2503.11901).
A100 = MachineSpec(
    name="a100",
    display_name="A100 HGX Fleet",
    cpu_model="AMD EPYC 7742 (Rome, 2.25GHz)",
    cpu_cores=64,
    cpu_threads=128,
    cpus_per_node=2,
    memory_gb=1024,
    gpu_model="NVIDIA A100-SXM4-80GB (GA100)",
    gpus_per_node=8,
    ssd="15 TB NVMe",
    interconnect="HDR InfiniBand 200Gbps - 8 ports",
    num_nodes=1024,
    rpeak_pflops=159.7,
    power_mw=6.7,
    log_start=datetime(2023, 1, 1),
    log_end=datetime(2024, 1, 1),
    reported_failures=5840,
)

#: H100 HGX fleet (2024 window): 512 nodes, 8x NVIDIA H100-SXM5 per
#: node.  Per-node MTBF (~1229 h) and the ECC/NVLink/GSP category mix
#: follow the H100 half of arXiv:2503.11901 and the 504-GPU LLM
#: operations report (arXiv:2605.09370).
H100 = MachineSpec(
    name="h100",
    display_name="H100 HGX Fleet",
    cpu_model="Intel Xeon Platinum 8480+ (Sapphire Rapids, 2.0GHz)",
    cpu_cores=56,
    cpu_threads=112,
    cpus_per_node=2,
    memory_gb=2048,
    gpu_model="NVIDIA H100-SXM5-80GB (GH100)",
    gpus_per_node=8,
    ssd="30 TB NVMe",
    interconnect="NDR InfiniBand 400Gbps - 8 ports",
    num_nodes=512,
    rpeak_pflops=274.4,
    power_mw=5.2,
    log_start=datetime(2024, 1, 1),
    log_end=datetime(2025, 1, 1),
    reported_failures=3660,
)

_MACHINES = {spec.name: spec for spec in (TSUBAME2, TSUBAME3, A100, H100)}


def known_machines() -> tuple[str, ...]:
    """Return the names of all modelled machines."""
    return tuple(sorted(_MACHINES))


@lru_cache(maxsize=None)
def get_machine(name: str) -> MachineSpec:
    """Look up a machine spec by name.

    The result is cached: specs are frozen singletons, and this lookup
    sits on per-replication construction paths (simulator, trace
    generator) where even the error-path plumbing adds up.

    Raises:
        MachineError: If the name is unknown.
    """
    try:
        return _MACHINES[name]
    except KeyError:
        raise MachineError(
            f"unknown machine {name!r}; expected one of {known_machines()}"
        ) from None
