"""Component model for node topologies.

A :class:`Component` is a vertex of a node's hardware topology graph
(Figure 1): a CPU socket, a GPU card, a PCIe switch, a NIC port, and so
on.  Components carry a kind and a slot index so that analyses can ask
topology questions such as "which GPU slots share a PCIe switch with
GPU 1?" — relevant to the paper's observation that failure counts are
non-uniform across GPU slots (Figure 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["ComponentKind", "Component"]


class ComponentKind(enum.Enum):
    """Kinds of hardware components in a node topology."""

    CPU = "cpu"
    GPU = "gpu"
    MEMORY = "memory"
    PCIE_SWITCH = "pcie_switch"
    NIC = "nic"
    SSD = "ssd"
    SYSTEM_BOARD = "system_board"


@dataclass(frozen=True, slots=True)
class Component:
    """A vertex in a node topology graph.

    Attributes:
        kind: What the component is.
        slot: Index among components of the same kind in the node
            (e.g. GPU slot 0..3 on Tsubame-3).
        model: Human-readable model name (e.g. "NVIDIA Tesla P100").
    """

    kind: ComponentKind
    slot: int
    model: str = ""

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValidationError(
                f"component slot must be non-negative, got {self.slot}"
            )

    @property
    def name(self) -> str:
        """Stable graph-node name, e.g. ``"gpu1"``."""
        return f"{self.kind.value}{self.slot}"

    def __str__(self) -> str:
        if self.model:
            return f"{self.name} ({self.model})"
        return self.name
