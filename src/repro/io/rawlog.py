"""Parser for raw operator-log exports.

Operator logs rarely arrive in a clean interchange schema.  This
module ingests the messier dialect such exports typically use — and
that the paper's released dataset resembles — with:

* assorted timestamp formats (``1/7/2012 13:45``, ``2012-01-07``, ...),
* free-form category spellings (``gpu failure``, ``GPU Driver``,
  ``power supply``) normalised onto the Table II taxonomy,
* recovery durations given in hours *or* days,
* optional/missing columns (node, GPU list).

The output is a validated :class:`~repro.core.records.FailureLog`.
"""

from __future__ import annotations

import csv
from datetime import datetime
from pathlib import Path

from repro.core.records import FailureLog, FailureRecord
from repro.core.taxonomy import categories_for
from repro.errors import SerializationError, TaxonomyError, ValidationError
from repro.io.tolerant import LogReadReport, RowQuarantine

__all__ = ["normalize_category", "read_raw_csv", "RAW_TIME_FORMATS"]

#: Accepted timestamp formats, tried in order.
RAW_TIME_FORMATS: tuple[str, ...] = (
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
    "%m/%d/%Y %H:%M",
    "%m/%d/%Y",
)

#: Free-form spellings -> canonical Table II names, per machine.
_ALIASES: dict[str, dict[str, str]] = {
    "tsubame2": {
        "gpu failure": "GPU",
        "gpu error": "GPU",
        "graphics card": "GPU",
        "cpu error": "CPU",
        "processor": "CPU",
        "hdd": "Disk",
        "hard disk": "Disk",
        "fan": "FAN",
        "cooling fan": "FAN",
        "infiniband": "IB",
        "ib link": "IB",
        "dimm": "Memory",
        "ram": "Memory",
        "ethernet": "Network",
        "power supply": "PSU",
        "power supply unit": "PSU",
        "motherboard": "System Board",
        "mainboard": "System Board",
        "scheduler": "PBS",
        "batch system": "PBS",
        "virtual machine": "VM",
        "node down": "Down",
        "boot failure": "Boot",
        "other hardware": "OtherHW",
        "other software": "OtherSW",
        "ssd failure": "SSD",
        "rack power": "Rack",
    },
    "tsubame3": {
        "gpu failure": "GPU",
        "gpu error": "GPU",
        "gpu driver": "GPUDriver",
        "driver": "GPUDriver",
        "cpu error": "CPU",
        "crc error": "CRC",
        "hdd": "Disk",
        "lustre fs": "Lustre",
        "dimm": "Memory",
        "ram": "Memory",
        "omnipath": "Omni-Path",
        "omni path": "Omni-Path",
        "opa": "Omni-Path",
        "power board": "Power-Board",
        "powerboard": "Power-Board",
        "ribbon": "Ribbon Cable",
        "sxm2 cable": "SXM2_Cable",
        "sxm2 board": "SXM2-Board",
        "software error": "Software",
        "sw": "Software",
        "ip motherboard": "IP",
        "front panel": "Led Front Panel",
        "led": "Led Front Panel",
        "unclassified": "Unknown",
        "n/a": "Unknown",
    },
}


def normalize_category(machine: str, raw: str) -> str:
    """Map a free-form category spelling onto the Table II taxonomy.

    Resolution order: exact canonical name, case-insensitive canonical
    name, then the alias table.

    Raises:
        TaxonomyError: When the spelling cannot be resolved.
    """
    text = raw.strip()
    if not text:
        raise TaxonomyError("empty category string")
    canon = {cat.name for cat in categories_for(machine)}
    if text in canon:
        return text
    lowered = text.lower()
    by_lower = {name.lower(): name for name in canon}
    if lowered in by_lower:
        return by_lower[lowered]
    aliases = _ALIASES.get(machine, {})
    if lowered in aliases:
        return aliases[lowered]
    raise TaxonomyError(
        f"cannot normalise category {raw!r} for machine {machine!r}"
    )


class _RawFieldError(SerializationError):
    """A raw-log cell failed to parse; ``field`` names the column."""

    def __init__(self, message: str, field: str | None = None) -> None:
        super().__init__(message)
        self.field = field


def _parse_gpu_list(text: str) -> tuple[int, ...]:
    return tuple(
        sorted(int(part) for part in text.replace("+", " ").split())
    )


def _parse_timestamp(text: str) -> datetime:
    for fmt in RAW_TIME_FORMATS:
        try:
            return datetime.strptime(text.strip(), fmt)
        except ValueError:
            continue
    raise SerializationError(f"unparseable timestamp {text!r}")


def _parse_duration_hours(text: str) -> float:
    """Parse ``"55"``, ``"55 h"``, ``"55 hours"``, ``"2.5 days"``."""
    body = text.strip().lower()
    if not body:
        raise SerializationError("empty duration")
    factor = 1.0
    for suffix, multiplier in (
        ("hours", 1.0), ("hour", 1.0), ("hrs", 1.0), ("h", 1.0),
        ("days", 24.0), ("day", 24.0), ("d", 24.0),
    ):
        if body.endswith(suffix):
            body = body[: -len(suffix)].strip()
            factor = multiplier
            break
    try:
        value = float(body)
    except ValueError as exc:
        raise SerializationError(
            f"unparseable duration {text!r}"
        ) from exc
    if value < 0:
        raise SerializationError(f"negative duration {text!r}")
    return value * factor


def read_raw_csv(
    path: str | Path,
    machine: str,
    skip_unparseable: bool = False,
    on_error: str | None = None,
) -> FailureLog | LogReadReport:
    """Read a raw operator-log CSV into a validated failure log.

    Expected columns (header names are matched case-insensitively):
    ``date`` (or ``time``/``timestamp``), ``category`` (or ``type``/
    ``failure``), ``recovery`` (or ``ttr``/``repair_time``); optional
    ``node`` and ``gpus``.

    Args:
        path: CSV path.
        machine: Which taxonomy to normalise against.
        skip_unparseable: When True, rows that fail to parse are
            dropped instead of aborting the load (field exports often
            contain a few garbage lines).  Legacy alias for
            ``on_error="skip"``.
        on_error: ``"raise"``/``"skip"``/``"collect"`` per
            :mod:`repro.io.tolerant`; overrides ``skip_unparseable``
            when given.  ``"collect"`` returns a
            :class:`~repro.io.tolerant.LogReadReport` whose
            quarantine lists every dropped row with its line number,
            offending field, and reason.

    Raises:
        SerializationError: On a missing required column, or on the
            first bad row in strict mode, or when nothing parseable
            remains.
    """
    path = Path(path)
    if on_error is None:
        on_error = "skip" if skip_unparseable else "raise"
    quarantine = RowQuarantine(on_error, path=str(path))
    column_aliases = {
        "date": ("date", "time", "timestamp", "failure_time"),
        "category": ("category", "type", "failure", "failure_type"),
        "recovery": ("recovery", "ttr", "repair_time", "time_to_recovery"),
        "node": ("node", "node_id", "hostname"),
        "gpus": ("gpus", "gpu", "gpus_involved"),
    }
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise SerializationError(f"{path} has no header row")
        lookup = {name.lower().strip(): name for name in reader.fieldnames}

        def find(kind: str, required: bool) -> str | None:
            for alias in column_aliases[kind]:
                if alias in lookup:
                    return lookup[alias]
            if required:
                raise SerializationError(
                    f"{path} is missing a {kind!r} column (any of "
                    f"{column_aliases[kind]})"
                )
            return None

        date_column = find("date", required=True)
        category_column = find("category", required=True)
        recovery_column = find("recovery", required=True)
        node_column = find("node", required=False)
        gpus_column = find("gpus", required=False)

        def parse_column(row, column, label, parse):
            """Parse one cell, attributing any failure to its column."""
            try:
                return parse(row[column])
            except (
                SerializationError, TaxonomyError, ValueError,
                TypeError, AttributeError,
            ) as exc:
                # TypeError/AttributeError: a short row leaves the
                # cell as None (csv.DictReader's missing-value fill).
                raise _RawFieldError(str(exc), field=label) from exc

        records = []
        for line_number, row in enumerate(reader, start=2):
            try:
                timestamp = parse_column(
                    row, date_column, "date", _parse_timestamp
                )
                category = parse_column(
                    row, category_column, "category",
                    lambda text: normalize_category(machine, text),
                )
                ttr = parse_column(
                    row, recovery_column, "recovery",
                    _parse_duration_hours,
                )
                node = (
                    parse_column(row, node_column, "node", int)
                    if node_column and (row[node_column] or "").strip()
                    else 0
                )
                gpus: tuple[int, ...] = ()
                if gpus_column and (row[gpus_column] or "").strip():
                    gpus = parse_column(
                        row, gpus_column, "gpus", _parse_gpu_list
                    )
                records.append(
                    FailureRecord(
                        record_id=len(records),
                        timestamp=timestamp,
                        node_id=node,
                        category=category,
                        ttr_hours=ttr,
                        gpus_involved=gpus,
                    )
                )
            except (
                SerializationError, TaxonomyError, ValidationError,
                ValueError,
            ) as exc:
                quarantine.add(
                    line_number,
                    str(exc),
                    field=getattr(exc, "field", None),
                    raw=",".join(
                        "" if value is None else str(value)
                        for value in row.values()
                    ),
                    cause=exc,
                )
    if not records:
        raise SerializationError(f"{path} contains no parseable rows")
    log = FailureLog.from_records(machine, records)
    if on_error == "collect":
        return quarantine.report(log, format="raw-csv")
    return log
