"""File-format detection for log files.

One place decides what ``.csv`` / ``.jsonl`` mean, so the CLI, the
streaming file source, and library users all agree — with an explicit
override for files whose extension lies.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.records import FailureLog
from repro.errors import SerializationError
from repro.io.csvio import read_csv, write_csv
from repro.io.jsonio import read_jsonl, write_jsonl
from repro.io.tolerant import LogReadReport, check_on_error

__all__ = [
    "KNOWN_FORMATS",
    "MEDIA_TYPES",
    "format_for_media_type",
    "infer_format",
    "media_type_for",
    "read_log",
    "sniff_format",
    "write_log",
]

#: Formats understood by :func:`read_log`.
KNOWN_FORMATS = ("csv", "jsonl")

_EXTENSIONS = {
    ".csv": "csv",
    ".jsonl": "jsonl",
    ".ndjson": "jsonl",
}

#: HTTP media types accepted for each format — the content-negotiation
#: twin of the extension map, shared by the serving layer so ``serve``
#: and ``analyze --format`` agree on what the names mean.
MEDIA_TYPES = {
    "text/csv": "csv",
    "application/csv": "csv",
    "application/jsonl": "jsonl",
    "application/jsonlines": "jsonl",
    "application/x-jsonlines": "jsonl",
    "application/x-ndjson": "jsonl",
    "application/ndjson": "jsonl",
}

#: Canonical media type emitted for each format.
_CANONICAL_MEDIA = {"csv": "text/csv", "jsonl": "application/x-ndjson"}


def format_for_media_type(media_type: str) -> str:
    """Map an HTTP ``Content-Type`` value to a log format name.

    Parameters after ``;`` (``charset=...``) are ignored.  Plain
    format names (``csv``, ``jsonl``) are accepted too, so a client
    may send either the media type or the ``--format`` name.

    Raises:
        SerializationError: For a media type no reader understands.
    """
    bare = media_type.split(";", 1)[0].strip().lower()
    if bare in KNOWN_FORMATS:
        return bare
    try:
        return MEDIA_TYPES[bare]
    except KeyError:
        raise SerializationError(
            f"unsupported media type {bare!r} (known: "
            f"{', '.join(sorted(MEDIA_TYPES))})"
        ) from None


def media_type_for(format: str) -> str:
    """Canonical media type for a log format name.

    Raises:
        SerializationError: For an unknown format name.
    """
    try:
        return _CANONICAL_MEDIA[format]
    except KeyError:
        raise SerializationError(
            f"unknown log format {format!r} (known: "
            f"{', '.join(KNOWN_FORMATS)})"
        ) from None


def sniff_format(path: Path | str) -> str | None:
    """Format a path's extension suggests, or None if unrecognised.

    The single source of truth for extension -> format: the CLI
    (``generate``/``analyze``), the streaming file source, and the
    store importer all sniff here rather than keeping their own
    suffix maps.  Unlike :func:`infer_format` this never raises, so
    callers with a sensible default (the CLI writes CSV for odd
    extensions) can fall back instead of aborting.
    """
    return _EXTENSIONS.get(Path(path).suffix.lower())


def infer_format(path: Path | str) -> str:
    """Infer a log file's format from its extension.

    Raises:
        SerializationError: For an unrecognised extension — pass an
            explicit format instead (``--format`` on the CLI).
    """
    chosen = sniff_format(path)
    if chosen is None:
        suffix = Path(path).suffix.lower()
        raise SerializationError(
            f"cannot infer log format from extension {suffix!r} "
            f"(known: {', '.join(sorted(_EXTENSIONS))}); pass an "
            f"explicit format"
        )
    return chosen


def read_log(
    path: Path | str,
    format: str | None = None,
    on_error: str = "raise",
) -> FailureLog | LogReadReport:
    """Read a failure log, inferring the format from the extension.

    Args:
        path: Log file path.
        format: ``"csv"`` or ``"jsonl"`` to override inference.
        on_error: ``"raise"`` aborts on the first malformed row (the
            strict default); ``"skip"`` drops malformed rows and
            returns the log built from the rest; ``"collect"``
            quarantines malformed rows and returns a
            :class:`~repro.io.tolerant.LogReadReport` (the log plus
            per-row diagnostics) instead of a bare log.

    Raises:
        SerializationError: On an unknown format, extension, or
            ``on_error`` mode; on structural file problems (always);
            or on the first malformed row in ``"raise"`` mode.
    """
    check_on_error(on_error)
    chosen = format or infer_format(path)
    if chosen == "csv":
        return read_csv(path, on_error=on_error)
    if chosen == "jsonl":
        return read_jsonl(path, on_error=on_error)
    raise SerializationError(
        f"unknown log format {chosen!r} (known: "
        f"{', '.join(KNOWN_FORMATS)})"
    )


def write_log(
    log: FailureLog, path: Path | str, format: str | None = None
) -> None:
    """Write a failure log, inferring the format from the extension.

    The writing twin of :func:`read_log`: ``format`` overrides
    inference, otherwise the extension decides via
    :func:`sniff_format`.

    Raises:
        SerializationError: On an unknown format name or an
            unrecognisable extension without an explicit format.
    """
    chosen = format or infer_format(path)
    if chosen == "csv":
        write_csv(log, path)
    elif chosen == "jsonl":
        write_jsonl(log, path)
    else:
        raise SerializationError(
            f"unknown log format {chosen!r} (known: "
            f"{', '.join(KNOWN_FORMATS)})"
        )
