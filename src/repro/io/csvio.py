"""CSV reading and writing of failure logs.

The CSV carries a small comment header (lines starting with ``#``)
recording the machine name and observation window, so a file round-trips
into an identical :class:`~repro.core.records.FailureLog`.

Reading supports the tolerant-ingest modes of
:mod:`repro.io.tolerant`: ``read_csv(path, on_error="collect")``
quarantines malformed rows (bad values, duplicate ids, out-of-window
timestamps, unknown categories) instead of aborting, and returns a
:class:`~repro.io.tolerant.LogReadReport`.
"""

from __future__ import annotations

import csv
from datetime import datetime
from pathlib import Path

from repro.core.records import FailureLog, FailureRecord
from repro.errors import SerializationError, ValidationError
from repro.io.schema import CSV_COLUMNS, record_from_row, record_to_row
from repro.io.tolerant import LogReadReport, RowQuarantine, sift_records

__all__ = ["write_csv", "read_csv"]

_META_PREFIX = "#"


def write_csv(log: FailureLog, path: str | Path) -> None:
    """Write a failure log to ``path`` as CSV with a metadata header."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        handle.write(f"{_META_PREFIX} machine={log.machine}\n")
        handle.write(
            f"{_META_PREFIX} window_start={log.window_start.isoformat()}\n"
        )
        handle.write(
            f"{_META_PREFIX} window_end={log.window_end.isoformat()}\n"
        )
        writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        for record in log:
            writer.writerow(record_to_row(record))


def _parse_metadata(lines: list[str]) -> dict[str, str]:
    metadata: dict[str, str] = {}
    for line in lines:
        body = line[len(_META_PREFIX):].strip()
        if "=" not in body:
            raise SerializationError(
                f"malformed metadata line {line.strip()!r}"
            )
        key, _, value = body.partition("=")
        metadata[key.strip()] = value.strip()
    return metadata


def read_csv(
    path: str | Path, on_error: str = "raise"
) -> FailureLog | LogReadReport:
    """Read a failure log written by :func:`write_csv`.

    Args:
        path: CSV path.
        on_error: ``"raise"`` aborts on the first malformed row (the
            strict default); ``"skip"`` drops malformed rows;
            ``"collect"`` additionally returns a
            :class:`~repro.io.tolerant.LogReadReport` with per-row
            diagnostics instead of the bare log.

    Raises:
        SerializationError: On missing/malformed metadata (always), or
            on a malformed row in ``"raise"`` mode.
    """
    path = Path(path)
    quarantine = RowQuarantine(on_error, path=str(path))
    with path.open(newline="") as handle:
        meta_lines: list[str] = []
        position = handle.tell()
        while True:
            line = handle.readline()
            if line.startswith(_META_PREFIX):
                meta_lines.append(line)
                position = handle.tell()
            else:
                handle.seek(position)
                break
        metadata = _parse_metadata(meta_lines)
        for key in ("machine", "window_start", "window_end"):
            if key not in metadata:
                raise SerializationError(
                    f"{path} is missing the {key!r} metadata line"
                )
        reader = csv.DictReader(handle)
        # Physical line = metadata lines + header/body lines the csv
        # reader has consumed so far.
        rows: list[tuple[int, str | None, FailureRecord]] = []
        for row in reader:
            line_number = len(meta_lines) + reader.line_num
            try:
                rows.append(
                    (line_number, _preview(row), record_from_row(row))
                )
            except (SerializationError, ValidationError) as exc:
                quarantine.add(
                    line_number,
                    str(exc),
                    field=getattr(exc, "field", None),
                    raw=_preview(row),
                    cause=exc,
                )
    try:
        window_start = datetime.fromisoformat(metadata["window_start"])
        window_end = datetime.fromisoformat(metadata["window_end"])
    except ValueError as exc:
        raise SerializationError(
            f"{path} has malformed window timestamps: {exc}"
        ) from exc
    if quarantine.lenient:
        records = sift_records(
            metadata["machine"], window_start, window_end, rows,
            quarantine,
        )
    else:
        records = [record for _, _, record in rows]
    log = FailureLog(
        machine=metadata["machine"],
        records=tuple(records),
        window_start=window_start,
        window_end=window_end,
    )
    if on_error == "collect":
        return quarantine.report(log, format="csv")
    return log


def _preview(row: dict) -> str:
    """Compact raw-ish preview of a parsed csv row."""
    return ",".join(
        "" if value is None else str(value)
        for value in row.values()
    )
