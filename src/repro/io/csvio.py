"""CSV reading and writing of failure logs.

The CSV carries a small comment header (lines starting with ``#``)
recording the machine name and observation window, so a file round-trips
into an identical :class:`~repro.core.records.FailureLog`.
"""

from __future__ import annotations

import csv
from datetime import datetime
from pathlib import Path

from repro.core.records import FailureLog
from repro.errors import SerializationError
from repro.io.schema import CSV_COLUMNS, record_from_row, record_to_row

__all__ = ["write_csv", "read_csv"]

_META_PREFIX = "#"


def write_csv(log: FailureLog, path: str | Path) -> None:
    """Write a failure log to ``path`` as CSV with a metadata header."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        handle.write(f"{_META_PREFIX} machine={log.machine}\n")
        handle.write(
            f"{_META_PREFIX} window_start={log.window_start.isoformat()}\n"
        )
        handle.write(
            f"{_META_PREFIX} window_end={log.window_end.isoformat()}\n"
        )
        writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        for record in log:
            writer.writerow(record_to_row(record))


def _parse_metadata(lines: list[str]) -> dict[str, str]:
    metadata: dict[str, str] = {}
    for line in lines:
        body = line[len(_META_PREFIX):].strip()
        if "=" not in body:
            raise SerializationError(
                f"malformed metadata line {line.strip()!r}"
            )
        key, _, value = body.partition("=")
        metadata[key.strip()] = value.strip()
    return metadata


def read_csv(path: str | Path) -> FailureLog:
    """Read a failure log written by :func:`write_csv`.

    Raises:
        SerializationError: On missing metadata or malformed rows.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        meta_lines: list[str] = []
        position = handle.tell()
        while True:
            line = handle.readline()
            if line.startswith(_META_PREFIX):
                meta_lines.append(line)
                position = handle.tell()
            else:
                handle.seek(position)
                break
        metadata = _parse_metadata(meta_lines)
        for key in ("machine", "window_start", "window_end"):
            if key not in metadata:
                raise SerializationError(
                    f"{path} is missing the {key!r} metadata line"
                )
        reader = csv.DictReader(handle)
        records = [record_from_row(row) for row in reader]
    try:
        window_start = datetime.fromisoformat(metadata["window_start"])
        window_end = datetime.fromisoformat(metadata["window_end"])
    except ValueError as exc:
        raise SerializationError(
            f"{path} has malformed window timestamps: {exc}"
        ) from exc
    return FailureLog(
        machine=metadata["machine"],
        records=tuple(records),
        window_start=window_start,
        window_end=window_end,
    )
