"""Failure-log serialization.

Defines a documented interchange schema (the columns Section II of the
paper describes: occurrence time, recovery time, category, plus node
and GPU locality) and reads/writes it as CSV or JSON Lines.

Every reader supports tolerant ingest (``on_error="raise"|"skip"|
"collect"``): malformed rows can be quarantined into a
:class:`~repro.io.tolerant.LogReadReport` with per-row diagnostics
instead of aborting the load.  See docs/ROBUSTNESS.md for the full
error-policy matrix.
"""

from repro.io.csvio import read_csv, write_csv
from repro.io.formats import (
    KNOWN_FORMATS,
    MEDIA_TYPES,
    format_for_media_type,
    infer_format,
    media_type_for,
    read_log,
    sniff_format,
    write_log,
)
from repro.io.jsonio import read_jsonl, write_jsonl
from repro.io.rawlog import normalize_category, read_raw_csv
from repro.io.schema import CSV_COLUMNS, record_from_row, record_to_row
from repro.io.tolerant import (
    ON_ERROR_MODES,
    LogReadReport,
    QuarantinedRow,
)

__all__ = [
    "CSV_COLUMNS",
    "KNOWN_FORMATS",
    "LogReadReport",
    "MEDIA_TYPES",
    "ON_ERROR_MODES",
    "QuarantinedRow",
    "format_for_media_type",
    "infer_format",
    "media_type_for",
    "normalize_category",
    "read_csv",
    "read_jsonl",
    "read_log",
    "read_raw_csv",
    "record_from_row",
    "record_to_row",
    "sniff_format",
    "write_csv",
    "write_jsonl",
    "write_log",
]
