"""JSON Lines reading and writing of failure logs.

The first line is a header object (``{"machine": ..., "window_start":
..., "window_end": ...}``); every further line is one failure record.
JSONL suits streaming pipelines better than CSV and is the format the
command-line tool emits by default.

Reading supports the tolerant-ingest modes of
:mod:`repro.io.tolerant`: ``read_jsonl(path, on_error="collect")``
quarantines malformed lines (broken JSON, bad values, duplicate ids,
out-of-window timestamps, unknown categories) instead of aborting, and
returns a :class:`~repro.io.tolerant.LogReadReport`.
"""

from __future__ import annotations

import json
from datetime import datetime
from pathlib import Path

from repro.core.records import FailureLog, FailureRecord
from repro.errors import SerializationError, ValidationError
from repro.io.tolerant import LogReadReport, RowQuarantine, sift_records

__all__ = ["write_jsonl", "read_jsonl"]


def _record_to_object(record: FailureRecord) -> dict:
    return {
        "record_id": record.record_id,
        "timestamp": record.timestamp.isoformat(),
        "node_id": record.node_id,
        "category": record.category,
        "ttr_hours": record.ttr_hours,
        "gpus_involved": list(record.gpus_involved),
        "root_locus": record.root_locus,
    }


_FIELD_PARSERS = {
    "record_id": int,
    "timestamp": datetime.fromisoformat,
    "node_id": int,
    "ttr_hours": float,
}


class _ObjectParseError(SerializationError):
    """A record object failed to parse; ``field`` names the bad key."""

    def __init__(self, message: str, field: str | None = None) -> None:
        super().__init__(message)
        self.field = field


def _record_from_object(obj: dict) -> FailureRecord:
    parsed = {}
    for key, parse in _FIELD_PARSERS.items():
        if key not in obj:
            raise _ObjectParseError(
                f"malformed record object: missing key {key!r}",
                field=key,
            )
        try:
            parsed[key] = parse(obj[key])
        except (ValueError, TypeError) as exc:
            raise _ObjectParseError(
                f"malformed record object: bad {key} "
                f"{obj[key]!r}: {exc}",
                field=key,
            ) from exc
    try:
        gpus = tuple(int(s) for s in obj.get("gpus_involved", []))
    except (ValueError, TypeError) as exc:
        raise _ObjectParseError(
            f"malformed record object: bad gpus_involved "
            f"{obj.get('gpus_involved')!r}: {exc}",
            field="gpus_involved",
        ) from exc
    if "category" not in obj:
        raise _ObjectParseError(
            "malformed record object: missing key 'category'",
            field="category",
        )
    return FailureRecord(
        category=str(obj["category"]),
        gpus_involved=gpus,
        root_locus=obj.get("root_locus"),
        **parsed,
    )


def write_jsonl(log: FailureLog, path: str | Path) -> None:
    """Write a failure log to ``path`` as JSON Lines."""
    path = Path(path)
    with path.open("w") as handle:
        header = {
            "machine": log.machine,
            "window_start": log.window_start.isoformat(),
            "window_end": log.window_end.isoformat(),
            "num_records": len(log),
        }
        handle.write(json.dumps(header) + "\n")
        for record in log:
            handle.write(json.dumps(_record_to_object(record)) + "\n")


def read_jsonl(
    path: str | Path, on_error: str = "raise"
) -> FailureLog | LogReadReport:
    """Read a failure log written by :func:`write_jsonl`.

    Args:
        path: JSONL path.
        on_error: ``"raise"`` aborts on the first malformed line (the
            strict default); ``"skip"`` drops malformed lines;
            ``"collect"`` additionally returns a
            :class:`~repro.io.tolerant.LogReadReport` with per-line
            diagnostics instead of the bare log.

    Raises:
        SerializationError: On a missing/malformed header (always), or
            on a malformed line in ``"raise"`` mode.
    """
    path = Path(path)
    quarantine = RowQuarantine(on_error, path=str(path))
    with path.open() as handle:
        header_line = handle.readline()
        if not header_line.strip():
            raise SerializationError(f"{path} is empty")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"{path} has a malformed header: {exc}"
            ) from exc
        for key in ("machine", "window_start", "window_end"):
            if key not in header:
                raise SerializationError(
                    f"{path} header is missing {key!r}"
                )
        rows: list[tuple[int, str | None, FailureRecord]] = []
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                quarantine.add(
                    line_number,
                    f"malformed JSON: {exc}",
                    raw=line,
                    cause=exc,
                )
                continue
            try:
                rows.append(
                    (line_number, line, _record_from_object(obj))
                )
            except (SerializationError, ValidationError) as exc:
                quarantine.add(
                    line_number,
                    str(exc),
                    field=getattr(exc, "field", None),
                    raw=line,
                    cause=exc,
                )
    try:
        window_start = datetime.fromisoformat(header["window_start"])
        window_end = datetime.fromisoformat(header["window_end"])
    except (ValueError, TypeError) as exc:
        raise SerializationError(
            f"{path} has malformed window timestamps: {exc}"
        ) from exc
    if quarantine.lenient:
        records = sift_records(
            str(header["machine"]), window_start, window_end, rows,
            quarantine,
        )
    else:
        records = [record for _, _, record in rows]
    log = FailureLog(
        machine=str(header["machine"]),
        records=tuple(records),
        window_start=window_start,
        window_end=window_end,
    )
    if on_error == "collect":
        return quarantine.report(log, format="jsonl")
    return log
