"""JSON Lines reading and writing of failure logs.

The first line is a header object (``{"machine": ..., "window_start":
..., "window_end": ...}``); every further line is one failure record.
JSONL suits streaming pipelines better than CSV and is the format the
command-line tool emits by default.
"""

from __future__ import annotations

import json
from datetime import datetime
from pathlib import Path

from repro.core.records import FailureLog, FailureRecord
from repro.errors import SerializationError

__all__ = ["write_jsonl", "read_jsonl"]


def _record_to_object(record: FailureRecord) -> dict:
    return {
        "record_id": record.record_id,
        "timestamp": record.timestamp.isoformat(),
        "node_id": record.node_id,
        "category": record.category,
        "ttr_hours": record.ttr_hours,
        "gpus_involved": list(record.gpus_involved),
        "root_locus": record.root_locus,
    }


def _record_from_object(obj: dict) -> FailureRecord:
    try:
        return FailureRecord(
            record_id=int(obj["record_id"]),
            timestamp=datetime.fromisoformat(obj["timestamp"]),
            node_id=int(obj["node_id"]),
            category=str(obj["category"]),
            ttr_hours=float(obj["ttr_hours"]),
            gpus_involved=tuple(int(s) for s in obj.get("gpus_involved", [])),
            root_locus=obj.get("root_locus"),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed record object: {exc}") from exc


def write_jsonl(log: FailureLog, path: str | Path) -> None:
    """Write a failure log to ``path`` as JSON Lines."""
    path = Path(path)
    with path.open("w") as handle:
        header = {
            "machine": log.machine,
            "window_start": log.window_start.isoformat(),
            "window_end": log.window_end.isoformat(),
            "num_records": len(log),
        }
        handle.write(json.dumps(header) + "\n")
        for record in log:
            handle.write(json.dumps(_record_to_object(record)) + "\n")


def read_jsonl(path: str | Path) -> FailureLog:
    """Read a failure log written by :func:`write_jsonl`.

    Raises:
        SerializationError: On a missing/malformed header or records.
    """
    path = Path(path)
    with path.open() as handle:
        header_line = handle.readline()
        if not header_line.strip():
            raise SerializationError(f"{path} is empty")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"{path} has a malformed header: {exc}"
            ) from exc
        for key in ("machine", "window_start", "window_end"):
            if key not in header:
                raise SerializationError(
                    f"{path} header is missing {key!r}"
                )
        records = []
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"{path}:{line_number} is malformed JSON: {exc}"
                ) from exc
            records.append(_record_from_object(obj))
    try:
        window_start = datetime.fromisoformat(header["window_start"])
        window_end = datetime.fromisoformat(header["window_end"])
    except (ValueError, TypeError) as exc:
        raise SerializationError(
            f"{path} has malformed window timestamps: {exc}"
        ) from exc
    return FailureLog(
        machine=str(header["machine"]),
        records=tuple(records),
        window_start=window_start,
        window_end=window_end,
    )
