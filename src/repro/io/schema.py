"""Interchange schema for failure logs.

One row per failure with the following columns:

========== ===========================================================
column     meaning
========== ===========================================================
record_id  integer id, unique within the log
timestamp  failure occurrence, ISO-8601 (``2017-05-09T13:45:00``)
node_id    integer node index
category   failure category (Table II spelling)
ttr_hours  time to recovery in hours (float)
gpus       GPU slots involved, ``+``-separated (``"1+2"``), empty when
           unrecorded / not GPU-incident
root_locus software root locus (Figure 3) or empty
========== ===========================================================

Timestamps are naive local time, matching how operator logs are kept.
"""

from __future__ import annotations

from datetime import datetime
from typing import Mapping

from repro.core.records import FailureRecord
from repro.errors import SerializationError

__all__ = ["CSV_COLUMNS", "record_to_row", "record_from_row"]

CSV_COLUMNS: tuple[str, ...] = (
    "record_id",
    "timestamp",
    "node_id",
    "category",
    "ttr_hours",
    "gpus",
    "root_locus",
)

_GPU_SEPARATOR = "+"


def record_to_row(record: FailureRecord) -> dict[str, str]:
    """Render a record as a flat string-valued row."""
    return {
        "record_id": str(record.record_id),
        "timestamp": record.timestamp.isoformat(),
        "node_id": str(record.node_id),
        "category": record.category,
        "ttr_hours": repr(record.ttr_hours),
        "gpus": _GPU_SEPARATOR.join(
            str(slot) for slot in record.gpus_involved
        ),
        "root_locus": record.root_locus or "",
    }


def record_from_row(row: Mapping[str, str]) -> FailureRecord:
    """Parse one row back into a record.

    Raises:
        SerializationError: On missing columns or malformed values.
    """
    missing = [column for column in CSV_COLUMNS if column not in row]
    if missing:
        raise SerializationError(f"row is missing columns {missing}")
    try:
        gpus_field = row["gpus"].strip()
        gpus = (
            tuple(int(part) for part in gpus_field.split(_GPU_SEPARATOR))
            if gpus_field
            else ()
        )
        return FailureRecord(
            record_id=int(row["record_id"]),
            timestamp=datetime.fromisoformat(row["timestamp"]),
            node_id=int(row["node_id"]),
            category=row["category"],
            ttr_hours=float(row["ttr_hours"]),
            gpus_involved=gpus,
            root_locus=row["root_locus"] or None,
        )
    except (ValueError, TypeError) as exc:
        raise SerializationError(f"malformed row {dict(row)!r}: {exc}") from exc
