"""Interchange schema for failure logs.

One row per failure with the following columns:

========== ===========================================================
column     meaning
========== ===========================================================
record_id  integer id, unique within the log
timestamp  failure occurrence, ISO-8601 (``2017-05-09T13:45:00``)
node_id    integer node index
category   failure category (Table II spelling)
ttr_hours  time to recovery in hours (float)
gpus       GPU slots involved, ``+``-separated (``"1+2"``), empty when
           unrecorded / not GPU-incident
root_locus software root locus (Figure 3) or empty
========== ===========================================================

Timestamps are naive local time, matching how operator logs are kept.
"""

from __future__ import annotations

from datetime import datetime
from typing import Mapping

from repro.core.records import FailureRecord
from repro.errors import SerializationError

__all__ = [
    "CSV_COLUMNS",
    "RowParseError",
    "record_to_row",
    "record_from_row",
]


class RowParseError(SerializationError):
    """A row failed to parse, with the offending column pinned down.

    Attributes:
        field: Name of the malformed column, or None when the failure
            cannot be attributed to a single one (e.g. cross-field
            validation).
    """

    def __init__(self, message: str, field: str | None = None) -> None:
        super().__init__(message)
        self.field = field

CSV_COLUMNS: tuple[str, ...] = (
    "record_id",
    "timestamp",
    "node_id",
    "category",
    "ttr_hours",
    "gpus",
    "root_locus",
)

_GPU_SEPARATOR = "+"


def record_to_row(record: FailureRecord) -> dict[str, str]:
    """Render a record as a flat string-valued row."""
    return {
        "record_id": str(record.record_id),
        "timestamp": record.timestamp.isoformat(),
        "node_id": str(record.node_id),
        "category": record.category,
        "ttr_hours": repr(record.ttr_hours),
        "gpus": _GPU_SEPARATOR.join(
            str(slot) for slot in record.gpus_involved
        ),
        "root_locus": record.root_locus or "",
    }


def _parse_field(row: Mapping[str, str], column: str, parse):
    """Parse one column, attributing any failure to it."""
    try:
        return parse(row[column])
    except (ValueError, TypeError) as exc:
        raise RowParseError(
            f"malformed row {dict(row)!r}: bad {column} "
            f"{row[column]!r}: {exc}",
            field=column,
        ) from exc


def _parse_gpus(text: str) -> tuple[int, ...]:
    body = text.strip()
    if not body:
        return ()
    return tuple(int(part) for part in body.split(_GPU_SEPARATOR))


def record_from_row(row: Mapping[str, str]) -> FailureRecord:
    """Parse one row back into a record.

    Raises:
        SerializationError: On missing columns or malformed values
            (a :class:`RowParseError` naming the offending column
            whenever one can be singled out).
    """
    missing = [column for column in CSV_COLUMNS if column not in row]
    if missing:
        raise RowParseError(
            f"row is missing columns {missing}",
            field=missing[0],
        )
    return FailureRecord(
        record_id=_parse_field(row, "record_id", int),
        timestamp=_parse_field(
            row, "timestamp", datetime.fromisoformat
        ),
        node_id=_parse_field(row, "node_id", int),
        category=row["category"],
        ttr_hours=_parse_field(row, "ttr_hours", float),
        gpus_involved=_parse_field(row, "gpus", _parse_gpus),
        root_locus=row["root_locus"] or None,
    )
