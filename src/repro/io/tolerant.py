"""Tolerant-ingest machinery: quarantine instead of abort.

Field exports are messy: a truncated last line, a NaN timestamp, a
duplicated record, a category typo.  The strict readers abort on the
first such row, which is the right default for pipelines — but an
operator triaging a 50k-row export wants the 49k good rows *and* a
precise account of the bad ones.

Every reader in :mod:`repro.io` therefore takes
``on_error="raise"|"skip"|"collect"``:

* ``"raise"`` (default) — abort on the first malformed row, exactly
  the pre-existing strict behaviour.
* ``"skip"`` — drop malformed rows silently and return the log built
  from the rest.
* ``"collect"`` — return a :class:`LogReadReport` carrying the log
  *plus* one :class:`QuarantinedRow` per malformed row (line number,
  offending field when known, reason).

Structural problems (missing header, unreadable file, malformed
metadata) always raise: there is no per-row recovery from not knowing
the machine or the observation window.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from repro.core.records import FailureLog, FailureRecord
from repro.core.taxonomy import categories_for
from repro.errors import SerializationError

__all__ = [
    "ON_ERROR_MODES",
    "QuarantinedRow",
    "LogReadReport",
    "RowQuarantine",
    "check_on_error",
    "sift_records",
]

#: Accepted values of the readers' ``on_error`` argument.
ON_ERROR_MODES = ("raise", "skip", "collect")

_RAW_PREVIEW_CHARS = 120


def check_on_error(on_error: str) -> str:
    """Validate an ``on_error`` mode (misconfiguration always raises).

    Raises:
        SerializationError: On an unknown mode.
    """
    if on_error not in ON_ERROR_MODES:
        raise SerializationError(
            f"unknown on_error mode {on_error!r} (known: "
            f"{', '.join(ON_ERROR_MODES)})"
        )
    return on_error


@dataclass(frozen=True)
class QuarantinedRow:
    """Diagnostics for one malformed input row.

    Attributes:
        line_number: 1-based physical line in the source file (or
            record index for non-file sources).
        reason: Human-readable parse/validation failure.
        field: Offending column/key when it could be pinned down,
            else None (e.g. a row that is not parseable at all).
        raw: Truncated preview of the raw row text, for triage.
    """

    line_number: int
    reason: str
    field: str | None = None
    raw: str | None = None

    def format_line(self) -> str:
        """Render as one aligned diagnostic line."""
        where = f"line {self.line_number}"
        field_text = f" [{self.field}]" if self.field else ""
        return f"  {where}{field_text}: {self.reason}"


@dataclass(frozen=True)
class LogReadReport:
    """Outcome of a lenient (``on_error="collect"``) log read.

    Attributes:
        log: The log built from every parseable row.
        quarantined: One entry per malformed row, in file order.
        path: Source path (as given by the caller).
        format: Source format (``"csv"``, ``"jsonl"``, ``"raw-csv"``).
    """

    log: FailureLog
    quarantined: tuple[QuarantinedRow, ...] = ()
    path: str = ""
    format: str = ""

    @property
    def num_read(self) -> int:
        """Rows that made it into the log."""
        return len(self.log)

    @property
    def num_quarantined(self) -> int:
        return len(self.quarantined)

    @property
    def ok(self) -> bool:
        """True when nothing was quarantined."""
        return not self.quarantined

    def raise_if_any(self) -> "LogReadReport":
        """Escalate to strict semantics after the fact.

        Raises:
            SerializationError: If any row was quarantined, naming the
                first one.
        """
        if self.quarantined:
            first = self.quarantined[0]
            raise SerializationError(
                f"{self.path or 'log'} quarantined "
                f"{self.num_quarantined} row(s); first: "
                f"line {first.line_number}: {first.reason}"
            )
        return self

    def summary_lines(self, limit: int = 10) -> list[str]:
        """Render the quarantine summary for terminal output."""
        source = self.path or "log"
        if self.ok:
            return [
                f"lenient read: {source}: {self.num_read} rows, "
                f"0 quarantined"
            ]
        lines = [
            f"lenient read: {source}: {self.num_read} rows kept, "
            f"{self.num_quarantined} quarantined:"
        ]
        for entry in self.quarantined[:limit]:
            lines.append(entry.format_line())
        hidden = self.num_quarantined - limit
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return lines


class RowQuarantine:
    """Collects per-row failures according to an ``on_error`` mode.

    The readers call :meth:`add` for every malformed row; in
    ``"raise"`` mode the original exception is re-raised (with the
    file/line context prepended), otherwise the row is recorded (or
    silently dropped in ``"skip"`` mode — it is still *counted* so the
    skip path can assert "something parseable remained").
    """

    def __init__(self, on_error: str, path: str = "") -> None:
        self.on_error = check_on_error(on_error)
        self.path = path
        self.rows: list[QuarantinedRow] = []
        self.dropped = 0

    @property
    def lenient(self) -> bool:
        return self.on_error != "raise"

    def add(
        self,
        line_number: int,
        reason: str,
        field: str | None = None,
        raw: str | None = None,
        cause: BaseException | None = None,
    ) -> None:
        """Record one malformed row (or abort, in strict mode).

        Raises:
            SerializationError: In ``"raise"`` mode, wrapping
                ``cause`` with file/line context.
        """
        if not self.lenient:
            raise SerializationError(
                f"{self.path}:{line_number}: {reason}"
            ) from cause
        self.dropped += 1
        if self.on_error == "collect":
            preview = None
            if raw is not None:
                text = raw.rstrip("\n")
                if len(text) > _RAW_PREVIEW_CHARS:
                    text = text[:_RAW_PREVIEW_CHARS] + "..."
                preview = text
            self.rows.append(
                QuarantinedRow(
                    line_number=line_number,
                    reason=reason,
                    field=field,
                    raw=preview,
                )
            )

    def report(self, log: FailureLog, format: str) -> LogReadReport:
        """Wrap the final log into a :class:`LogReadReport`."""
        return LogReadReport(
            log=log,
            quarantined=tuple(self.rows),
            path=self.path,
            format=format,
        )


def sift_records(
    machine: str,
    window_start: datetime,
    window_end: datetime,
    rows: list[tuple[int, str | None, FailureRecord]],
    quarantine: RowQuarantine,
) -> list[FailureRecord]:
    """Apply the log-level invariants row by row, quarantining violators.

    :class:`~repro.core.records.FailureLog` enforces unique record ids,
    in-window timestamps, and taxonomy membership — but raises for the
    whole log.  This re-checks the same invariants per row (in file
    order, so e.g. the *second* occurrence of a duplicated id is the
    one quarantined) and returns the survivors, which are then
    guaranteed to construct a valid log.

    ``rows`` holds ``(line_number, raw_text, record)`` triples.
    """
    valid_names = {cat.name for cat in categories_for(machine)}
    seen_ids: set[int] = set()
    kept: list[FailureRecord] = []
    for line_number, raw, record in rows:
        if record.record_id in seen_ids:
            quarantine.add(
                line_number,
                f"duplicate record_id {record.record_id}",
                field="record_id",
                raw=raw,
            )
            continue
        if not (window_start <= record.timestamp <= window_end):
            quarantine.add(
                line_number,
                f"timestamp {record.timestamp.isoformat()} outside the "
                f"observation window [{window_start.isoformat()}, "
                f"{window_end.isoformat()}]",
                field="timestamp",
                raw=raw,
            )
            continue
        if record.category not in valid_names:
            quarantine.add(
                line_number,
                f"category {record.category!r} is not in the "
                f"{machine} taxonomy",
                field="category",
                raw=raw,
            )
            continue
        seen_ids.add(record.record_id)
        kept.append(record)
    return kept
