"""Deterministic multi-seed sweep engine.

Monte-Carlo replication (many seeds through the same pipeline) and
grid sweeps (many configurations over the same log) are embarrassingly
parallel, but naive parallelism breaks two guarantees this repo cares
about: result *determinism* (the output must not depend on worker
scheduling) and *parity* (the parallel path must return exactly what
the serial loop returns, in the same order).

:func:`sweep` provides both: work items are dispatched to a
:class:`~concurrent.futures.ProcessPoolExecutor` in chunks, and the
results are merged back in input order, so ``sweep(fn, seeds,
processes=4)`` is bit-identical to ``[fn(s) for s in seeds]`` for any
pure ``fn``.  With ``processes=None`` or ``1`` the loop runs serially
in-process — no pool, no pickling — which is also the fallback for
interactive callers on single-core machines.

``fn`` must be picklable (a module-level function, not a lambda or
closure) whenever ``processes > 1``; its items and results travel
through process boundaries.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

from repro.errors import ValidationError

__all__ = ["sweep", "default_processes"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def default_processes() -> int:
    """Worker count to use when the caller just says "parallel".

    The schedulable CPU count when available (containers often restrict
    affinity below ``os.cpu_count()``), else 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _chunksize(num_items: int, processes: int) -> int:
    """Chunk items so each worker sees a few chunks (load balance)
    without per-item dispatch overhead."""
    return max(1, num_items // (processes * 4))


def sweep(
    fn: Callable[[_ItemT], _ResultT],
    seeds: Iterable[_ItemT],
    processes: int | None = None,
    chunksize: int | None = None,
) -> list[_ResultT]:
    """Apply ``fn`` to every seed, optionally across processes.

    Args:
        fn: Pure function of one item.  Must be picklable (defined at
            module level) when ``processes > 1``.
        seeds: Work items — RNG seeds for Monte-Carlo replication, or
            any other per-run parameter objects.
        processes: ``None`` or ``1`` runs the serial loop in-process;
            ``N > 1`` uses a process pool with N workers.  Worker
            scheduling never affects results: the merge is seed-ordered.
        chunksize: Items per dispatched task; defaults to roughly
            ``len(seeds) / (4 * processes)``.

    Returns:
        ``[fn(s) for s in seeds]`` — same values, same order,
        regardless of ``processes``.

    Raises:
        ValidationError: On a non-positive ``processes`` or
            ``chunksize``.
    """
    if processes is not None and processes < 1:
        raise ValidationError(
            f"processes must be >= 1, got {processes}"
        )
    if chunksize is not None and chunksize < 1:
        raise ValidationError(
            f"chunksize must be >= 1, got {chunksize}"
        )
    items: Sequence[_ItemT] = list(seeds)
    if not items:
        return []
    if processes is None or processes == 1 or len(items) == 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        # Executor.map preserves input order, so the merge is exactly
        # the seed order no matter which worker finished first.
        return list(
            pool.map(
                fn,
                items,
                chunksize=chunksize or _chunksize(len(items), processes),
            )
        )
