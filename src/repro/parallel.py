"""Deterministic, fault-tolerant multi-seed sweep engine.

Monte-Carlo replication (many seeds through the same pipeline) and
grid sweeps (many configurations over the same log) are embarrassingly
parallel, but naive parallelism breaks two guarantees this repo cares
about: result *determinism* (the output must not depend on worker
scheduling) and *parity* (the parallel path must return exactly what
the serial loop returns, in the same order).

:func:`sweep` provides both: work items are dispatched to a
:class:`~concurrent.futures.ProcessPoolExecutor` in chunks, and the
results are merged back in input order, so ``sweep(fn, seeds,
processes=4)`` is bit-identical to ``[fn(s) for s in seeds]`` for any
pure ``fn``.  With ``processes=None`` or ``1`` the loop runs serially
in-process — no pool, no pickling — which is also the fallback for
interactive callers on single-core machines.

On top of determinism, :func:`sweep` is *fault tolerant*:

* A worker exception is always attributed: the default mode re-raises
  it as a :class:`SweepItemError` naming the item index and repr (the
  original exception is chained as ``__cause__``), so "seed 1337 is
  poisoned" is visible instead of a bare traceback.
* ``return_errors=True`` switches to per-item capture: every item
  yields a :class:`SweepOutcome` (result *or* error, plus the item and
  attempt count), so one poisoned seed no longer discards the other
  results.
* ``retries`` re-runs an item that raised (bounded, with optional
  exponential backoff) before declaring it failed — for transient
  faults such as a flaky filesystem.
* A worker process dying (segfault, OOM kill, ``os._exit``) raises
  :class:`~concurrent.futures.process.BrokenProcessPool` inside the
  executor; :func:`sweep` recovers by re-dispatching the unfinished
  tail serially in-process, so completed chunks are kept.  This
  assumes the crash was transient (it re-executes the crashing item
  in the parent); a deterministic hard crash will then take the parent
  down, which is no worse than the status quo.

``fn`` must be picklable (a module-level function or a picklable
callable object, not a lambda or closure) whenever ``processes > 1``;
its items and results travel through process boundaries.
"""

from __future__ import annotations

import os
import pickle
import time as _time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.errors import SweepError, ValidationError

__all__ = [
    "sweep",
    "sweep_iter",
    "default_processes",
    "SweepOutcome",
    "SweepItemError",
]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


class SweepItemError(SweepError):
    """One sweep item failed (after any retries).

    Attributes:
        index: Position of the failing item in the input sequence.
        item: The failing item itself.
        attempts: How many times the item was attempted.
    """

    def __init__(
        self, index: int, item: Any, attempts: int, cause: BaseException
    ) -> None:
        self.index = index
        self.item = item
        self.attempts = attempts
        attempt_text = (
            f" after {attempts} attempts" if attempts > 1 else ""
        )
        super().__init__(
            f"sweep item {index} ({item!r}) failed{attempt_text}: "
            f"{type(cause).__name__}: {cause}"
        )


@dataclass(frozen=True)
class SweepOutcome:
    """Result of one sweep item under ``return_errors=True``.

    Exactly one of :attr:`result` / :attr:`error` is meaningful; check
    :attr:`ok` (or call :meth:`unwrap`) before touching :attr:`result`.
    """

    index: int
    item: Any
    result: Any = None
    error: BaseException | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True when the item produced a result."""
        return self.error is None

    def unwrap(self) -> Any:
        """Return the result, or raise the attributed failure.

        Raises:
            SweepItemError: If this item failed.
        """
        if self.error is not None:
            raise SweepItemError(
                self.index, self.item, self.attempts, self.error
            ) from self.error
        return self.result


def default_processes() -> int:
    """Worker count to use when the caller just says "parallel".

    The schedulable CPU count when available (containers often restrict
    affinity below ``os.cpu_count()``), else 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _chunksize(num_items: int, processes: int) -> int:
    """Chunk items so each worker sees a few chunks (load balance)
    without per-item dispatch overhead."""
    return max(1, num_items // (processes * 4))


def _picklable_error(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else a
    :class:`SweepError` stand-in carrying its repr.

    Captured worker exceptions travel back to the parent as *data*; an
    unpicklable one would otherwise kill the whole result chunk.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return SweepError(
            f"worker raised unpicklable {type(exc).__name__}: {exc!r}"
        )


def _attempt_item(
    fn: Callable[[_ItemT], _ResultT],
    item: _ItemT,
    retries: int,
    backoff_seconds: float,
) -> tuple[Any, BaseException | None, int]:
    """Run one item with bounded retry; never raises ``Exception``.

    Returns ``(result, error, attempts)`` where ``error`` is None on
    success.  Backoff sleeps ``backoff_seconds * 2**(attempt - 1)``
    between attempts.  ``BaseException``s that are not ``Exception``
    (``KeyboardInterrupt``, worker shutdown) propagate.
    """
    last: BaseException | None = None
    attempts = 0
    for attempt in range(retries + 1):
        attempts = attempt + 1
        try:
            return fn(item), None, attempts
        except Exception as exc:
            last = exc
            if attempt < retries and backoff_seconds > 0:
                _time.sleep(backoff_seconds * (2.0 ** attempt))
    assert last is not None
    return None, last, attempts


def _run_chunk(
    fn: Callable[[_ItemT], _ResultT],
    chunk: Sequence[_ItemT],
    retries: int,
    backoff_seconds: float,
) -> list[tuple[Any, BaseException | None, int]]:
    """Worker entry point: run a chunk, capturing per-item failures."""
    out = []
    for item in chunk:
        result, error, attempts = _attempt_item(
            fn, item, retries, backoff_seconds
        )
        if error is not None:
            error = _picklable_error(error)
        out.append((result, error, attempts))
    return out


def _finalize(
    items: Sequence[_ItemT],
    raw: Sequence[tuple[Any, BaseException | None, int]],
    return_errors: bool,
) -> list[Any]:
    """Turn per-item ``(result, error, attempts)`` triples into the
    caller-facing value: raw results (raising on the first failure) or
    :class:`SweepOutcome`s."""
    if return_errors:
        return [
            SweepOutcome(
                index=index,
                item=item,
                result=result,
                error=error,
                attempts=attempts,
            )
            for index, (item, (result, error, attempts)) in enumerate(
                zip(items, raw)
            )
        ]
    results = []
    for index, (item, (result, error, attempts)) in enumerate(
        zip(items, raw)
    ):
        if error is not None:
            raise SweepItemError(index, item, attempts, error) from error
        results.append(result)
    return results


def sweep(
    fn: Callable[[_ItemT], _ResultT],
    seeds: Iterable[_ItemT],
    processes: int | None = None,
    chunksize: int | None = None,
    return_errors: bool = False,
    retries: int = 0,
    backoff_seconds: float = 0.0,
) -> list[_ResultT] | list[SweepOutcome]:
    """Apply ``fn`` to every seed, optionally across processes.

    Args:
        fn: Pure function of one item.  Must be picklable (defined at
            module level) when ``processes > 1``.
        seeds: Work items — RNG seeds for Monte-Carlo replication, or
            any other per-run parameter objects.
        processes: ``None`` or ``1`` runs the serial loop in-process;
            ``N > 1`` uses a process pool with N workers.  Worker
            scheduling never affects results: the merge is seed-ordered.
        chunksize: Items per dispatched task; defaults to roughly
            ``len(seeds) / (4 * processes)``.
        return_errors: When True, return one :class:`SweepOutcome` per
            item (in seed order) instead of raw results; failures are
            captured per item rather than raised, so every healthy seed
            still yields its result.
        retries: Re-run an item that raised up to this many extra
            times before recording/raising the failure.
        backoff_seconds: Base of the exponential backoff slept between
            retry attempts (``backoff * 2**attempt``); 0 retries
            immediately.

    Returns:
        ``[fn(s) for s in seeds]`` — same values, same order,
        regardless of ``processes`` — or a list of
        :class:`SweepOutcome` when ``return_errors`` is True.

    Raises:
        ValidationError: On a non-positive ``processes``/``chunksize``
            or a negative ``retries``/``backoff_seconds``.
        SweepItemError: When an item fails (after retries) and
            ``return_errors`` is False.  The error names the item index
            and repr and chains the worker exception as ``__cause__``.
    """
    if processes is not None and processes < 1:
        raise ValidationError(
            f"processes must be >= 1, got {processes}"
        )
    if chunksize is not None and chunksize < 1:
        raise ValidationError(
            f"chunksize must be >= 1, got {chunksize}"
        )
    if retries < 0:
        raise ValidationError(f"retries must be >= 0, got {retries}")
    if backoff_seconds < 0:
        raise ValidationError(
            f"backoff_seconds must be >= 0, got {backoff_seconds}"
        )
    items: Sequence[_ItemT] = list(seeds)
    if not items:
        return []
    if processes is None or processes == 1 or len(items) == 1:
        raw = [
            _attempt_item(fn, item, retries, backoff_seconds)
            for item in items
        ]
        return _finalize(items, raw, return_errors)

    size = chunksize or _chunksize(len(items), processes)
    chunks = [
        items[start:start + size]
        for start in range(0, len(items), size)
    ]
    chunk_results: list[
        list[tuple[Any, BaseException | None, int]] | None
    ] = [None] * len(chunks)
    with ProcessPoolExecutor(max_workers=processes) as pool:
        futures = [
            pool.submit(_run_chunk, fn, chunk, retries, backoff_seconds)
            for chunk in chunks
        ]
        pool_broken = False
        for position, future in enumerate(futures):
            try:
                chunk_results[position] = future.result()
            except BrokenProcessPool:
                # A worker died (crash/OOM/_exit).  Futures the pool
                # never ran fail the same way instantly; keep
                # harvesting so chunks that did finish are not re-run,
                # and re-dispatch the rest below.
                pool_broken = True
    if pool_broken:
        # Completed chunks are kept; only unfinished ones re-run, in
        # the parent process, so hours of finished work survive a
        # single worker crash.
        for position, chunk in enumerate(chunks):
            if chunk_results[position] is None:
                chunk_results[position] = _run_chunk(
                    fn, chunk, retries, backoff_seconds
                )
    raw = [triple for chunk in chunk_results for triple in chunk]
    return _finalize(items, raw, return_errors)


def sweep_iter(
    fn: Callable[[_ItemT], _ResultT],
    seeds: Iterable[_ItemT],
    processes: int | None = None,
    chunksize: int | None = None,
    retries: int = 0,
    backoff_seconds: float = 0.0,
) -> Iterable[SweepOutcome]:
    """Stream :class:`SweepOutcome`s in input order as they finish.

    The generator twin of ``sweep(..., return_errors=True)``: same
    dispatch, same fault tolerance, same input-ordered parity
    guarantee — but outcomes are yielded chunk by chunk instead of
    materialised, so a consumer folding a large replication ensemble
    into online statistics holds one chunk of results at a time, not
    all of them.  Later chunks keep computing in the pool while earlier
    ones are consumed; abandoning the generator early cancels what has
    not started and shuts the pool down.

    Args and failure semantics match :func:`sweep` with
    ``return_errors=True`` (failures are captured per item, never
    raised; a dead worker re-runs unfinished chunks in-process).

    Raises:
        ValidationError: On the same invalid arguments as
            :func:`sweep`.
    """
    if processes is not None and processes < 1:
        raise ValidationError(
            f"processes must be >= 1, got {processes}"
        )
    if chunksize is not None and chunksize < 1:
        raise ValidationError(
            f"chunksize must be >= 1, got {chunksize}"
        )
    if retries < 0:
        raise ValidationError(f"retries must be >= 0, got {retries}")
    if backoff_seconds < 0:
        raise ValidationError(
            f"backoff_seconds must be >= 0, got {backoff_seconds}"
        )
    items: Sequence[_ItemT] = list(seeds)
    if not items:
        return
    if processes is None or processes == 1 or len(items) == 1:
        for index, item in enumerate(items):
            result, error, attempts = _attempt_item(
                fn, item, retries, backoff_seconds
            )
            yield SweepOutcome(
                index=index,
                item=item,
                result=result,
                error=error,
                attempts=attempts,
            )
        return

    size = chunksize or _chunksize(len(items), processes)
    chunks = [
        items[start:start + size]
        for start in range(0, len(items), size)
    ]
    pool = ProcessPoolExecutor(max_workers=processes)
    try:
        futures = [
            pool.submit(_run_chunk, fn, chunk, retries, backoff_seconds)
            for chunk in chunks
        ]
        start = 0
        for position, future in enumerate(futures):
            chunk = chunks[position]
            try:
                triples = future.result()
            except BrokenProcessPool:
                # Same recovery as sweep(), per chunk: a dead worker
                # re-runs this chunk in-process; chunks already yielded
                # are untouched and later chunks get the same
                # treatment when their futures surface the break.
                triples = _run_chunk(fn, chunk, retries, backoff_seconds)
            for offset, (item, (result, error, attempts)) in enumerate(
                zip(chunk, triples)
            ):
                yield SweepOutcome(
                    index=start + offset,
                    item=item,
                    result=result,
                    error=error,
                    attempts=attempts,
                )
            start += len(chunk)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
