"""repro — reproduction of "Examining Failures and Repairs on
Supercomputers with Multi-GPU Compute Nodes" (DSN 2021).

Quickstart::

    from repro.synth import generate_log
    from repro.core import category_breakdown, tbf_distribution

    log = generate_log("tsubame2", seed=42)
    print(category_breakdown(log).dominant_category)   # 'GPU'
    print(tbf_distribution(log).mtbf_hours)            # ~15 h

See the package docs:

* :mod:`repro.core` — the paper's analyses (RQ1-RQ5).
* :mod:`repro.machines` — Tsubame-2/3 specs and node topologies.
* :mod:`repro.synth` — calibrated synthetic failure logs.
* :mod:`repro.stats` — statistical primitives.
* :mod:`repro.sim` — discrete-event failure/repair simulator.
* :mod:`repro.predict` — failure prediction and spare provisioning.
* :mod:`repro.stream` — online monitoring, estimators, and alerting.
* :mod:`repro.io` — log serialization.
* :mod:`repro.parallel` — deterministic multi-seed sweep engine.
"""

__version__ = "1.0.0"
