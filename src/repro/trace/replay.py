"""Replay a recorded trace through the real simulation components.

Replay is *RNG-free*: the failure history drives the run directly, so
it reproduces across Python/NumPy versions that would consume a seed's
bit stream differently.  Only the fault injector is substituted — the
engine, cluster, repair service, and scheduler are the production
classes — so replay doubles as a determinism detector: any
order-dependent decision in those components shows up as a divergence
between the recorded and replayed event streams.

The :class:`ReplayInjector` *chains* its scheduling (failure *i*
schedules failure *i+1* from inside its own callback), exactly as
:class:`repro.sim.faults.FaultInjector` does.  This is load-bearing:
the engine breaks time ties by insertion sequence, so scheduling all
failures upfront would give them different heap positions than the
original run and perturb tie ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

from repro.core.records import FailureLog, FailureRecord
from repro.errors import ReplayDivergenceError, TraceError
from repro.machines.specs import get_machine
from repro.sim.cluster import Cluster, NodeState
from repro.sim.engine import SimulationEngine
from repro.sim.jobs import Job
from repro.sim.repair import RepairPolicy, RepairService, SparePool
from repro.sim.scheduler import Scheduler
from repro.sim.simulator import SimulationConfig, SimulationReport
from repro.trace.format import Trace, canonical_line
from repro.trace.recorder import TraceRecorder

__all__ = [
    "ReplayInjector",
    "ReplaySimulator",
    "TraceDivergence",
    "ReplayResult",
    "compare_traces",
    "replay",
]

#: Distinguishes "no checkpoint override" from "override to None".
_UNSET = object()


class ReplayInjector:
    """Feeds a recorded failure history into a live simulation.

    Drop-in for :class:`repro.sim.faults.FaultInjector` as far as the
    rest of the simulation is concerned: same listener hooks, same
    ``start()``/``injected_count``/``injected_log()`` surface, and —
    critically — the same internal order of operations per failure
    (fail the node, submit the repair if the node was healthy, record
    and publish, notify listeners, schedule the next failure last).
    ``was_healthy`` is re-evaluated against the *replayed* cluster
    state rather than recorded, which is what lets a counterfactual
    replay absorb a failure on a node a slower repair policy has not
    yet returned to service.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: Cluster,
        repair: RepairService,
        machine: str,
        failures: list[dict],
    ) -> None:
        self._engine = engine
        self._cluster = cluster
        self._repair = repair
        self._spec = get_machine(machine)
        self._failures = failures
        self._index = 0
        self._injected: list[FailureRecord] = []
        self._next_record_id = 0
        self._failure_listeners: list = []
        self._record_listeners: list = []

    def add_failure_listener(self, callback) -> None:
        """Register ``callback(node_id, category)`` to run per failure."""
        self._failure_listeners.append(callback)

    def add_record_listener(self, callback) -> None:
        """Register ``callback(record, time_hours)`` to run per failure."""
        self._record_listeners.append(callback)

    @property
    def injected_count(self) -> int:
        """Failures replayed so far."""
        return self._next_record_id

    def start(self) -> None:
        """Schedule the first recorded failure at its recorded time."""
        self._schedule_next()

    def injected_log(self) -> FailureLog:
        """The replayed failures as a validated log.

        Raises:
            SimulationError: If nothing has been replayed yet (via
                :class:`FailureLog` construction on an empty run).
            TraceError: Never — kept for interface symmetry.
        """
        from repro.errors import SimulationError

        if not self._injected:
            raise SimulationError("no failures replayed yet")
        start = self._spec.log_start
        end = start + timedelta(hours=self._engine.now + 1.0)
        return FailureLog(
            machine=self._spec.name,
            records=tuple(self._injected),
            window_start=start,
            window_end=end,
        )

    # -- internals -----------------------------------------------------------

    def _schedule_next(self) -> None:
        if self._index >= len(self._failures):
            return
        event = self._failures[self._index]
        try:
            when = event["time"]
        except (TypeError, KeyError) as exc:
            raise TraceError(
                f"fail event {self._index} has no time"
            ) from exc
        self._engine.schedule_at(when, self._fire)

    def _fire(self) -> None:
        event = self._failures[self._index]
        self._index += 1
        node_id = event["node"]
        category = event["cat"]
        duration = event["ttr"]
        gpus = tuple(event["gpus"])
        was_healthy = (
            self._cluster.node(node_id).state is NodeState.HEALTHY
        )
        self._cluster.fail(node_id, category, self._engine.now, gpus)
        if was_healthy:
            self._repair.submit(node_id, category, duration)
        self._record(node_id, category, duration, gpus)
        for callback in self._failure_listeners:
            callback(node_id, category)
        self._schedule_next()

    def _record(
        self,
        node_id: int,
        category: str,
        duration: float,
        gpus: tuple[int, ...],
    ) -> None:
        engine = self._engine
        record = FailureRecord(
            record_id=self._next_record_id,
            timestamp=self._spec.log_start
            + timedelta(hours=engine.now),
            node_id=node_id,
            category=category,
            ttr_hours=duration,
            gpus_involved=gpus,
        )
        self._next_record_id += 1
        self._injected.append(record)
        for callback in self._record_listeners:
            callback(record, engine.now)
        if engine.has_subscribers("failure"):
            engine.publish(
                "failure", record=record, time_hours=engine.now
            )


class ReplaySimulator:
    """Re-executes a trace; mirrors :class:`ClusterSimulator` wiring.

    Without overrides, the replayed run is the recorded run —
    bit-exactly.  The keyword overrides are the counterfactual levers
    (see :mod:`repro.trace.whatif`): they change the *response* to the
    recorded failure history without touching the history itself.
    """

    def __init__(
        self,
        trace: Trace,
        *,
        repair_policy: RepairPolicy | None = None,
        initial_spares: dict[str, int] | None = None,
        checkpoint_policy=_UNSET,
        backfill_depth: int | None = None,
    ) -> None:
        base = trace.config
        if repair_policy is None:
            repair_policy = base.repair_policy
        elif not repair_policy.hardware_categories:
            repair_policy = RepairPolicy(
                num_technicians=repair_policy.num_technicians,
                spare_lead_time_hours=repair_policy.spare_lead_time_hours,
                hardware_categories=base.repair_policy.hardware_categories,
            )
        if initial_spares is None:
            initial_spares = base.initial_spares
        if checkpoint_policy is _UNSET:
            checkpoint_policy = base.checkpoint_policy
        self.config = SimulationConfig(
            machine=base.machine,
            seed=base.seed,
            intensity=base.intensity,
            health_test_effectiveness=base.health_test_effectiveness,
            presample=base.presample,
            repair_policy=repair_policy,
            initial_spares=dict(initial_spares),
            checkpoint_policy=checkpoint_policy,
            workload=base.workload,
            train=base.train,
        )
        self._trace = trace
        self._spec = get_machine(base.machine)
        self._ran = False

        self.engine = SimulationEngine()
        self.cluster = Cluster(self._spec)
        self.spares = SparePool(dict(initial_spares))
        self.repair = RepairService(
            self.engine, self.cluster, repair_policy, self.spares
        )
        self.injector = ReplayInjector(
            self.engine,
            self.cluster,
            self.repair,
            base.machine,
            trace.failures,
        )
        self.training = None
        if base.train is not None:
            if checkpoint_policy is None:
                raise TraceError(
                    "training traces need a checkpoint policy; "
                    "refusing the checkpoint_policy=None override"
                )
            from repro.train.gang import GangTrainingRun

            self.training = GangTrainingRun(
                self.engine, self.cluster, base.train, checkpoint_policy
            )
            self.injector.add_failure_listener(
                lambda node_id, category:
                self.training.handle_node_failure(node_id, category)
            )
            self.repair.add_completion_listener(
                self.training.handle_node_repair
            )
        self.scheduler: Scheduler | None = None
        job_events = trace.jobs
        # A training trace carries the gang's own job events; they are
        # re-emitted by the replayed gang, not a batch scheduler.
        if base.train is None and (
            base.workload is not None or job_events
        ):
            self.scheduler = Scheduler(
                self.engine,
                self.cluster,
                checkpoint_policy,
                **(
                    {}
                    if backfill_depth is None
                    else {"backfill_depth": backfill_depth}
                ),
            )
            self._jobs = [
                Job(
                    job_id=event["job"],
                    num_nodes=event["width"],
                    duration_hours=event["hours"],
                    submit_time=event["time"],
                )
                for event in job_events
            ]
            self.injector.add_failure_listener(
                lambda node_id, _category:
                self.scheduler.handle_node_failure(node_id)
            )
            self.repair.add_completion_listener(
                self.scheduler.handle_node_repair
            )
        else:
            self._jobs = []

    def run(self) -> SimulationReport:
        """Replay the recorded horizon and summarise the outcome.

        Raises:
            TraceError: If called twice — engine state is consumed.
        """
        if self._ran:
            raise TraceError(
                "this ReplaySimulator already ran; build a fresh one "
                "per replay"
            )
        self._ran = True
        horizon_hours = self._trace.horizon_hours
        if self.scheduler is not None:
            self.scheduler.submit_all(self._jobs)
        if self.training is not None:
            # Same insertion order as ClusterSimulator: the gang's t=0
            # submission precedes the first failure.
            self.training.start()
        self.injector.start()
        self.engine.run_until(horizon_hours)
        history = self.cluster.history
        return SimulationReport(
            machine=self._spec.name,
            horizon_hours=horizon_hours,
            failures_injected=self.injector.injected_count,
            repairs_completed=len(history),
            effective_mttr_hours=(
                self.cluster.effective_mttr_hours() if history else 0.0
            ),
            mean_waiting_hours=(
                self.cluster.mean_waiting_hours() if history else 0.0
            ),
            availability=self.cluster.availability(horizon_hours),
            spare_stockouts=self.spares.stockouts,
            spares_consumed=self.spares.consumed,
            scheduler=(
                self.scheduler.stats if self.scheduler is not None else None
            ),
            train=(
                self.training.finalize(horizon_hours)
                if self.training is not None
                else None
            ),
        )

    def injected_log(self) -> FailureLog:
        """Failures replayed during the run, as an analyzable log."""
        return self.injector.injected_log()

    def to_store(self, path, *, reindex: bool = True):
        """Persist the replayed failures to the store at ``path``.

        Same contract as :meth:`ClusterSimulator.to_store`: a missing
        store is created, records renumber by default, and the append
        summary is returned.
        """
        from repro.store import ingest_log

        return ingest_log(path, self.injected_log(), reindex=reindex)


@dataclass(frozen=True)
class TraceDivergence:
    """First point where a replay departed from its recording."""

    kind: str  # "event", "event_count", "report"
    index: int | None
    expected: str | None
    actual: str | None

    def describe(self) -> str:
        """Human-readable one-paragraph diagnosis."""
        if self.kind == "event":
            return (
                f"replay diverged at event {self.index}:\n"
                f"  recorded: {self.expected}\n"
                f"  replayed: {self.actual}"
            )
        if self.kind == "event_count":
            return (
                f"replay produced a different number of events "
                f"(first unmatched at index {self.index}):\n"
                f"  recorded: {self.expected}\n"
                f"  replayed: {self.actual}"
            )
        return (
            f"replay reproduced every event but the final report "
            f"differs:\n"
            f"  recorded: {self.expected}\n"
            f"  replayed: {self.actual}"
        )


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one verified replay."""

    report: SimulationReport
    trace: Trace
    divergence: TraceDivergence | None
    simulator: ReplaySimulator

    @property
    def bit_exact(self) -> bool:
        """True when the replay reproduced the recording exactly."""
        return self.divergence is None


def compare_traces(
    recorded: Trace, replayed: Trace
) -> TraceDivergence | None:
    """Compare two traces event-by-event, then report-by-report.

    Returns the first divergence, or None when the replay is
    bit-exact.  The ``end`` line (wall-clock timing) is deliberately
    outside the comparison.
    """
    recorded_lines = recorded.event_lines()
    replayed_lines = replayed.event_lines()
    for index, (expected, actual) in enumerate(
        zip(recorded_lines, replayed_lines)
    ):
        if expected != actual:
            return TraceDivergence(
                kind="event",
                index=index,
                expected=expected,
                actual=actual,
            )
    if len(recorded_lines) != len(replayed_lines):
        index = min(len(recorded_lines), len(replayed_lines))
        return TraceDivergence(
            kind="event_count",
            index=index,
            expected=(
                recorded_lines[index]
                if index < len(recorded_lines)
                else None
            ),
            actual=(
                replayed_lines[index]
                if index < len(replayed_lines)
                else None
            ),
        )
    if recorded.report is not None:
        expected = canonical_line(recorded.report)
        actual = (
            canonical_line(replayed.report)
            if replayed.report is not None
            else None
        )
        if expected != actual:
            return TraceDivergence(
                kind="report",
                index=None,
                expected=expected,
                actual=actual,
            )
    return None


def replay(trace: Trace, *, verify: bool = True) -> ReplayResult:
    """Re-execute a trace and check it reproduces bit-exactly.

    Args:
        trace: A parsed trace (see :func:`repro.trace.read_trace`).
        verify: Raise on divergence (default).  ``False`` returns the
            result with ``divergence`` populated instead, for callers
            that want to render the diagnosis themselves.

    Returns:
        A :class:`ReplayResult` with the replayed report, the re-
        recorded trace, and the first divergence (None when exact).

    Raises:
        ReplayDivergenceError: When ``verify`` and the replay did not
            reproduce the recording; carries the
            :class:`TraceDivergence`.
    """
    sim = ReplaySimulator(trace)
    recorder = TraceRecorder.attach(sim)
    report = sim.run()
    replayed = recorder.finalize(report, trace.horizon_hours)
    divergence = compare_traces(trace, replayed)
    if divergence is not None and verify:
        raise ReplayDivergenceError(
            divergence.describe(), divergence=divergence
        )
    return ReplayResult(
        report=report,
        trace=replayed,
        divergence=divergence,
        simulator=sim,
    )
