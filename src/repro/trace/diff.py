"""Structured diffs between simulation outcome reports.

A counterfactual replay answers "what would this recorded month have
looked like under policy B?"  The answer is a field-by-field diff of
the two :class:`SimulationReport` outcomes — numeric deltas where the
fields are numeric, nested under ``scheduler.`` for the workload
counters — rather than two reports the reader must eyeball.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.simulator import SimulationReport
from repro.trace.format import report_to_dict

__all__ = ["FieldDiff", "ReportDiff", "diff_reports"]


@dataclass(frozen=True)
class FieldDiff:
    """One report field under the two policies."""

    field: str
    baseline: object
    counterfactual: object
    delta: float | None

    @property
    def changed(self) -> bool:
        """True when the two values differ."""
        return self.baseline != self.counterfactual


@dataclass(frozen=True)
class ReportDiff:
    """Field-wise comparison of two simulation reports."""

    fields: tuple[FieldDiff, ...]

    @property
    def changed(self) -> tuple[FieldDiff, ...]:
        """Only the fields whose values differ."""
        return tuple(f for f in self.fields if f.changed)

    def __getitem__(self, field: str) -> FieldDiff:
        for entry in self.fields:
            if entry.field == field:
                return entry
        raise KeyError(field)

    def to_dict(self) -> dict:
        """JSON-ready representation (stable field order)."""
        return {
            entry.field: {
                "baseline": entry.baseline,
                "counterfactual": entry.counterfactual,
                "delta": entry.delta,
            }
            for entry in self.fields
        }

    def format_text(self, *, changed_only: bool = True) -> str:
        """Aligned plain-text rendering for the CLI."""
        rows = self.changed if changed_only else self.fields
        if not rows:
            return "no outcome differences"
        width = max(len(r.field) for r in rows)
        lines = []
        for entry in rows:
            delta = ""
            if entry.delta is not None:
                delta = f"  ({entry.delta:+g})"
            lines.append(
                f"{entry.field.ljust(width)}  "
                f"{entry.baseline!r} -> {entry.counterfactual!r}{delta}"
            )
        return "\n".join(lines)


def _flatten(report: dict) -> dict:
    flat: dict = {}
    for key, value in report.items():
        if key == "scheduler":
            if value is None:
                flat["scheduler"] = None
            else:
                for sub_key, sub_value in value.items():
                    flat[f"scheduler.{sub_key}"] = sub_value
        else:
            flat[key] = value
    return flat


def diff_reports(
    baseline: SimulationReport | dict,
    counterfactual: SimulationReport | dict,
) -> ReportDiff:
    """Diff two reports (objects or their trace-dict form).

    Fields present in only one report appear with ``None`` on the
    other side (e.g. ``scheduler.*`` when only one run had a
    workload).  Deltas are ``counterfactual - baseline`` and only
    computed for numeric pairs.
    """
    if isinstance(baseline, SimulationReport):
        baseline = report_to_dict(baseline)
    if isinstance(counterfactual, SimulationReport):
        counterfactual = report_to_dict(counterfactual)
    left = _flatten(baseline)
    right = _flatten(counterfactual)
    fields = []
    for key in [*left, *(k for k in right if k not in left)]:
        a = left.get(key)
        b = right.get(key)
        delta = None
        if (
            isinstance(a, (int, float))
            and isinstance(b, (int, float))
            and not isinstance(a, bool)
            and not isinstance(b, bool)
        ):
            delta = b - a
        fields.append(
            FieldDiff(
                field=key, baseline=a, counterfactual=b, delta=delta
            )
        )
    return ReportDiff(fields=tuple(fields))
