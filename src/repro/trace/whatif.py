"""Counterfactual replay: same failures, different operations.

The paper's RQ5 discussion frames MTTR as an *operational* choice —
staffing, spares on hand, procurement lead times.  ``run_whatif``
makes that discussion quantitative for a concrete recorded history:
replay the same failure sequence under an alternative repair policy /
spare inventory / checkpoint interval / backfill depth and diff the
outcomes.  The failure *history* is held fixed; only the response to
it changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.repair import RepairPolicy
from repro.sim.simulator import SimulationReport
from repro.trace.diff import ReportDiff, diff_reports
from repro.trace.format import Trace
from repro.trace.replay import ReplaySimulator, replay

__all__ = ["WhatIf", "WhatIfResult", "run_whatif"]


@dataclass(frozen=True)
class WhatIf:
    """Counterfactual overrides; ``None`` fields keep the recording's
    value.

    ``checkpoint_interval_hours`` adjusts only the interval of the
    recorded checkpoint policy (or creates one with the default costs
    if the recording had none); ``checkpoint_policy`` replaces the
    policy wholesale and wins when both are given.
    """

    num_technicians: int | None = None
    spare_lead_time_hours: float | None = None
    initial_spares: dict[str, int] | None = None
    checkpoint_interval_hours: float | None = None
    checkpoint_policy: CheckpointPolicy | None = None
    backfill_depth: int | None = None

    @property
    def empty(self) -> bool:
        """True when no override is set."""
        return all(
            getattr(self, name) is None
            for name in (
                "num_technicians",
                "spare_lead_time_hours",
                "initial_spares",
                "checkpoint_interval_hours",
                "checkpoint_policy",
                "backfill_depth",
            )
        )

    def build_simulator(self, trace: Trace) -> ReplaySimulator:
        """Construct the counterfactual replay for a trace."""
        base = trace.config
        repair_policy = None
        if (
            self.num_technicians is not None
            or self.spare_lead_time_hours is not None
        ):
            repair_policy = RepairPolicy(
                num_technicians=(
                    self.num_technicians
                    if self.num_technicians is not None
                    else base.repair_policy.num_technicians
                ),
                spare_lead_time_hours=(
                    self.spare_lead_time_hours
                    if self.spare_lead_time_hours is not None
                    else base.repair_policy.spare_lead_time_hours
                ),
                hardware_categories=(
                    base.repair_policy.hardware_categories
                ),
            )
        kwargs: dict = {}
        if repair_policy is not None:
            kwargs["repair_policy"] = repair_policy
        if self.initial_spares is not None:
            kwargs["initial_spares"] = self.initial_spares
        if self.checkpoint_policy is not None:
            kwargs["checkpoint_policy"] = self.checkpoint_policy
        elif self.checkpoint_interval_hours is not None:
            recorded = base.checkpoint_policy
            if recorded is None:
                kwargs["checkpoint_policy"] = CheckpointPolicy(
                    interval_hours=self.checkpoint_interval_hours,
                    cost_hours=0.0,
                )
            else:
                kwargs["checkpoint_policy"] = CheckpointPolicy(
                    interval_hours=self.checkpoint_interval_hours,
                    cost_hours=recorded.cost_hours,
                    restart_cost_hours=recorded.restart_cost_hours,
                )
        if self.backfill_depth is not None:
            kwargs["backfill_depth"] = self.backfill_depth
        return ReplaySimulator(trace, **kwargs)


@dataclass(frozen=True)
class WhatIfResult:
    """A counterfactual outcome next to its recorded baseline."""

    baseline: dict
    counterfactual: SimulationReport
    diff: ReportDiff


def run_whatif(
    trace: Trace,
    overrides: WhatIf,
    *,
    verify_baseline: bool = False,
) -> WhatIfResult:
    """Replay a trace under overrides and diff against the recording.

    The baseline is the report stored *in* the trace; when the trace
    predates the report line (or ``verify_baseline`` is set), the
    baseline is re-derived by a bit-exact replay first, so the diff
    never compares against a stale or absent report.

    Raises:
        TraceError: If the overrides are empty — a whatif with nothing
            changed is a :func:`repro.trace.replay.replay` in
            disguise, and silently returning an all-zero diff would
            mask a caller bug.
        ReplayDivergenceError: If baseline re-derivation was needed
            and the trace does not replay bit-exactly.
    """
    if overrides.empty:
        raise TraceError(
            "whatif overrides are empty; use replay() to re-execute "
            "a trace unchanged"
        )
    baseline = trace.report
    if baseline is None or verify_baseline:
        baseline_result = replay(trace)
        baseline = baseline_result.trace.report
    counterfactual = overrides.build_simulator(trace).run()
    return WhatIfResult(
        baseline=baseline,
        counterfactual=counterfactual,
        diff=diff_reports(baseline, counterfactual),
    )
