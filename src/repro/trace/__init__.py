"""Deterministic execution traces for the failure simulator.

A trace is a schema-versioned JSONL file capturing one simulated
horizon: the normalized configuration, every injected failure (node,
category, hands-on duration, GPU slots), the repair and job lifecycle
events the run published, and the final :class:`SimulationReport`.
Because the failure history is recorded *explicitly* rather than as an
RNG seed, a trace can be

* **replayed bit-exactly** — :func:`replay` re-executes the recorded
  history through the real repair service, cluster, and scheduler and
  verifies that every event and the final report reproduce exactly,
  diagnosing any divergence to the first mismatching event; and
* **replayed counterfactually** — :func:`run_whatif` re-runs the same
  failures under a different repair policy, spare inventory,
  checkpoint interval, or backfill depth and emits a structured diff
  of the two outcome reports.

See ``docs/REPLAY.md`` for the format and the determinism contract.
"""

from repro.trace.format import (
    SCHEMA_VERSION,
    QuarantinedLine,
    Trace,
    canonical_line,
    config_from_dict,
    config_to_dict,
    parse_trace,
    read_trace,
    report_to_dict,
    write_trace,
)
from repro.trace.recorder import TraceRecorder, record_run
from repro.trace.replay import (
    ReplayInjector,
    ReplayResult,
    ReplaySimulator,
    TraceDivergence,
    compare_traces,
    replay,
)
from repro.trace.diff import FieldDiff, ReportDiff, diff_reports
from repro.trace.whatif import WhatIf, WhatIfResult, run_whatif

__all__ = [
    "SCHEMA_VERSION",
    "FieldDiff",
    "QuarantinedLine",
    "ReplayInjector",
    "ReplayResult",
    "ReplaySimulator",
    "ReportDiff",
    "Trace",
    "TraceDivergence",
    "TraceRecorder",
    "WhatIf",
    "WhatIfResult",
    "canonical_line",
    "compare_traces",
    "config_from_dict",
    "config_to_dict",
    "diff_reports",
    "parse_trace",
    "read_trace",
    "record_run",
    "replay",
    "report_to_dict",
    "run_whatif",
    "write_trace",
]
