"""Trace recording: subscribe to the sim bus, buffer, serialize late.

The recorder rides the engine's pub/sub bus, so attaching it needs no
changes to the components being observed.  To keep recording off the
simulation's critical path (the benchmark floor is ≤10% overhead on
the events/s hot path), callbacks append compact tuples to an
in-memory list and all JSON work is deferred to :meth:`finalize`.
"""

from __future__ import annotations

import time as _time

from repro.errors import TraceError
from repro.sim.engine import SimulationEngine
from repro.sim.simulator import SimulationConfig, SimulationReport
from repro.trace.format import Trace, report_to_dict

__all__ = ["TraceRecorder", "record_run"]


class TraceRecorder:
    """Records one simulation run as an in-memory event buffer.

    Works against anything exposing ``engine`` (a
    :class:`SimulationEngine`) and ``config`` (a
    :class:`SimulationConfig`) — both :class:`ClusterSimulator` and
    :class:`repro.trace.replay.ReplaySimulator` qualify; use
    :meth:`attach`.  Attach *before* ``run()`` so no event is missed.
    """

    def __init__(
        self, engine: SimulationEngine, config: SimulationConfig
    ) -> None:
        self._config = config
        self._events: list[tuple] = []
        self._finalized = False
        self._started = _time.perf_counter()
        append = self._events.append
        # One tiny closure per topic; each buffers a compact tuple and
        # defers every serialization decision to finalize().
        engine.subscribe(
            "failure",
            lambda record, time_hours: append(
                (
                    "fail",
                    time_hours,
                    record.node_id,
                    record.category,
                    record.ttr_hours,
                    record.gpus_involved,
                )
            ),
        )
        engine.subscribe(
            "repair_start",
            lambda node_id, category, time_hours: append(
                ("rstart", time_hours, node_id, category)
            ),
        )
        engine.subscribe(
            "repair",
            lambda node_id, category, time_hours: append(
                ("rdone", time_hours, node_id, category)
            ),
        )
        engine.subscribe(
            "job_submit",
            lambda job_id, num_nodes, duration_hours, time_hours: append(
                ("jsub", time_hours, job_id, num_nodes, duration_hours)
            ),
        )
        engine.subscribe(
            "job_start",
            lambda job_id, nodes, time_hours: append(
                ("jstart", time_hours, job_id, nodes)
            ),
        )
        engine.subscribe(
            "job_complete",
            lambda job_id, time_hours: append(
                ("jdone", time_hours, job_id)
            ),
        )
        engine.subscribe(
            "job_killed",
            lambda job_id, node_id, time_hours: append(
                ("jkill", time_hours, job_id, node_id)
            ),
        )

    @classmethod
    def attach(cls, sim) -> TraceRecorder:
        """Attach to a simulator exposing ``engine`` and ``config``."""
        return cls(sim.engine, sim.config)

    @property
    def event_count(self) -> int:
        """Events buffered so far."""
        return len(self._events)

    def finalize(
        self,
        report: SimulationReport,
        horizon_hours: float,
    ) -> Trace:
        """Turn the buffer into a :class:`Trace` (one-shot).

        Raises:
            TraceError: If called twice — the buffer represents one
                run; recording a second horizon into it would splice
                two histories.
        """
        if self._finalized:
            raise TraceError(
                "recorder already finalized; attach a fresh "
                "TraceRecorder per run"
            )
        self._finalized = True
        events: list[dict] = []
        out = events.append
        for entry in self._events:
            kind = entry[0]
            if kind == "fail":
                out(
                    {
                        "t": "fail",
                        "time": entry[1],
                        "node": entry[2],
                        "cat": entry[3],
                        "ttr": entry[4],
                        "gpus": list(entry[5]),
                    }
                )
            elif kind == "rstart" or kind == "rdone":
                out(
                    {
                        "t": kind,
                        "time": entry[1],
                        "node": entry[2],
                        "cat": entry[3],
                    }
                )
            elif kind == "jsub":
                out(
                    {
                        "t": "jsub",
                        "time": entry[1],
                        "job": entry[2],
                        "width": entry[3],
                        "hours": entry[4],
                    }
                )
            elif kind == "jstart":
                out(
                    {
                        "t": "jstart",
                        "time": entry[1],
                        "job": entry[2],
                        "nodes": list(entry[3]),
                    }
                )
            elif kind == "jdone":
                out({"t": "jdone", "time": entry[1], "job": entry[2]})
            else:  # jkill
                out(
                    {
                        "t": "jkill",
                        "time": entry[1],
                        "job": entry[2],
                        "node": entry[3],
                    }
                )
        wall = _time.perf_counter() - self._started
        return Trace(
            config=self._config,
            horizon_hours=horizon_hours,
            events=events,
            report=report_to_dict(report),
            end={"events": len(events), "wall_s": wall},
        )


def record_run(sim, horizon_hours: float) -> tuple[SimulationReport, Trace]:
    """Run a simulator for one horizon and record it.

    Args:
        sim: An un-run simulator exposing ``engine``, ``config`` and
            ``run(horizon)`` (e.g. a fresh :class:`ClusterSimulator`).
        horizon_hours: The horizon to simulate.

    Returns:
        ``(report, trace)``.
    """
    recorder = TraceRecorder.attach(sim)
    report = sim.run(horizon_hours)
    return report, recorder.finalize(report, horizon_hours)
