"""Trace file format: canonical JSONL codec.

One trace = one JSONL file.  The first line is a header carrying the
schema version and the normalized :class:`SimulationConfig`; every
subsequent line is a typed event (key ``"t"``), ending with the final
simulation report and an ``end`` summary line:

``header``
    ``{"t":"header","schema":1,"config":{...},"horizon_hours":H}``
``fail``
    ``{"t":"fail","time":h,"node":n,"cat":c,"ttr":d,"gpus":[...]}``
``rstart`` / ``rdone``
    ``{"t":"rstart","time":h,"node":n,"cat":c}`` — hands-on repair
    work beginning / completing.
``jsub`` / ``jstart`` / ``jdone`` / ``jkill``
    Job lifecycle: submission (``job``, ``width``, ``hours``), start
    (``nodes``), completion, and kill-by-node-failure (``node``).
``report``
    The final :class:`SimulationReport` as a dict.
``end``
    Run summary (event count, wall seconds); excluded from bit-exact
    comparison because wall time is not deterministic.

Every line is canonical JSON — sorted keys, no whitespace, ``nan``
rejected — so byte equality of two traces is equivalent to semantic
equality, and Python float repr round-trips bit-exactly through the
codec.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.jobs import WorkloadConfig
from repro.sim.repair import RepairPolicy
from repro.sim.simulator import SimulationConfig, SimulationReport

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "QuarantinedLine",
    "Trace",
    "canonical_line",
    "config_to_dict",
    "config_from_dict",
    "report_to_dict",
    "parse_trace",
    "read_trace",
    "write_trace",
]

#: Current trace schema.  Readers reject traces from a newer schema
#: rather than silently misinterpreting them.
SCHEMA_VERSION = 1

#: Event line types (``"t"`` values) other than header/report/end.
EVENT_KINDS = frozenset(
    {"fail", "rstart", "rdone", "jsub", "jstart", "jdone", "jkill"}
)

#: Required keys per event kind (beyond ``"t"``).
_EVENT_KEYS: dict[str, frozenset[str]] = {
    "fail": frozenset({"time", "node", "cat", "ttr", "gpus"}),
    "rstart": frozenset({"time", "node", "cat"}),
    "rdone": frozenset({"time", "node", "cat"}),
    "jsub": frozenset({"time", "job", "width", "hours"}),
    "jstart": frozenset({"time", "job", "nodes"}),
    "jdone": frozenset({"time", "job"}),
    "jkill": frozenset({"time", "job", "node"}),
}


def canonical_line(obj: dict) -> str:
    """Serialize one trace line as canonical JSON (no newline).

    Raises:
        TraceError: If the object contains NaN/Infinity or values JSON
            cannot represent — traces must stay machine-comparable, so
            nothing is ever silently coerced.
    """
    try:
        return json.dumps(
            obj,
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise TraceError(f"trace line is not canonical JSON: {exc}") from exc


def config_to_dict(config: SimulationConfig) -> dict:
    """Serialize a normalized simulation config for the trace header."""
    checkpoint = config.checkpoint_policy
    workload = config.workload
    return {
        "machine": config.machine,
        "seed": config.seed,
        "intensity": config.intensity,
        "health_test_effectiveness": config.health_test_effectiveness,
        "presample": config.presample,
        "repair": {
            "num_technicians": config.repair_policy.num_technicians,
            "spare_lead_time_hours": (
                config.repair_policy.spare_lead_time_hours
            ),
            "hardware_categories": sorted(
                config.repair_policy.hardware_categories
            ),
        },
        "spares": {
            name: config.initial_spares[name]
            for name in sorted(config.initial_spares)
        },
        "checkpoint": (
            None
            if checkpoint is None
            else {
                "interval_hours": checkpoint.interval_hours,
                "cost_hours": checkpoint.cost_hours,
                "restart_cost_hours": checkpoint.restart_cost_hours,
            }
        ),
        "workload": (
            None
            if workload is None
            else {
                "mean_interarrival_hours": (
                    workload.mean_interarrival_hours
                ),
                "mean_duration_hours": workload.mean_duration_hours,
                "duration_sigma": workload.duration_sigma,
                "size_choices": list(workload.size_choices),
                "size_weights": list(workload.size_weights),
                "max_duration_hours": workload.max_duration_hours,
            }
        ),
        # The "train" key is emitted only when a training config is
        # present so pre-existing traces stay byte-identical.
        **(
            {"train": config.train.to_dict()}
            if config.train is not None else {}
        ),
    }


def _training_config_from_dict(data: dict):
    # Lazy import: repro.train sits above repro.sim/trace in the
    # package layering, so the codec only pulls it in for traces that
    # actually carry a training config.
    from repro.train.config import TrainingJobConfig

    return TrainingJobConfig.from_dict(data)


def config_from_dict(data: dict) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from a trace header.

    Raises:
        TraceError: On missing or malformed keys.
    """
    try:
        repair = data["repair"]
        checkpoint = data["checkpoint"]
        workload = data["workload"]
        return SimulationConfig(
            machine=data["machine"],
            seed=data["seed"],
            intensity=data["intensity"],
            health_test_effectiveness=data["health_test_effectiveness"],
            presample=data["presample"],
            repair_policy=RepairPolicy(
                num_technicians=repair["num_technicians"],
                spare_lead_time_hours=repair["spare_lead_time_hours"],
                hardware_categories=frozenset(
                    repair["hardware_categories"]
                ),
            ),
            initial_spares=dict(data["spares"]),
            checkpoint_policy=(
                None
                if checkpoint is None
                else CheckpointPolicy(
                    interval_hours=checkpoint["interval_hours"],
                    cost_hours=checkpoint["cost_hours"],
                    restart_cost_hours=checkpoint["restart_cost_hours"],
                )
            ),
            workload=(
                None
                if workload is None
                else WorkloadConfig(
                    mean_interarrival_hours=workload[
                        "mean_interarrival_hours"
                    ],
                    mean_duration_hours=workload["mean_duration_hours"],
                    duration_sigma=workload["duration_sigma"],
                    size_choices=tuple(workload["size_choices"]),
                    size_weights=tuple(workload["size_weights"]),
                    max_duration_hours=workload["max_duration_hours"],
                )
            ),
            train=(
                None
                if data.get("train") is None
                else _training_config_from_dict(data["train"])
            ),
        )
    except (KeyError, TypeError) as exc:
        raise TraceError(
            f"trace header config is malformed: {exc!r}"
        ) from exc


def report_to_dict(report: SimulationReport) -> dict:
    """Serialize a simulation report for the trace ``report`` line."""
    scheduler = report.scheduler
    return {
        "machine": report.machine,
        # float() for the same reason as Trace.horizon_hours: an int
        # horizon from the caller must not break byte comparison with
        # a replay driven by the (always-float) parsed header.
        "horizon_hours": float(report.horizon_hours),
        "failures_injected": report.failures_injected,
        "repairs_completed": report.repairs_completed,
        "effective_mttr_hours": report.effective_mttr_hours,
        "mean_waiting_hours": report.mean_waiting_hours,
        "availability": report.availability,
        "spare_stockouts": report.spare_stockouts,
        "spares_consumed": report.spares_consumed,
        "scheduler": (
            None
            if scheduler is None
            else {
                "jobs_submitted": scheduler.jobs_submitted,
                "jobs_completed": scheduler.jobs_completed,
                "jobs_killed_by_failures": (
                    scheduler.jobs_killed_by_failures
                ),
                "useful_node_hours": scheduler.useful_node_hours,
                "lost_node_hours": scheduler.lost_node_hours,
                "total_wait_hours": scheduler.total_wait_hours,
            }
        ),
        # Emitted only for training runs (pre-existing traces stay
        # byte-identical).
        **(
            {
                "train": {
                    "job_nodes": report.train.job_nodes,
                    "step_time_hours": report.train.step_time_hours,
                    "interrupts": report.train.interrupts,
                    "restarts": report.train.restarts,
                    "steps_committed": report.train.steps_committed,
                    "work_committed_hours": (
                        report.train.work_committed_hours
                    ),
                    "lost_work_hours": report.train.lost_work_hours,
                    "lost_work_by_category": {
                        name: report.train.lost_work_by_category[name]
                        for name in sorted(
                            report.train.lost_work_by_category
                        )
                    },
                    "stall_hours": report.train.stall_hours,
                    "restart_overhead_hours": (
                        report.train.restart_overhead_hours
                    ),
                    "checkpoint_overhead_hours": (
                        report.train.checkpoint_overhead_hours
                    ),
                    "blast_radius_node_hours": (
                        report.train.blast_radius_node_hours
                    ),
                    "elapsed_hours": report.train.elapsed_hours,
                    "completed": report.train.completed,
                    "completed_at_hours": report.train.completed_at_hours,
                }
            }
            if report.train is not None else {}
        ),
    }


@dataclass(frozen=True)
class QuarantinedLine:
    """One trace line that failed to parse and was set aside."""

    line_number: int
    raw: str
    reason: str


@dataclass
class Trace:
    """A parsed (or freshly recorded) execution trace."""

    config: SimulationConfig
    horizon_hours: float
    events: list[dict] = field(default_factory=list)
    report: dict | None = None
    end: dict | None = None

    def __post_init__(self) -> None:
        # Canonical form is float: an int horizon would serialize as
        # "600" but parse back as 600.0 and re-emit as "600.0",
        # breaking byte-identical codec round-trips.
        self.horizon_hours = float(self.horizon_hours)

    @property
    def failures(self) -> list[dict]:
        """The ``fail`` events, in firing order."""
        return [e for e in self.events if e["t"] == "fail"]

    @property
    def jobs(self) -> list[dict]:
        """The ``jsub`` events, in submission order."""
        return [e for e in self.events if e["t"] == "jsub"]

    def header_dict(self) -> dict:
        """The header line as a dict (including ``"t"``)."""
        return {
            "t": "header",
            "schema": SCHEMA_VERSION,
            "config": config_to_dict(self.config),
            "horizon_hours": self.horizon_hours,
        }

    def lines(self) -> list[str]:
        """Every line of the trace in canonical form, in order."""
        out = [canonical_line(self.header_dict())]
        out.extend(canonical_line(event) for event in self.events)
        if self.report is not None:
            out.append(canonical_line({"t": "report", **self.report}))
        if self.end is not None:
            out.append(canonical_line({"t": "end", **self.end}))
        return out

    def event_lines(self) -> list[str]:
        """Canonical lines of the events only (the bit-exact body)."""
        return [canonical_line(event) for event in self.events]

    def dumps(self) -> str:
        """The whole trace as JSONL text (trailing newline included)."""
        return "\n".join(self.lines()) + "\n"


def parse_trace(
    text: str, *, on_error: str = "raise"
) -> tuple[Trace, list[QuarantinedLine]]:
    """Parse JSONL trace text.

    Args:
        text: The trace file contents.
        on_error: ``"raise"`` (default) aborts on the first malformed
            line; ``"quarantine"`` sets malformed lines aside and
            returns them alongside the trace — the chaos-tolerant mode
            stream sources use on truncated or corrupt files.

    Returns:
        ``(trace, quarantined)``; ``quarantined`` is empty under
        ``"raise"``.

    Raises:
        TraceError: On a malformed line (``"raise"`` mode), a missing
            or invalid header, or an unsupported schema version.  A
            bad *header* always raises — without it nothing else in
            the file is interpretable.
    """
    if on_error not in ("raise", "quarantine"):
        raise TraceError(
            f"on_error must be 'raise' or 'quarantine', got {on_error!r}"
        )
    header: dict | None = None
    events: list[dict] = []
    report: dict | None = None
    end: dict | None = None
    quarantined: list[QuarantinedLine] = []

    def bad(number: int, raw: str, reason: str) -> None:
        if on_error == "raise":
            raise TraceError(f"trace line {number}: {reason}")
        quarantined.append(
            QuarantinedLine(line_number=number, raw=raw, reason=reason)
        )

    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            if header is None:
                raise TraceError(
                    f"trace line {number}: header is not valid JSON "
                    f"({exc.msg})"
                ) from exc
            bad(number, raw, f"not valid JSON ({exc.msg})")
            continue
        if not isinstance(obj, dict) or "t" not in obj:
            if header is None:
                raise TraceError(
                    f"trace line {number}: expected a header object "
                    f"with a 't' key"
                )
            bad(number, raw, "not an object with a 't' key")
            continue
        kind = obj["t"]
        if header is None:
            if kind != "header":
                raise TraceError(
                    f"trace line {number}: first line must be the "
                    f"header, got {kind!r}"
                )
            schema = obj.get("schema")
            if schema != SCHEMA_VERSION:
                raise TraceError(
                    f"unsupported trace schema {schema!r} "
                    f"(this reader supports {SCHEMA_VERSION})"
                )
            if not isinstance(obj.get("config"), dict):
                raise TraceError(
                    f"trace line {number}: header has no config object"
                )
            if not isinstance(
                obj.get("horizon_hours"), (int, float)
            ):
                raise TraceError(
                    f"trace line {number}: header has no numeric "
                    f"horizon_hours"
                )
            header = obj
            continue
        if kind == "header":
            bad(number, raw, "duplicate header")
        elif kind == "report":
            report = {k: v for k, v in obj.items() if k != "t"}
        elif kind == "end":
            end = {k: v for k, v in obj.items() if k != "t"}
        elif kind in EVENT_KINDS:
            missing = _EVENT_KEYS[kind] - obj.keys()
            if missing:
                bad(
                    number,
                    raw,
                    f"{kind} event missing keys "
                    f"{sorted(missing)}",
                )
            else:
                events.append(obj)
        else:
            bad(number, raw, f"unknown event type {kind!r}")

    if header is None:
        raise TraceError("trace has no header line")
    trace = Trace(
        config=config_from_dict(header["config"]),
        horizon_hours=float(header["horizon_hours"]),
        events=events,
        report=report,
        end=end,
    )
    return trace, quarantined


def read_trace(
    path: str | os.PathLike, *, on_error: str = "raise"
) -> tuple[Trace, list[QuarantinedLine]]:
    """Read and parse a trace file (see :func:`parse_trace`).

    Raises:
        TraceError: If the file cannot be read or (in ``"raise"``
            mode) contains a malformed line.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    return parse_trace(text, on_error=on_error)


def write_trace(trace: Trace, path: str | os.PathLike) -> None:
    """Write a trace to disk as canonical JSONL.

    Raises:
        TraceError: If the file cannot be written.
    """
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(trace.dumps())
    except OSError as exc:
        raise TraceError(f"cannot write trace {path}: {exc}") from exc
