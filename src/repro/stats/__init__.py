"""Statistics toolkit used by the failure analyses.

This package provides the statistical primitives the paper's analyses
rest on: empirical CDFs (Figures 6 and 9), five-number summaries for
boxplots (Figures 7, 10 and 11), bootstrap confidence intervals,
parametric distribution fitting, Kaplan-Meier survival estimation, and
the correlation / goodness-of-fit tests used to check the seasonality
claims (RQ5).
"""

from repro.stats.bootstrap import bootstrap_ci, bootstrap_mean_ci
from repro.stats.changepoint import Changepoint, detect_changepoints
from repro.stats.correlation import pearson, spearman
from repro.stats.dispersion import (
    count_autocorrelation,
    gap_coefficient_of_variation,
    index_of_dispersion,
    window_counts,
)
from repro.stats.ecdf import ECDF
from repro.stats.fitting import (
    FitResult,
    fit_best,
    fit_distribution,
    SUPPORTED_DISTRIBUTIONS,
)
from repro.stats.summary import FiveNumberSummary, describe, five_number_summary
from repro.stats.survival import KaplanMeier
from repro.stats.tests import chi_square_gof, ks_two_sample

__all__ = [
    "Changepoint",
    "ECDF",
    "FiveNumberSummary",
    "FitResult",
    "KaplanMeier",
    "SUPPORTED_DISTRIBUTIONS",
    "bootstrap_ci",
    "bootstrap_mean_ci",
    "chi_square_gof",
    "count_autocorrelation",
    "describe",
    "detect_changepoints",
    "gap_coefficient_of_variation",
    "index_of_dispersion",
    "window_counts",
    "fit_best",
    "fit_distribution",
    "five_number_summary",
    "ks_two_sample",
    "pearson",
    "spearman",
]
