"""Parametric distribution fitting for reliability data.

Failure inter-arrival times and recovery times in field studies are
conventionally modelled with exponential, Weibull, lognormal, or gamma
distributions.  This module fits those families by maximum likelihood
(via scipy) and ranks fits by the Kolmogorov-Smirnov statistic and AIC,
which lets the benchmarks report *which* family best describes each
machine's TBF/TTR data — the shape difference between Tsubame-2
("steeper curve") and Tsubame-3 ("longer tail") in Figure 6 shows up
directly in the fitted Weibull shape parameter.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import ValidationError

__all__ = [
    "FitResult",
    "SUPPORTED_DISTRIBUTIONS",
    "fit_distribution",
    "fit_best",
]

#: Distribution families supported by :func:`fit_distribution`.
SUPPORTED_DISTRIBUTIONS: tuple[str, ...] = (
    "exponential",
    "weibull",
    "lognormal",
    "gamma",
)

_SCIPY_DISTS = {
    "exponential": sps.expon,
    "weibull": sps.weibull_min,
    "lognormal": sps.lognorm,
    "gamma": sps.gamma,
}


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one distribution family to a sample.

    Attributes:
        name: Family name from :data:`SUPPORTED_DISTRIBUTIONS`.
        params: scipy parameter tuple (shape(s), loc, scale).
        log_likelihood: Log-likelihood of the sample under the fit.
        aic: Akaike information criterion (lower is better).
        ks_statistic: One-sample KS distance between the sample ECDF
            and the fitted CDF.
        ks_pvalue: The corresponding p-value.
        n: Sample size.
    """

    name: str
    params: tuple[float, ...]
    log_likelihood: float
    aic: float
    ks_statistic: float
    ks_pvalue: float
    n: int

    @property
    def num_parameters(self) -> int:
        """Number of free parameters (loc is held at 0)."""
        return len(self.params) - 1

    def mean(self) -> float:
        """Mean of the fitted distribution."""
        return float(_SCIPY_DISTS[self.name].mean(*self.params))

    def quantile(self, q: float) -> float:
        """Quantile of the fitted distribution."""
        if not 0.0 < q < 1.0:
            raise ValidationError(f"quantile q must be in (0, 1), got {q}")
        return float(_SCIPY_DISTS[self.name].ppf(q, *self.params))

    def shape_parameter(self) -> float | None:
        """Return the primary shape parameter, if the family has one.

        For Weibull this is the shape k (k < 1 means a heavier-than-
        exponential tail); for lognormal the log-space sigma; for gamma
        the shape a.  The exponential family has no shape parameter.
        """
        if self.name == "exponential":
            return None
        return float(self.params[0])


def _validate_positive_sample(sample: Sequence[float]) -> np.ndarray:
    values = np.asarray(sample, dtype=float)
    if values.size < 2:
        raise ValidationError(
            f"distribution fitting needs at least 2 observations, "
            f"got {values.size}"
        )
    if not np.all(np.isfinite(values)) or np.any(values <= 0):
        raise ValidationError(
            "distribution fitting requires strictly positive, finite data"
        )
    return values


def fit_distribution(sample: Sequence[float], name: str) -> FitResult:
    """Fit one distribution family to a positive sample by MLE.

    The location parameter is pinned to zero: reliability durations are
    supported on (0, inf) and a floating loc makes Weibull/gamma MLE
    degenerate on small samples.

    Raises:
        ValidationError: If the family is unknown or the data invalid.
    """
    if name not in _SCIPY_DISTS:
        raise ValidationError(
            f"unknown distribution {name!r}; expected one of "
            f"{SUPPORTED_DISTRIBUTIONS}"
        )
    values = _validate_positive_sample(sample)
    dist = _SCIPY_DISTS[name]
    params = dist.fit(values, floc=0.0)
    log_likelihood = float(np.sum(dist.logpdf(values, *params)))
    num_free = len(params) - 1
    aic = 2.0 * num_free - 2.0 * log_likelihood
    ks = sps.kstest(values, dist.cdf, args=params)
    return FitResult(
        name=name,
        params=tuple(float(p) for p in params),
        log_likelihood=log_likelihood,
        aic=float(aic),
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
        n=int(values.size),
    )


def fit_best(
    sample: Sequence[float],
    names: Sequence[str] = SUPPORTED_DISTRIBUTIONS,
    criterion: str = "aic",
) -> FitResult:
    """Fit several families and return the best by AIC or KS distance.

    Args:
        sample: Strictly positive sample.
        names: Families to try.
        criterion: ``"aic"`` or ``"ks"``.

    Raises:
        ValidationError: On an unknown criterion, unknown family, or
            invalid data.
    """
    if criterion not in ("aic", "ks"):
        raise ValidationError(
            f"criterion must be 'aic' or 'ks', got {criterion!r}"
        )
    if not names:
        raise ValidationError("fit_best needs at least one family name")
    fits = [fit_distribution(sample, name) for name in names]
    if criterion == "aic":
        return min(fits, key=lambda fit: fit.aic)
    return min(fits, key=lambda fit: fit.ks_statistic)
