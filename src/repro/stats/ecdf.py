"""Empirical cumulative distribution functions.

The paper presents its headline temporal results as CDFs: Figure 6
(time between failures) and Figure 9 (time to recovery).  :class:`ECDF`
is the right-continuous step estimator F(x) = #{x_i <= x} / n, with
inverse (quantile) lookup and resampling onto a fixed grid so two
systems' curves can be printed side by side.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["ECDF"]


class ECDF:
    """Right-continuous empirical CDF of a one-dimensional sample."""

    def __init__(self, sample: Sequence[float]) -> None:
        values = np.asarray(sample, dtype=float)
        if values.size == 0:
            raise ValidationError("ECDF requires a non-empty sample")
        if not np.all(np.isfinite(values)):
            raise ValidationError("ECDF sample must be finite")
        self._sorted = np.sort(values)
        self._n = values.size

    @property
    def n(self) -> int:
        """Sample size."""
        return self._n

    @property
    def support(self) -> tuple[float, float]:
        """Minimum and maximum of the sample."""
        return float(self._sorted[0]), float(self._sorted[-1])

    def __call__(self, x: float) -> float:
        """Evaluate F(x) = P[X <= x]."""
        return float(np.searchsorted(self._sorted, x, side="right") / self._n)

    def evaluate(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorised evaluation of F at each point of ``xs``."""
        grid = np.asarray(xs, dtype=float)
        counts = np.searchsorted(self._sorted, grid, side="right")
        return counts / self._n

    def quantile(self, q: float) -> float:
        """Return the q-th quantile (inverse CDF), 0 < q <= 1.

        Uses the left-continuous generalized inverse
        ``inf{x : F(x) >= q}``, i.e. the order statistic
        ``x_(ceil(q*n))``.
        """
        if not 0.0 < q <= 1.0:
            raise ValidationError(f"quantile q must be in (0, 1], got {q}")
        index = int(np.ceil(q * self._n)) - 1
        return float(self._sorted[index])

    def median(self) -> float:
        """Return the 0.5 quantile."""
        return self.quantile(0.5)

    def mean(self) -> float:
        """Return the sample mean."""
        return float(self._sorted.mean())

    def steps(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (x, F(x)) at each sample point, for plotting/printing."""
        return self._sorted.copy(), np.arange(1, self._n + 1) / self._n

    def on_grid(self, num_points: int = 50) -> tuple[np.ndarray, np.ndarray]:
        """Resample the CDF on an even grid spanning the support.

        Returns a pair of arrays (grid, F(grid)) with ``num_points``
        entries, convenient for printing two systems' curves on a
        shared axis.
        """
        if num_points < 2:
            raise ValidationError(
                f"on_grid needs at least 2 points, got {num_points}"
            )
        lo, hi = self.support
        grid = np.linspace(lo, hi, num_points)
        return grid, self.evaluate(grid)
