"""Descriptive summaries used for the paper's boxplot figures.

Figures 7, 10 and 11 are boxplots: per-category time between failures,
per-category time to recovery, and monthly time to recovery.  A
:class:`FiveNumberSummary` captures exactly what a boxplot draws —
minimum, first quartile, median, third quartile, maximum — plus the
mean (the paper sorts its boxplots by mean) and the interquartile
"spread" the paper repeatedly discusses.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["FiveNumberSummary", "five_number_summary", "describe"]


@dataclass(frozen=True)
class FiveNumberSummary:
    """Boxplot statistics of a one-dimensional sample."""

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        """Interquartile range — the paper's "spread" (p75 - p25)."""
        return self.q3 - self.q1

    @property
    def relative_spread(self) -> float:
        """IQR normalised by the median (0 when the median is 0)."""
        if self.median == 0.0:
            return 0.0
        return self.iqr / self.median

    def as_row(self) -> dict[str, float]:
        """Return the summary as a flat dict, for report rendering."""
        return {
            "n": self.n,
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "mean": self.mean,
            "iqr": self.iqr,
        }


def five_number_summary(sample: Sequence[float]) -> FiveNumberSummary:
    """Compute boxplot statistics of ``sample``.

    Quartiles use linear interpolation (numpy's default), matching what
    standard plotting libraries draw.

    Raises:
        ValidationError: If the sample is empty or non-finite.
    """
    values = np.asarray(sample, dtype=float)
    if values.size == 0:
        raise ValidationError("five_number_summary requires a non-empty sample")
    if not np.all(np.isfinite(values)):
        raise ValidationError("five_number_summary sample must be finite")
    q1, median, q3 = np.percentile(values, [25.0, 50.0, 75.0])
    return FiveNumberSummary(
        n=int(values.size),
        minimum=float(values.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(values.max()),
        mean=float(values.mean()),
    )


def describe(sample: Sequence[float]) -> dict[str, float]:
    """Return an extended description of ``sample``.

    Adds standard deviation, coefficient of variation, and the 90th /
    95th / 99th percentiles to the five-number summary — the tail
    percentiles matter for the paper's long-recovery observations
    (SSD ~290 h on Tsubame-2, power board ~230 h on Tsubame-3).
    """
    summary = five_number_summary(sample)
    values = np.asarray(sample, dtype=float)
    std = float(values.std(ddof=1)) if values.size > 1 else 0.0
    p90, p95, p99 = np.percentile(values, [90.0, 95.0, 99.0])
    row = summary.as_row()
    row.update(
        {
            "std": std,
            "cv": std / summary.mean if summary.mean else 0.0,
            "p90": float(p90),
            "p95": float(p95),
            "p99": float(p99),
        }
    )
    return row
