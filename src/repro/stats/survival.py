"""Kaplan-Meier survival estimation.

Time-to-recovery data is naturally read as a survival problem: what is
the probability a component is *still unavailable* t hours after
failing?  The Kaplan-Meier estimator also supports right-censoring,
which arises when a log's observation window closes while a repair is
still in progress.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["KaplanMeier"]


class KaplanMeier:
    """Product-limit estimator of the survival function S(t).

    Args:
        durations: Observed durations (event time or censoring time).
        observed: Per-duration flags; True when the event (repair
            completion) was observed, False when censored.  Defaults to
            fully observed data.
    """

    def __init__(
        self,
        durations: Sequence[float],
        observed: Sequence[bool] | None = None,
    ) -> None:
        times = np.asarray(durations, dtype=float)
        if times.size == 0:
            raise ValidationError("KaplanMeier requires a non-empty sample")
        if not np.all(np.isfinite(times)) or np.any(times < 0):
            raise ValidationError(
                "KaplanMeier durations must be finite and non-negative"
            )
        if observed is None:
            events = np.ones(times.size, dtype=bool)
        else:
            events = np.asarray(observed, dtype=bool)
            if events.size != times.size:
                raise ValidationError(
                    f"durations ({times.size}) and observed "
                    f"({events.size}) must have equal length"
                )
        order = np.argsort(times, kind="stable")
        times = times[order]
        events = events[order]

        event_times: list[float] = []
        survival: list[float] = []
        at_risk = times.size
        current = 1.0
        index = 0
        while index < times.size:
            t = times[index]
            deaths = 0
            removed = 0
            while index < times.size and times[index] == t:
                deaths += int(events[index])
                removed += 1
                index += 1
            if deaths:
                current *= 1.0 - deaths / at_risk
                event_times.append(float(t))
                survival.append(current)
            at_risk -= removed
        self._event_times = np.asarray(event_times)
        self._survival = np.asarray(survival)
        self._n = times.size
        self._num_events = int(events.sum())

    @property
    def n(self) -> int:
        """Number of observations (events plus censored)."""
        return self._n

    @property
    def num_events(self) -> int:
        """Number of observed (uncensored) events."""
        return self._num_events

    def survival_at(self, t: float) -> float:
        """Return S(t), the probability of remaining unrepaired at t."""
        if t < 0:
            raise ValidationError(f"time must be non-negative, got {t}")
        index = np.searchsorted(self._event_times, t, side="right")
        if index == 0:
            return 1.0
        return float(self._survival[index - 1])

    def median_survival(self) -> float | None:
        """Return the first time S(t) drops to <= 0.5, or None."""
        below = np.nonzero(self._survival <= 0.5)[0]
        if below.size == 0:
            return None
        return float(self._event_times[below[0]])

    def steps(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (event_times, S(event_times)) for plotting/printing."""
        return self._event_times.copy(), self._survival.copy()
