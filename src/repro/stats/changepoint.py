"""Changepoint detection for failure-rate series.

Operators want to know *when* a machine's failure behaviour shifted —
after a driver rollout, a cooling change, a procurement batch.  This
module detects shifts in a Poisson count series (e.g. monthly failure
counts, Figure 12) by likelihood-ratio binary segmentation: find the
split maximising the two-segment Poisson likelihood over the
one-segment likelihood, accept it when the log-likelihood gain clears
a threshold, and recurse.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import AnalysisError

__all__ = ["Changepoint", "detect_changepoints", "poisson_segment_loglik"]


@dataclass(frozen=True)
class Changepoint:
    """A detected rate shift.

    Attributes:
        index: First index of the new regime (split before this cell).
        left_rate: Mean count per cell before the split.
        right_rate: Mean count per cell after the split.
        gain: Log-likelihood improvement of splitting here.
    """

    index: int
    left_rate: float
    right_rate: float
    gain: float

    @property
    def rate_ratio(self) -> float:
        """Post/pre rate ratio (inf when the pre-rate is zero)."""
        if self.left_rate == 0.0:
            return float("inf") if self.right_rate > 0 else 1.0
        return self.right_rate / self.left_rate


def poisson_segment_loglik(counts: Sequence[int]) -> float:
    """Maximised Poisson log-likelihood of one segment (up to the
    count-factorial constant, which cancels in ratios)."""
    n = len(counts)
    if n == 0:
        return 0.0
    total = float(sum(counts))
    if total == 0.0:
        return 0.0
    rate = total / n
    return total * math.log(rate) - n * rate


def detect_changepoints(
    counts: Sequence[int],
    min_gain: float = 4.0,
    min_segment: int = 2,
) -> list[Changepoint]:
    """Binary-segmentation changepoint detection on a count series.

    Args:
        counts: Non-negative integer counts per equal-width cell.
        min_gain: Log-likelihood gain a split must clear (4.0 is
            roughly a chi-square(1) test at far below 1%; raise it for
            fewer, stronger changepoints).
        min_segment: Minimum cells on each side of a split.

    Returns:
        Accepted changepoints sorted by index.

    Raises:
        AnalysisError: On invalid inputs.
    """
    if min_gain <= 0:
        raise AnalysisError(f"min_gain must be positive, got {min_gain}")
    if min_segment < 1:
        raise AnalysisError(
            f"min_segment must be >= 1, got {min_segment}"
        )
    values = list(counts)
    if len(values) < 2 * min_segment:
        raise AnalysisError(
            f"series of {len(values)} cells is too short for segments "
            f"of {min_segment}"
        )
    if any(value < 0 for value in values):
        raise AnalysisError("counts must be non-negative")

    found: list[Changepoint] = []

    def recurse(start: int, end: int) -> None:
        segment = values[start:end]
        base = poisson_segment_loglik(segment)
        best: Changepoint | None = None
        for split in range(min_segment, len(segment) - min_segment + 1):
            left = segment[:split]
            right = segment[split:]
            gain = (
                poisson_segment_loglik(left)
                + poisson_segment_loglik(right)
                - base
            )
            if gain >= min_gain and (best is None or gain > best.gain):
                best = Changepoint(
                    index=start + split,
                    left_rate=sum(left) / len(left),
                    right_rate=sum(right) / len(right),
                    gain=gain,
                )
        if best is None:
            return
        found.append(best)
        recurse(start, best.index)
        recurse(best.index, end)

    recurse(0, len(values))
    return sorted(found, key=lambda cp: cp.index)
