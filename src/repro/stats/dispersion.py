"""Dispersion and burstiness measures for event streams.

Failure arrivals in the field are rarely Poisson: they cluster
(correlated reboots, environment episodes, Figure 8).  Two standard
measures quantify that:

* **Index of dispersion** — variance/mean of counts in equal windows;
  1 for Poisson, > 1 for clustered (overdispersed) streams.
* **Coefficient of variation of gaps** — std/mean of inter-arrival
  times; 1 for exponential gaps, > 1 for heavy-tailed/bursty ones.
* **Lag-k autocorrelation of window counts** — positive values mean
  busy windows follow busy windows.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "index_of_dispersion",
    "gap_coefficient_of_variation",
    "count_autocorrelation",
    "window_counts",
]


def window_counts(
    event_times: Sequence[float],
    span: float,
    num_windows: int,
) -> list[int]:
    """Bucket event times into equal windows covering [0, span].

    Raises:
        ValidationError: On invalid parameters or out-of-range times.
    """
    if span <= 0:
        raise ValidationError(f"span must be positive, got {span}")
    if num_windows < 1:
        raise ValidationError(
            f"num_windows must be >= 1, got {num_windows}"
        )
    counts = [0] * num_windows
    for time in event_times:
        if not 0.0 <= time <= span:
            raise ValidationError(
                f"event time {time} outside [0, {span}]"
            )
        index = min(int(num_windows * time / span), num_windows - 1)
        counts[index] += 1
    return counts


def index_of_dispersion(counts: Sequence[int]) -> float:
    """Variance-to-mean ratio of a count series.

    Raises:
        ValidationError: On fewer than 2 windows or an all-zero series.
    """
    values = np.asarray(counts, dtype=float)
    if values.size < 2:
        raise ValidationError(
            f"index of dispersion needs >= 2 windows, got {values.size}"
        )
    mean = values.mean()
    if mean == 0.0:
        raise ValidationError(
            "index of dispersion of an all-zero series is undefined"
        )
    return float(values.var(ddof=1) / mean)


def gap_coefficient_of_variation(gaps: Sequence[float]) -> float:
    """std/mean of inter-arrival gaps (1 for exponential).

    Raises:
        ValidationError: On fewer than 2 gaps, negatives, or a
            zero-mean series.
    """
    values = np.asarray(gaps, dtype=float)
    if values.size < 2:
        raise ValidationError(f"CV needs >= 2 gaps, got {values.size}")
    if np.any(values < 0):
        raise ValidationError("gaps must be non-negative")
    mean = values.mean()
    if mean == 0.0:
        raise ValidationError("CV of zero-mean gaps is undefined")
    return float(values.std(ddof=1) / mean)


def count_autocorrelation(counts: Sequence[int], lag: int = 1) -> float:
    """Lag-k Pearson autocorrelation of a count series.

    Returns 0 for a constant series (no variation to correlate).

    Raises:
        ValidationError: On an invalid lag or too-short series.
    """
    values = np.asarray(counts, dtype=float)
    if lag < 1:
        raise ValidationError(f"lag must be >= 1, got {lag}")
    if values.size < lag + 2:
        raise ValidationError(
            f"series of {values.size} is too short for lag {lag}"
        )
    head = values[:-lag]
    tail = values[lag:]
    if np.all(head == head[0]) or np.all(tail == tail[0]):
        return 0.0
    return float(np.corrcoef(head, tail)[0, 1])
