"""Non-parametric bootstrap confidence intervals.

The analyses report point estimates (MTBF, MTTR, category shares); the
bootstrap quantifies how much those estimates would wobble under
resampling, which matters when comparing two machines whose logs differ
in size by almost 3x (897 vs 338 failures).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["BootstrapResult", "bootstrap_ci", "bootstrap_mean_ci"]


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate with a percentile-bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    num_resamples: int

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.high - self.low


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    num_resamples: int = 1000,
    seed: int | None = None,
) -> BootstrapResult:
    """Percentile-bootstrap interval for an arbitrary statistic.

    Args:
        sample: The observed sample.
        statistic: Function mapping a resampled array to a scalar.
        confidence: Coverage level in (0, 1).
        num_resamples: Number of bootstrap resamples.
        seed: Seed for the resampling RNG (None draws fresh entropy).

    Raises:
        ValidationError: On an empty sample or bad parameters.
    """
    values = np.asarray(sample, dtype=float)
    if values.size == 0:
        raise ValidationError("bootstrap_ci requires a non-empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if num_resamples < 1:
        raise ValidationError(
            f"num_resamples must be positive, got {num_resamples}"
        )
    rng = np.random.default_rng(seed)
    estimates = np.empty(num_resamples)
    for i in range(num_resamples):
        resample = rng.choice(values, size=values.size, replace=True)
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(estimates, [100 * alpha, 100 * (1 - alpha)])
    return BootstrapResult(
        estimate=float(statistic(values)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        num_resamples=num_resamples,
    )


def bootstrap_mean_ci(
    sample: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 1000,
    seed: int | None = None,
) -> BootstrapResult:
    """Percentile-bootstrap interval for the sample mean."""
    return bootstrap_ci(
        sample,
        statistic=lambda arr: float(arr.mean()),
        confidence=confidence,
        num_resamples=num_resamples,
        seed=seed,
    )
