"""Correlation measures.

RQ5 asks whether monthly time-to-recovery tracks monthly failure
density ("months with higher failure density are likely to see higher
time to recovery") and concludes that no such correlation exists.  The
seasonal analysis quantifies that claim with Pearson and Spearman
coefficients between the two monthly series.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import ValidationError

__all__ = ["CorrelationResult", "pearson", "spearman"]


@dataclass(frozen=True)
class CorrelationResult:
    """A correlation coefficient with its p-value and sample size."""

    coefficient: float
    pvalue: float
    n: int

    @property
    def is_significant(self) -> bool:
        """True at the conventional 5% level."""
        return self.pvalue < 0.05


def _validate_pair(
    xs: Sequence[float], ys: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size:
        raise ValidationError(
            f"correlation needs equal-length series, got {x.size} and {y.size}"
        )
    if x.size < 3:
        raise ValidationError(
            f"correlation needs at least 3 paired observations, got {x.size}"
        )
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise ValidationError("correlation series must be finite")
    return x, y


def pearson(xs: Sequence[float], ys: Sequence[float]) -> CorrelationResult:
    """Pearson (linear) correlation between two paired series.

    When either series is constant, the coefficient is defined as 0
    with p-value 1 (no evidence of association).
    """
    x, y = _validate_pair(xs, ys)
    if np.all(x == x[0]) or np.all(y == y[0]):
        return CorrelationResult(coefficient=0.0, pvalue=1.0, n=x.size)
    result = sps.pearsonr(x, y)
    return CorrelationResult(
        coefficient=float(result.statistic),
        pvalue=float(result.pvalue),
        n=x.size,
    )


def spearman(xs: Sequence[float], ys: Sequence[float]) -> CorrelationResult:
    """Spearman (rank) correlation between two paired series."""
    x, y = _validate_pair(xs, ys)
    if np.all(x == x[0]) or np.all(y == y[0]):
        return CorrelationResult(coefficient=0.0, pvalue=1.0, n=x.size)
    result = sps.spearmanr(x, y)
    return CorrelationResult(
        coefficient=float(result.statistic),
        pvalue=float(result.pvalue),
        n=x.size,
    )
