"""Hypothesis tests used by the analyses and their validation suite.

Two tests cover everything the reproduction needs:

* the two-sample Kolmogorov-Smirnov test, for asking whether two
  machines' TBF/TTR distributions differ (Figures 6 and 9 claim the
  TBF distributions differ markedly while the TTR distributions are
  "very similar"), and
* the chi-square goodness-of-fit test, for asking whether an observed
  categorical histogram (failure-category mix, GPU-slot counts,
  monthly counts) is consistent with a target distribution.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import ValidationError

__all__ = ["TestResult", "ks_two_sample", "chi_square_gof"]


@dataclass(frozen=True)
class TestResult:
    """Outcome of a hypothesis test."""

    statistic: float
    pvalue: float
    n: int

    def rejects_null(self, alpha: float = 0.05) -> bool:
        """True when the null hypothesis is rejected at level alpha."""
        if not 0.0 < alpha < 1.0:
            raise ValidationError(f"alpha must be in (0, 1), got {alpha}")
        return self.pvalue < alpha


def ks_two_sample(
    first: Sequence[float], second: Sequence[float]
) -> TestResult:
    """Two-sample KS test of H0: both samples share one distribution."""
    x = np.asarray(first, dtype=float)
    y = np.asarray(second, dtype=float)
    if x.size == 0 or y.size == 0:
        raise ValidationError("ks_two_sample requires non-empty samples")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise ValidationError("ks_two_sample samples must be finite")
    result = sps.ks_2samp(x, y)
    return TestResult(
        statistic=float(result.statistic),
        pvalue=float(result.pvalue),
        n=x.size + y.size,
    )


def chi_square_gof(
    observed_counts: Sequence[int],
    expected_shares: Sequence[float],
) -> TestResult:
    """Chi-square test of observed counts against expected shares.

    Args:
        observed_counts: Non-negative integer counts per cell.
        expected_shares: Expected probability per cell; normalised if
            they do not already sum to one.

    Raises:
        ValidationError: On length mismatch, negative inputs, or an
            all-zero expected vector.
    """
    observed = np.asarray(observed_counts, dtype=float)
    shares = np.asarray(expected_shares, dtype=float)
    if observed.size != shares.size:
        raise ValidationError(
            f"observed ({observed.size}) and expected ({shares.size}) "
            f"must have equal length"
        )
    if observed.size < 2:
        raise ValidationError("chi_square_gof needs at least 2 cells")
    if np.any(observed < 0) or np.any(shares < 0):
        raise ValidationError("chi_square_gof inputs must be non-negative")
    total_share = shares.sum()
    if total_share <= 0:
        raise ValidationError("expected shares must not all be zero")
    expected = observed.sum() * shares / total_share
    # Cells the model says are impossible cannot enter the statistic.
    keep = expected > 0
    if np.any(observed[~keep] > 0):
        return TestResult(statistic=float("inf"), pvalue=0.0,
                          n=int(observed.sum()))
    result = sps.chisquare(observed[keep], expected[keep])
    return TestResult(
        statistic=float(result.statistic),
        pvalue=float(result.pvalue),
        n=int(observed.sum()),
    )
