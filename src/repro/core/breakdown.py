"""RQ1 — failure-category breakdown (Figures 2 and 3).

Answers "what is the distribution of most frequently occurring failure
types?" by computing per-category counts and shares (Figure 2), the
hardware/software split, and — for Tsubame-3 — the breakdown of the
``Software`` category into root loci (Figure 3).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core import taxonomy
from repro.core.records import FailureLog
from repro.core.taxonomy import FailureClass
from repro.errors import AnalysisError

__all__ = [
    "CategoryShare",
    "CategoryBreakdown",
    "category_breakdown",
    "RootLocusBreakdown",
    "software_root_loci",
]


@dataclass(frozen=True)
class CategoryShare:
    """One bar of Figure 2: a category's count and share of failures."""

    category: str
    count: int
    share: float
    failure_class: FailureClass


@dataclass(frozen=True)
class CategoryBreakdown:
    """Full per-category breakdown of a log (Figure 2)."""

    machine: str
    total: int
    shares: tuple[CategoryShare, ...]

    def share_of(self, category: str) -> float:
        """Return the share of one category (0.0 if absent)."""
        for entry in self.shares:
            if entry.category == category:
                return entry.share
        return 0.0

    def count_of(self, category: str) -> int:
        """Return the count of one category (0 if absent)."""
        for entry in self.shares:
            if entry.category == category:
                return entry.count
        return 0

    def top(self, k: int = 5) -> tuple[CategoryShare, ...]:
        """Return the k most frequent categories."""
        return self.shares[:k]

    def class_share(self, failure_class: FailureClass) -> float:
        """Aggregate share of one hardware/software/unknown class."""
        return sum(
            entry.share
            for entry in self.shares
            if entry.failure_class is failure_class
        )

    @property
    def dominant_category(self) -> str:
        """Most frequent category (the paper's headline per machine)."""
        return self.shares[0].category


def category_breakdown(log: FailureLog) -> CategoryBreakdown:
    """Compute the Figure 2 breakdown of ``log``.

    Shares are sorted by descending count, ties broken by name so the
    output is deterministic.

    Raises:
        AnalysisError: If the log is empty.
    """
    if len(log) == 0:
        raise AnalysisError("category breakdown of an empty log is undefined")
    counts = Counter(record.category for record in log)
    total = len(log)
    shares = tuple(
        CategoryShare(
            category=name,
            count=count,
            share=count / total,
            failure_class=taxonomy.failure_class(log.machine, name),
        )
        for name, count in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )
    )
    return CategoryBreakdown(machine=log.machine, total=total, shares=shares)


@dataclass(frozen=True)
class RootLocusBreakdown:
    """Figure 3: shares of root loci within Tsubame-3 software failures."""

    total_software: int
    shares: tuple[CategoryShare, ...]

    def share_of(self, locus: str) -> float:
        """Return the share of one root locus (0.0 if absent)."""
        for entry in self.shares:
            if entry.category == locus:
                return entry.share
        return 0.0

    def top(self, k: int = 16) -> tuple[CategoryShare, ...]:
        """Return the top-k loci — Figure 3 shows the top 16."""
        return self.shares[:k]


def software_root_loci(
    log: FailureLog, software_category: str = "Software"
) -> RootLocusBreakdown:
    """Compute the Figure 3 root-locus breakdown of software failures.

    Records in the software category without a recorded locus are
    grouped under ``"unknown"`` — the paper highlights that ~20% of
    software failures have no known cause.

    Raises:
        AnalysisError: If the log has no software failures.
    """
    software = log.by_category(software_category)
    if len(software) == 0:
        raise AnalysisError(
            f"log has no {software_category!r} failures to break down"
        )
    counts = Counter(
        record.root_locus if record.root_locus else "unknown"
        for record in software
    )
    total = len(software)
    shares = tuple(
        CategoryShare(
            category=locus,
            count=count,
            share=count / total,
            failure_class=FailureClass.SOFTWARE,
        )
        for locus, count in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )
    )
    return RootLocusBreakdown(total_software=total, shares=shares)
