"""Failure-category taxonomy for the Tsubame supercomputers.

The DSN 2021 paper (Table II) reports distinct failure categories for
Tsubame-2 and Tsubame-3.  Each category is classified as hardware,
software, or unknown; the paper's RQ2 analysis ("352 hardware failures
and 1 software failure ...") depends on this classification, and the
RQ1 analysis of Tsubame-3 additionally breaks the ``Software`` category
into *root loci* (Figure 3).

This module is the single source of truth for category names, their
hardware/software classing, and the software root-locus taxonomy.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass

from repro.errors import TaxonomyError

__all__ = [
    "FailureClass",
    "Category",
    "TSUBAME2_CATEGORIES",
    "TSUBAME3_CATEGORIES",
    "A100_CATEGORIES",
    "H100_CATEGORIES",
    "SOFTWARE_ROOT_LOCI",
    "categories_for",
    "category",
    "failure_class",
    "is_gpu_category",
    "root_loci_names",
]


class FailureClass(enum.Enum):
    """Coarse classification of a failure category."""

    HARDWARE = "hardware"
    SOFTWARE = "software"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Category:
    """A failure category as reported in a Tsubame failure log.

    Attributes:
        name: Canonical category name (as spelled in Table II).
        failure_class: Hardware/software/unknown classification.
        description: One-line description of what the category covers.
        gpu_related: True when the category describes failures incident
            on GPU cards (used by the RQ2/RQ3 spatial analyses).
    """

    name: str
    failure_class: FailureClass
    description: str
    gpu_related: bool = False


def _hw(name: str, description: str, gpu_related: bool = False) -> Category:
    return Category(name, FailureClass.HARDWARE, description, gpu_related)


def _sw(name: str, description: str, gpu_related: bool = False) -> Category:
    return Category(name, FailureClass.SOFTWARE, description, gpu_related)


#: Tsubame-2 failure categories (Table II, left column).
TSUBAME2_CATEGORIES: tuple[Category, ...] = (
    _sw("Boot", "Node failed to boot or hung during boot."),
    _hw("CPU", "CPU hardware failure."),
    _hw("Disk", "Local spinning-disk failure."),
    _sw("Down", "Node found down with no more specific diagnosis."),
    _hw("FAN", "Cooling-fan failure."),
    _hw("GPU", "GPU card hardware failure.", gpu_related=True),
    _hw("IB", "InfiniBand host adapter or link failure."),
    _hw("Memory", "DRAM DIMM failure (uncorrectable errors)."),
    _hw("Network", "Ethernet / management-network failure."),
    _hw("OtherHW", "Hardware failure outside the named categories."),
    _sw("OtherSW", "Software failure outside the named categories."),
    _sw("PBS", "Portable Batch System (scheduler) failure."),
    _hw("PSU", "Power supply unit failure."),
    _hw("Rack", "Rack-level failure (power or cooling distribution)."),
    _hw("SSD", "Local SSD failure."),
    _hw("System Board", "Motherboard / system-board failure."),
    _sw("VM", "Virtual machine layer failure."),
)

#: Tsubame-3 failure categories (Table II, right column).
TSUBAME3_CATEGORIES: tuple[Category, ...] = (
    _hw("CPU", "CPU hardware failure."),
    _hw("CRC", "Cyclic redundancy check errors on a link."),
    _hw("Disk", "Local disk failure."),
    _hw("GPU", "GPU card hardware failure.", gpu_related=True),
    _sw("GPUDriver", "GPU driver fault reported as its own category.",
        gpu_related=True),
    _hw("IP", "IP motherboard failure."),
    _hw("Led Front Panel", "Front-panel LED / chassis indicator failure."),
    _sw("Lustre", "Lustre parallel file system failure."),
    _hw("Memory", "DRAM DIMM failure (uncorrectable errors)."),
    _hw("Omni-Path", "Intel Omni-Path fabric adapter or link failure."),
    _hw("Power-Board", "Power distribution board failure."),
    _hw("Ribbon Cable", "Internal ribbon-cable failure."),
    _sw("Software", "Software failure (see root loci, Figure 3)."),
    _hw("SXM2_Cable", "SXM2 interposer cable failure.", gpu_related=True),
    _hw("SXM2-Board", "SXM2 carrier board failure.", gpu_related=True),
    Category("Unknown", FailureClass.UNKNOWN,
             "Failure whose category could not be determined."),
)

#: A100 HGX fleet failure categories.  The GPU-incident taxonomy
#: (distinct ECC, HBM, and NVLink categories) follows the A100
#: characterization in arXiv:2503.11901 and Meta's fleet study
#: (arXiv:2410.21680); host-side categories mirror the Tsubame tables.
A100_CATEGORIES: tuple[Category, ...] = (
    _hw("CPU", "CPU hardware failure."),
    _sw("Filesystem", "Parallel/distributed filesystem failure."),
    _hw("GPU", "GPU card hardware failure (fell off the bus, Xid).",
        gpu_related=True),
    _hw("GPU-ECC", "Uncorrectable GPU ECC error (double-bit DRAM/SRAM).",
        gpu_related=True),
    _hw("GPU-HBM", "GPU HBM stack failure (row remap exhaustion).",
        gpu_related=True),
    _sw("GPUDriver", "GPU driver or CUDA runtime fault.",
        gpu_related=True),
    _hw("IB", "InfiniBand host adapter or link failure."),
    _hw("Memory", "Host DRAM DIMM failure (uncorrectable errors)."),
    _hw("Network", "Ethernet / management-network failure."),
    _hw("NVLink", "NVLink lane or NVSwitch failure on the HGX board.",
        gpu_related=True),
    _sw("OtherSW", "Software failure outside the named categories."),
    _hw("PSU", "Power supply unit failure."),
    _sw("Scheduler", "Cluster scheduler / orchestration failure."),
    _hw("SSD", "Local NVMe SSD failure."),
    _hw("System Board", "Motherboard / HGX baseboard failure."),
    _hw("Thermal", "Overheating, cooling loop or fan failure."),
    Category("Unknown", FailureClass.UNKNOWN,
             "Failure whose category could not be determined."),
)

#: H100 HGX fleet failure categories: the A100 taxonomy plus the GSP
#: (GPU System Processor) firmware faults that arXiv:2503.11901 reports
#: as a new, prominent H100 failure mode.
H100_CATEGORIES: tuple[Category, ...] = (
    _hw("CPU", "CPU hardware failure."),
    _sw("Filesystem", "Parallel/distributed filesystem failure."),
    _hw("GPU", "GPU card hardware failure (fell off the bus, Xid).",
        gpu_related=True),
    _hw("GPU-ECC", "Uncorrectable GPU ECC error (double-bit DRAM/SRAM).",
        gpu_related=True),
    _hw("GPU-HBM", "GPU HBM3 stack failure (row remap exhaustion).",
        gpu_related=True),
    _sw("GPUDriver", "GPU driver or CUDA runtime fault.",
        gpu_related=True),
    _sw("GSP", "GPU System Processor firmware fault (RM offload).",
        gpu_related=True),
    _hw("IB", "InfiniBand host adapter or link failure."),
    _hw("Memory", "Host DRAM DIMM failure (uncorrectable errors)."),
    _hw("Network", "Ethernet / management-network failure."),
    _hw("NVLink", "NVLink lane or NVSwitch failure on the HGX board.",
        gpu_related=True),
    _sw("OtherSW", "Software failure outside the named categories."),
    _hw("PSU", "Power supply unit failure."),
    _sw("Scheduler", "Cluster scheduler / orchestration failure."),
    _hw("SSD", "Local NVMe SSD failure."),
    _hw("System Board", "Motherboard / HGX baseboard failure."),
    _hw("Thermal", "Overheating, cooling loop or fan failure."),
    Category("Unknown", FailureClass.UNKNOWN,
             "Failure whose category could not be determined."),
)

#: Root loci of Tsubame-3 ``Software`` failures (Figure 3, top 16).
#:
#: The paper names only a handful of loci explicitly: GPU-driver-related
#: problems (~43% of software failures), failures with no known cause
#: (~20%), and low counts of kernel panics and Lustre bugs.  The
#: remaining loci here are plausible stand-ins for the unnamed bars of
#: Figure 3; see DESIGN.md for the substitution rationale.
SOFTWARE_ROOT_LOCI: tuple[str, ...] = (
    "gpu_driver",
    "unknown",
    "cuda_version_mismatch",
    "omnipath_driver",
    "gpu_direct",
    "mpi_library",
    "batch_script",
    "filesystem_client",
    "nfs_mount",
    "container_runtime",
    "python_stack",
    "memory_leak",
    "firmware_mismatch",
    "license_server",
    "lustre_bug",
    "kernel_panic",
)

_BY_MACHINE: dict[str, tuple[Category, ...]] = {
    "tsubame2": TSUBAME2_CATEGORIES,
    "tsubame3": TSUBAME3_CATEGORIES,
    "a100": A100_CATEGORIES,
    "h100": H100_CATEGORIES,
}

_INDEX: dict[str, dict[str, Category]] = {
    machine: {cat.name: cat for cat in cats}
    for machine, cats in _BY_MACHINE.items()
}


def categories_for(machine: str) -> tuple[Category, ...]:
    """Return the category tuple for ``machine``.

    Args:
        machine: A registered machine name (``"tsubame2"``,
            ``"tsubame3"``, ``"a100"``, ``"h100"``).

    Raises:
        TaxonomyError: If the machine name is unknown.
    """
    try:
        return _BY_MACHINE[machine]
    except KeyError:
        raise TaxonomyError(
            f"unknown machine {machine!r}; expected one of "
            f"{sorted(_BY_MACHINE)}"
        ) from None


@functools.lru_cache(maxsize=None)
def category(machine: str, name: str) -> Category:
    """Look up a single category by machine and name.

    Memoized: the taxonomy tables are module constants, so a
    (machine, name) pair always resolves to the same Category and the
    per-record lookups in hot filters hit the cache.

    Raises:
        TaxonomyError: If the machine or category name is unknown
            (errors are not cached).
    """
    index = _INDEX.get(machine)
    if index is None:
        raise TaxonomyError(
            f"unknown machine {machine!r}; expected one of "
            f"{sorted(_BY_MACHINE)}"
        )
    try:
        return index[name]
    except KeyError:
        raise TaxonomyError(
            f"unknown category {name!r} for machine {machine!r}"
        ) from None


@functools.lru_cache(maxsize=None)
def failure_class(machine: str, name: str) -> FailureClass:
    """Return the hardware/software/unknown class of a category."""
    return category(machine, name).failure_class


@functools.lru_cache(maxsize=None)
def is_gpu_category(machine: str, name: str) -> bool:
    """Return True when the category describes GPU-incident failures."""
    return category(machine, name).gpu_related


def root_loci_names() -> tuple[str, ...]:
    """Return the canonical Tsubame-3 software root-locus names."""
    return SOFTWARE_ROOT_LOCI
