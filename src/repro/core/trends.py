"""Reliability trends over a log's lifetime.

Field studies ask not only *what* the MTBF/MTTR are but whether they
drift: does the machine burn in (fewer failures over time), wear out,
or hold steady?  Three tools:

* **Windowed series** — MTBF/MTTR computed over consecutive windows,
  the time-resolved view behind "the MTBF improved across
  generations".
* **Crow-AMSAA (NHPP power-law) growth model** — the standard
  reliability-growth estimator.  beta < 1 means the failure intensity
  is falling (reliability growth, burn-in); beta > 1 means wear-out.
* **Recovery survival** — Kaplan-Meier over TTR with right-censoring
  for repairs still open when the observation window closes, the
  statistically honest version of Figure 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.records import FailureLog
from repro.errors import AnalysisError
from repro.stats.survival import KaplanMeier

__all__ = [
    "WindowPoint",
    "windowed_mtbf",
    "windowed_mttr",
    "CrowAmsaaFit",
    "crow_amsaa_fit",
    "ttr_survival",
]


@dataclass(frozen=True)
class WindowPoint:
    """One point of a windowed reliability series."""

    window_start_hours: float
    window_end_hours: float
    num_failures: int
    value_hours: float

    @property
    def center_hours(self) -> float:
        return 0.5 * (self.window_start_hours + self.window_end_hours)


def _windows(log: FailureLog, window_hours: float):
    if window_hours <= 0:
        raise AnalysisError(
            f"window_hours must be positive, got {window_hours}"
        )
    if len(log) == 0:
        raise AnalysisError("windowed series of an empty log is undefined")
    span = log.span_hours
    if window_hours > span:
        raise AnalysisError(
            f"window of {window_hours} h exceeds the {span:.0f} h span"
        )
    edges = []
    start = 0.0
    while start < span:
        edges.append((start, min(start + window_hours, span)))
        start += window_hours
    stamps = log.timestamps_hours()
    grouped: list[list[float]] = [[] for _ in edges]
    ttrs: list[list[float]] = [[] for _ in edges]
    for record, stamp in zip(log, stamps):
        index = min(int(stamp // window_hours), len(edges) - 1)
        grouped[index].append(stamp)
        ttrs[index].append(record.ttr_hours)
    return edges, grouped, ttrs


def windowed_mtbf(
    log: FailureLog, window_hours: float
) -> list[WindowPoint]:
    """MTBF per window (window length / failure count).

    Windows with no failures report the window length itself as a
    lower bound on the local MTBF.
    """
    edges, grouped, _ = _windows(log, window_hours)
    points = []
    for (start, end), stamps in zip(edges, grouped):
        length = end - start
        value = length / len(stamps) if stamps else length
        points.append(
            WindowPoint(
                window_start_hours=start,
                window_end_hours=end,
                num_failures=len(stamps),
                value_hours=value,
            )
        )
    return points


def windowed_mttr(
    log: FailureLog, window_hours: float
) -> list[WindowPoint]:
    """Mean TTR per window (nan for windows with no failures)."""
    edges, _, ttrs = _windows(log, window_hours)
    points = []
    for (start, end), values in zip(edges, ttrs):
        mean = sum(values) / len(values) if values else float("nan")
        points.append(
            WindowPoint(
                window_start_hours=start,
                window_end_hours=end,
                num_failures=len(values),
                value_hours=mean,
            )
        )
    return points


@dataclass(frozen=True)
class CrowAmsaaFit:
    """Crow-AMSAA power-law NHPP fit N(t) = lambda * t^beta.

    Attributes:
        beta: Shape — <1 reliability growth, ~1 stationary (HPP),
            >1 deterioration.
        lam: Scale (lambda-hat).
        n: Number of failures used.
        total_time_hours: Observation length T.
    """

    beta: float
    lam: float
    n: int
    total_time_hours: float

    @property
    def is_improving(self) -> bool:
        """True when the failure intensity is falling over time."""
        return self.beta < 1.0

    def intensity_at(self, t_hours: float) -> float:
        """Instantaneous failure intensity lambda*beta*t^(beta-1)."""
        if t_hours <= 0:
            raise AnalysisError(f"t must be positive, got {t_hours}")
        return self.lam * self.beta * t_hours ** (self.beta - 1.0)

    def expected_failures(self, t_hours: float) -> float:
        """Expected cumulative failures by time t."""
        if t_hours < 0:
            raise AnalysisError(f"t must be >= 0, got {t_hours}")
        return self.lam * t_hours**self.beta


def crow_amsaa_fit(log: FailureLog) -> CrowAmsaaFit:
    """MLE of the Crow-AMSAA model (time-truncated test).

    beta-hat = n / sum(ln(T / t_i)), lambda-hat = n / T^beta.

    Raises:
        AnalysisError: With fewer than 3 failures or degenerate
            timestamps.
    """
    if len(log) < 3:
        raise AnalysisError(
            f"Crow-AMSAA needs at least 3 failures, got {len(log)}"
        )
    total = log.span_hours
    stamps = [max(t, 1e-9) for t in log.timestamps_hours()]
    denominator = sum(math.log(total / t) for t in stamps)
    if denominator <= 0:
        raise AnalysisError(
            "all failures sit at the window end; cannot fit Crow-AMSAA"
        )
    beta = len(stamps) / denominator
    lam = len(stamps) / total**beta
    return CrowAmsaaFit(
        beta=beta, lam=lam, n=len(stamps), total_time_hours=total
    )


def ttr_survival(log: FailureLog) -> KaplanMeier:
    """Kaplan-Meier estimate of P[still unrepaired after t hours].

    A repair that would complete after the observation window closes
    is right-censored at the window end — the estimator uses the
    partial information instead of pretending the full logged duration
    was observed.

    Raises:
        AnalysisError: On an empty log.
    """
    if len(log) == 0:
        raise AnalysisError("TTR survival of an empty log is undefined")
    span = log.span_hours
    durations = []
    observed = []
    for record in log:
        start = log.hours_since_start(record)
        remaining = span - start
        if record.ttr_hours <= remaining:
            durations.append(record.ttr_hours)
            observed.append(True)
        else:
            durations.append(remaining)
            observed.append(False)
    return KaplanMeier(durations, observed)
