"""RQ5 (seasonality) — monthly recovery time and failure density
(Figures 11 and 12).

Does the time to recovery become worse in certain months, and does it
track the monthly failure count?  The paper groups both quantities by
calendar month (January..December, pooled across years) and concludes
that no clear seasonal effect or density correlation exists.
"""

from __future__ import annotations

import calendar
from dataclasses import dataclass

import numpy as np

from repro.core.records import FailureLog
from repro.errors import AnalysisError
from repro.stats.correlation import CorrelationResult, pearson, spearman
from repro.stats.summary import FiveNumberSummary, five_number_summary

__all__ = [
    "MonthlyTtr",
    "monthly_ttr",
    "MonthlyFailureCounts",
    "monthly_failure_counts",
    "SeasonalCorrelation",
    "ttr_density_correlation",
    "WeekdayProfile",
    "weekday_profile",
    "HourOfDayProfile",
    "hour_of_day_profile",
]

MONTHS = tuple(range(1, 13))


@dataclass(frozen=True)
class MonthlyTtr:
    """Figure 11: TTR distribution per calendar month.

    Attributes:
        machine: Machine name.
        summaries: month (1..12) -> TTR five-number summary; months
            with no failures are absent.
    """

    machine: str
    summaries: dict[int, FiveNumberSummary]

    def mean_for(self, month: int) -> float:
        """Mean TTR of one month (nan when the month has no failures)."""
        summary = self.summaries.get(month)
        return summary.mean if summary else float("nan")

    def means(self) -> list[float]:
        """Mean TTR for each month 1..12 (nan for empty months)."""
        return [self.mean_for(month) for month in MONTHS]

    def half_year_means(self) -> tuple[float, float]:
        """Mean of monthly mean TTR over Jan-Jun and Jul-Dec.

        The paper notes Tsubame-2's recovery times look higher in the
        second half of the year while Tsubame-3's do not.
        """
        first = [
            self.summaries[m].mean for m in range(1, 7)
            if m in self.summaries
        ]
        second = [
            self.summaries[m].mean for m in range(7, 13)
            if m in self.summaries
        ]
        first_mean = sum(first) / len(first) if first else float("nan")
        second_mean = sum(second) / len(second) if second else float("nan")
        return first_mean, second_mean


def _reference_monthly_ttr(log: FailureLog) -> MonthlyTtr:
    """Pure-Python Figure 11, retained for the parity suite."""
    if len(log) == 0:
        raise AnalysisError("monthly TTR of an empty log is undefined")
    by_month: dict[int, list[float]] = {}
    for record in log:
        by_month.setdefault(record.timestamp.month, []).append(
            record.ttr_hours
        )
    summaries = {
        month: five_number_summary(values)
        for month, values in by_month.items()
    }
    return MonthlyTtr(machine=log.machine, summaries=summaries)


def monthly_ttr(log: FailureLog) -> MonthlyTtr:
    """Compute the Figure 11 monthly TTR distributions.

    Raises:
        AnalysisError: If the log is empty.
    """
    if len(log) == 0:
        raise AnalysisError("monthly TTR of an empty log is undefined")
    cols = log.columns
    summaries = {}
    for month in np.unique(cols.months).tolist():
        summaries[month] = five_number_summary(
            cols.ttr_hours[cols.months == month]
        )
    return MonthlyTtr(machine=log.machine, summaries=summaries)


@dataclass(frozen=True)
class MonthlyFailureCounts:
    """Figure 12: failure counts per calendar month."""

    machine: str
    counts: dict[int, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def count_for(self, month: int) -> int:
        """Failure count of one month (0 when absent)."""
        return self.counts.get(month, 0)

    def series(self) -> list[int]:
        """Counts for each month 1..12."""
        return [self.count_for(month) for month in MONTHS]

    def rows(self) -> list[tuple[str, int]]:
        """(month name, count) rows in calendar order."""
        return [
            (calendar.month_abbr[month], self.count_for(month))
            for month in MONTHS
        ]

    def peak_month(self) -> int:
        """Month with the most failures (lowest month wins ties)."""
        return max(MONTHS, key=lambda m: (self.count_for(m), -m))


def _reference_monthly_failure_counts(log: FailureLog) -> MonthlyFailureCounts:
    """Pure-Python Figure 12, retained for the parity suite."""
    if len(log) == 0:
        raise AnalysisError(
            "monthly failure counts of an empty log are undefined"
        )
    counts: dict[int, int] = {}
    for record in log:
        month = record.timestamp.month
        counts[month] = counts.get(month, 0) + 1
    return MonthlyFailureCounts(machine=log.machine, counts=counts)


def monthly_failure_counts(log: FailureLog) -> MonthlyFailureCounts:
    """Compute the Figure 12 monthly failure counts.

    Raises:
        AnalysisError: If the log is empty.
    """
    if len(log) == 0:
        raise AnalysisError(
            "monthly failure counts of an empty log are undefined"
        )
    months, tallies = np.unique(log.columns.months, return_counts=True)
    return MonthlyFailureCounts(
        machine=log.machine,
        counts=dict(zip(months.tolist(), tallies.tolist())),
    )


@dataclass(frozen=True)
class SeasonalCorrelation:
    """Correlation between monthly failure density and monthly TTR.

    The paper's claim is that this correlation "does not exist": months
    with many failures are not the months with long recoveries, because
    the cost of fixing each failure type is different.
    """

    machine: str
    pearson: CorrelationResult
    spearman: CorrelationResult
    months_used: int

    @property
    def supports_no_correlation(self) -> bool:
        """True when neither test finds a significant positive
        correlation — the paper's conclusion."""
        for result in (self.pearson, self.spearman):
            if result.is_significant and result.coefficient > 0:
                return False
        return True


def ttr_density_correlation(log: FailureLog) -> SeasonalCorrelation:
    """Correlate monthly failure counts with monthly mean TTR.

    Only months with at least one failure enter the correlation.

    Raises:
        AnalysisError: If fewer than three months have failures.
    """
    ttr = monthly_ttr(log)
    counts = monthly_failure_counts(log)
    months = sorted(ttr.summaries)
    if len(months) < 3:
        raise AnalysisError(
            f"seasonal correlation needs failures in at least 3 months, "
            f"got {len(months)}"
        )
    density = [float(counts.count_for(month)) for month in months]
    mean_ttr = [ttr.summaries[month].mean for month in months]
    return SeasonalCorrelation(
        machine=log.machine,
        pearson=pearson(density, mean_ttr),
        spearman=spearman(density, mean_ttr),
        months_used=len(months),
    )


@dataclass(frozen=True)
class WeekdayProfile:
    """Failure counts by day of week (0 = Monday .. 6 = Sunday).

    The paper stops at monthly granularity; weekday/hour views are the
    natural next question for real operator logs ("do failures surface
    when the day shift starts testing?").  On the synthetic logs these
    are flat by construction, which the validation suite asserts.
    """

    machine: str
    counts: tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def share_of(self, weekday: int) -> float:
        """Share of failures on one weekday.

        Raises:
            AnalysisError: On an out-of-range weekday.
        """
        if not 0 <= weekday <= 6:
            raise AnalysisError(
                f"weekday must be in [0, 6], got {weekday}"
            )
        if self.total == 0:
            return 0.0
        return self.counts[weekday] / self.total

    def weekend_share(self) -> float:
        """Share of failures surfacing on Saturday/Sunday."""
        if self.total == 0:
            return 0.0
        return (self.counts[5] + self.counts[6]) / self.total

    def max_min_ratio(self) -> float:
        """Busiest/quietest weekday ratio (inf when a day is empty)."""
        low = min(self.counts)
        if low == 0:
            return float("inf") if max(self.counts) > 0 else 1.0
        return max(self.counts) / low


def _reference_weekday_profile(log: FailureLog) -> WeekdayProfile:
    """Pure-Python weekday counts, retained for the parity suite."""
    if len(log) == 0:
        raise AnalysisError("weekday profile of an empty log is undefined")
    counts = [0] * 7
    for record in log:
        counts[record.timestamp.weekday()] += 1
    return WeekdayProfile(machine=log.machine, counts=tuple(counts))


def weekday_profile(log: FailureLog) -> WeekdayProfile:
    """Count failures per day of week.

    Raises:
        AnalysisError: On an empty log.
    """
    if len(log) == 0:
        raise AnalysisError("weekday profile of an empty log is undefined")
    counts = np.bincount(log.columns.weekdays, minlength=7)
    return WeekdayProfile(machine=log.machine, counts=tuple(counts.tolist()))


@dataclass(frozen=True)
class HourOfDayProfile:
    """Failure counts by hour of day (0..23)."""

    machine: str
    counts: tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def share_of(self, hour: int) -> float:
        """Share of failures surfacing in one hour of the day.

        Raises:
            AnalysisError: On an out-of-range hour.
        """
        if not 0 <= hour <= 23:
            raise AnalysisError(f"hour must be in [0, 23], got {hour}")
        if self.total == 0:
            return 0.0
        return self.counts[hour] / self.total

    def business_hours_share(
        self, start: int = 9, end: int = 18
    ) -> float:
        """Share of failures surfacing during [start, end) hours.

        Raises:
            AnalysisError: On an invalid hour range.
        """
        if not 0 <= start < end <= 24:
            raise AnalysisError(
                f"need 0 <= start < end <= 24, got {start}..{end}"
            )
        if self.total == 0:
            return 0.0
        return sum(self.counts[start:end]) / self.total


def _reference_hour_of_day_profile(log: FailureLog) -> HourOfDayProfile:
    """Pure-Python hour-of-day counts, retained for the parity suite."""
    if len(log) == 0:
        raise AnalysisError(
            "hour-of-day profile of an empty log is undefined"
        )
    counts = [0] * 24
    for record in log:
        counts[record.timestamp.hour] += 1
    return HourOfDayProfile(machine=log.machine, counts=tuple(counts))


def hour_of_day_profile(log: FailureLog) -> HourOfDayProfile:
    """Count failures per hour of day.

    Raises:
        AnalysisError: On an empty log.
    """
    if len(log) == 0:
        raise AnalysisError(
            "hour-of-day profile of an empty log is undefined"
        )
    counts = np.bincount(log.columns.hours_of_day, minlength=24)
    return HourOfDayProfile(
        machine=log.machine, counts=tuple(counts.tolist())
    )
