"""User-facing failure-exposure reports.

The paper's generalizability section argues HPC centres should "inform
and help end-users" reason about failures.  This module assembles the
existing primitives into the report a centre would hand a user: for a
grid of job shapes, the probability of interruption, the expected
number of interruptions, and the Young/Daly checkpoint interval that
makes the job resilient.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.metrics import job_interruption_probability, mtbf
from repro.core.records import FailureLog
from repro.errors import AnalysisError
from repro.machines.specs import get_machine

__all__ = ["ExposureRow", "ExposureReport", "exposure_report"]


@dataclass(frozen=True)
class ExposureRow:
    """Failure exposure of one job shape."""

    job_nodes: int
    job_hours: float
    interruption_probability: float
    expected_interruptions: float
    checkpoint_interval_hours: float

    @property
    def needs_checkpointing(self) -> bool:
        """True when the interruption probability exceeds 10% — the
        conventional threshold for requiring fault tolerance."""
        return self.interruption_probability > 0.10


@dataclass(frozen=True)
class ExposureReport:
    """Exposure rows for a machine over a job-shape grid."""

    machine: str
    system_mtbf_hours: float
    rows: tuple[ExposureRow, ...]

    def row_for(self, job_nodes: int, job_hours: float) -> ExposureRow:
        """Look up one job shape.

        Raises:
            AnalysisError: When the shape is not in the grid.
        """
        for row in self.rows:
            if row.job_nodes == job_nodes and row.job_hours == job_hours:
                return row
        raise AnalysisError(
            f"no exposure row for {job_nodes} nodes x {job_hours} h"
        )

    def fraction_needing_checkpointing(self) -> float:
        """Share of the grid where checkpointing is warranted."""
        if not self.rows:
            return 0.0
        needing = sum(1 for row in self.rows if row.needs_checkpointing)
        return needing / len(self.rows)


def exposure_report(
    log: FailureLog,
    job_nodes_grid: tuple[int, ...] = (1, 16, 64, 256),
    job_hours_grid: tuple[float, ...] = (6.0, 24.0, 96.0),
    checkpoint_cost_hours: float = 0.25,
) -> ExposureReport:
    """Build the user-exposure report from a machine's log.

    Per-node MTBF comes from the log's system MTBF spread over the
    fleet; the expected interruptions for a job follow the same Poisson
    thinning as :func:`job_interruption_probability`; the checkpoint
    interval is Young/Daly against the *job's* MTBF (system MTBF x
    fleet / job nodes).

    Raises:
        AnalysisError: On invalid grids or checkpoint cost.
    """
    if not job_nodes_grid or not job_hours_grid:
        raise AnalysisError("exposure grids must be non-empty")
    if checkpoint_cost_hours <= 0:
        raise AnalysisError(
            f"checkpoint_cost_hours must be positive, got "
            f"{checkpoint_cost_hours}"
        )
    spec = get_machine(log.machine)
    system_mtbf = mtbf(log)
    rows = []
    for nodes in sorted(set(job_nodes_grid)):
        for hours in sorted(set(job_hours_grid)):
            probability = job_interruption_probability(
                system_mtbf, spec.num_nodes, nodes, hours
            )
            expected = (
                (hours / system_mtbf) * (nodes / spec.num_nodes)
            )
            job_mtbf = system_mtbf * spec.num_nodes / nodes
            # Young/Daly first-order optimum sqrt(2 * C * MTBF) —
            # inlined rather than imported from repro.sim.checkpoint
            # so the core package carries no dependency on the
            # simulator (tested equal in tests/core/test_exposure.py).
            interval = math.sqrt(2.0 * checkpoint_cost_hours * job_mtbf)
            rows.append(
                ExposureRow(
                    job_nodes=nodes,
                    job_hours=hours,
                    interruption_probability=probability,
                    expected_interruptions=expected,
                    checkpoint_interval_hours=interval,
                )
            )
    return ExposureReport(
        machine=log.machine,
        system_mtbf_hours=system_mtbf,
        rows=tuple(rows),
    )
