"""Cross-generation comparison — the paper's central narrative as an
API.

:func:`compare_generations` condenses RQ1-RQ5 into one object: what
got better (MTBF, GPU reliability, multi-GPU containment), what did
not (MTTR), and what shifted (dominant failure class).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import breakdown, metrics, multigpu, temporal
from repro.core.records import FailureLog
from repro.errors import AnalysisError
from repro.machines.specs import get_machine

__all__ = ["GenerationComparison", "compare_generations"]


@dataclass(frozen=True)
class GenerationComparison:
    """Headline deltas between an older and a newer machine."""

    older: str
    newer: str
    mtbf_ratio: float
    mttr_ratio: float
    gpu_mtbf_ratio: float
    cpu_mtbf_ratio: float
    multi_gpu_share_older: float
    multi_gpu_share_newer: float
    dominant_older: str
    dominant_newer: str
    performance_error_proportionality_ratio: float
    component_count_ratio: float

    @property
    def mtbf_improved(self) -> bool:
        """True when the newer machine fails less often."""
        return self.mtbf_ratio > 1.0

    @property
    def mttr_stagnated(self) -> bool:
        """True when recovery time moved by less than 20% either way —
        the paper's 'time to recovery is not improving' finding."""
        return abs(self.mttr_ratio - 1.0) < 0.2

    @property
    def mtbf_gain_exceeds_size_reduction(self) -> bool:
        """The paper's normalisation argument: the MTBF gain is not a
        side effect of the smaller component inventory."""
        return self.mtbf_ratio > self.component_count_ratio

    @property
    def multi_gpu_contained(self) -> bool:
        """True when simultaneous multi-GPU failures became rarer."""
        return self.multi_gpu_share_newer < self.multi_gpu_share_older

    def summary_lines(self) -> list[str]:
        """Human-readable digest of the comparison."""
        return [
            f"{self.newer} vs {self.older}:",
            f"  MTBF {self.mtbf_ratio:.1f}x "
            f"(component inventory only "
            f"{self.component_count_ratio:.1f}x smaller)",
            f"  GPU MTBF {self.gpu_mtbf_ratio:.1f}x, "
            f"CPU MTBF {self.cpu_mtbf_ratio:.1f}x",
            f"  MTTR {self.mttr_ratio:.2f}x "
            f"({'stagnant' if self.mttr_stagnated else 'changed'})",
            f"  multi-GPU failure share "
            f"{100 * self.multi_gpu_share_older:.0f}% -> "
            f"{100 * self.multi_gpu_share_newer:.0f}%",
            f"  dominant failure type {self.dominant_older} -> "
            f"{self.dominant_newer}",
            f"  useful FLOP per failure-free period "
            f"{self.performance_error_proportionality_ratio:.1f}x",
        ]


def compare_generations(
    older_log: FailureLog, newer_log: FailureLog
) -> GenerationComparison:
    """Compare two machines' logs, newer over older.

    Raises:
        AnalysisError: If both logs belong to the same machine or a
            required analysis is undefined for either log.
    """
    if older_log.machine == newer_log.machine:
        raise AnalysisError(
            "comparison needs logs from two different machines"
        )
    older_spec = get_machine(older_log.machine)
    newer_spec = get_machine(newer_log.machine)

    older_classes = temporal.component_class_mtbf(older_log)
    newer_classes = temporal.component_class_mtbf(newer_log)
    older_involvement = multigpu.multi_gpu_involvement(
        older_log, older_spec.gpus_per_node
    )
    newer_involvement = multigpu.multi_gpu_involvement(
        newer_log, newer_spec.gpus_per_node
    )
    older_pep = metrics.performance_error_proportionality(
        older_log, older_spec
    )
    newer_pep = metrics.performance_error_proportionality(
        newer_log, newer_spec
    )

    return GenerationComparison(
        older=older_log.machine,
        newer=newer_log.machine,
        mtbf_ratio=metrics.mtbf(newer_log) / metrics.mtbf(older_log),
        mttr_ratio=metrics.mttr(newer_log) / metrics.mttr(older_log),
        gpu_mtbf_ratio=newer_classes.gpu_improvement_over(older_classes),
        cpu_mtbf_ratio=newer_classes.cpu_improvement_over(older_classes),
        multi_gpu_share_older=older_involvement.multi_gpu_share,
        multi_gpu_share_newer=newer_involvement.multi_gpu_share,
        dominant_older=breakdown.category_breakdown(
            older_log
        ).dominant_category,
        dominant_newer=breakdown.category_breakdown(
            newer_log
        ).dominant_category,
        performance_error_proportionality_ratio=newer_pep.ratio_to(
            older_pep
        ),
        component_count_ratio=(
            older_spec.total_compute_components
            / newer_spec.total_compute_components
        ),
    )
