"""Columnar NumPy backend for :class:`~repro.core.records.FailureLog`.

The record-oriented data model is the right API for building and
validating logs, but the analysis kernels (TBF, per-node counts,
monthly binning, involvement tables) are array computations.  A
:class:`ColumnarView` holds the log's fields as NumPy arrays so those
kernels can run vectorized, and — crucially — so that a *filtered*
sub-log can reuse its parent's arrays by boolean-mask slicing instead
of recomputing them from the records.

Layout
------

Per-record arrays, all of length ``len(log)`` and aligned with the
log's (already sorted) record order:

* ``ts_hours`` — offsets from the window start, in hours (float64).
* ``node_ids`` — node indices (int64).
* ``ttr_hours`` — recovery times (float64).
* ``category_codes`` — integer code per record into ``category_names``
  (int32).  The code table is shared by every view sliced from the
  same root, so codes stay comparable across filters.
* ``class_codes`` — hardware/software/unknown per record (int8, see
  ``CLASS_CODES``).
* ``gpu_counts`` — number of recorded GPU slots involved (int16).
* ``gpu_category`` — True when the record's category is GPU-related in
  the machine taxonomy (bool).
* ``months`` / ``weekdays`` / ``hours_of_day`` — calendar fields of
  the timestamp (int8).

GPU slot involvement is ragged, so it is stored CSR-style:
``slot_values`` concatenates every record's slots and
``slot_offsets[i]:slot_offsets[i + 1]`` delimits record ``i``'s span.

Invariant
---------

A view is always built from an already-validated log, and
:meth:`ColumnarView.mask` only ever narrows it, so consumers may treat
the arrays as trusted — no re-validation on slice.  This is the same
invariant :meth:`FailureLog._from_trusted` relies on; see
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core import taxonomy
from repro.core.taxonomy import FailureClass
from repro.errors import TaxonomyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.records import FailureLog

__all__ = ["ColumnarView", "build_columns", "CLASS_CODES", "CLASS_BY_CODE"]

#: FailureClass -> int8 code used in ``ColumnarView.class_codes``.
CLASS_CODES: dict[FailureClass, int] = {
    FailureClass.HARDWARE: 0,
    FailureClass.SOFTWARE: 1,
    FailureClass.UNKNOWN: 2,
}

#: Inverse of :data:`CLASS_CODES`, index position == code.
CLASS_BY_CODE: tuple[FailureClass, ...] = (
    FailureClass.HARDWARE,
    FailureClass.SOFTWARE,
    FailureClass.UNKNOWN,
)


@dataclass(frozen=True)
class ColumnarView:
    """Immutable columnar mirror of one (possibly filtered) log."""

    machine: str
    category_names: tuple[str, ...]
    #: True when every category resolved in the machine taxonomy.  When
    #: False (lenient logs with ad-hoc categories), class/GPU codes for
    #: the unresolved names default to UNKNOWN/non-GPU and
    #: taxonomy-dependent consumers must fall back to the record path
    #: to preserve its TaxonomyError behaviour.
    taxonomy_complete: bool
    ts_hours: np.ndarray
    node_ids: np.ndarray
    ttr_hours: np.ndarray
    category_codes: np.ndarray
    class_codes: np.ndarray
    gpu_counts: np.ndarray
    gpu_category: np.ndarray
    months: np.ndarray
    weekdays: np.ndarray
    hours_of_day: np.ndarray
    slot_values: np.ndarray
    slot_offsets: np.ndarray

    def __post_init__(self) -> None:
        # Views are shared between logs: freeze the arrays so no kernel
        # can mutate a sibling's data through them.
        for array in (
            self.ts_hours, self.node_ids, self.ttr_hours,
            self.category_codes, self.class_codes, self.gpu_counts,
            self.gpu_category, self.months, self.weekdays,
            self.hours_of_day, self.slot_values, self.slot_offsets,
        ):
            array.setflags(write=False)

    def __len__(self) -> int:
        return int(self.ts_hours.shape[0])

    # -- code-table helpers ------------------------------------------------

    def code_of(self, category: str) -> int:
        """Code of a category name, or -1 when absent from the table.

        -1 never appears in ``category_codes``, so it is a safe
        no-match sentinel for mask building.
        """
        try:
            return self.category_names.index(category)
        except ValueError:
            return -1

    def codes_of(self, names: tuple[str, ...]) -> np.ndarray:
        """Codes of several category names (-1 for unknown names)."""
        return np.asarray(
            [self.code_of(name) for name in names], dtype=np.int32
        )

    def class_code_of(self, failure_class: FailureClass) -> int:
        """Integer code of a :class:`FailureClass`."""
        return CLASS_CODES[failure_class]

    # -- slicing -----------------------------------------------------------

    def mask(self, keep: np.ndarray) -> "ColumnarView":
        """Return the view of the records selected by a boolean mask.

        The category code table is shared, not rebuilt, so codes remain
        comparable between parent and child views.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != self.ts_hours.shape:
            raise ValueError(
                f"mask of shape {keep.shape} does not match "
                f"{self.ts_hours.shape} records"
            )
        lengths = np.diff(self.slot_offsets)[keep]
        offsets = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        starts = self.slot_offsets[:-1][keep]
        total = int(offsets[-1]) if lengths.size else 0
        if total:
            # CSR gather: old start of each kept record, repeated over
            # its span, plus the position within the span.
            within = (
                np.arange(total, dtype=np.int64)
                - np.repeat(offsets[:-1], lengths)
            )
            take = np.repeat(starts, lengths) + within
        else:
            take = np.empty(0, dtype=np.int64)
        return ColumnarView(
            machine=self.machine,
            category_names=self.category_names,
            taxonomy_complete=self.taxonomy_complete,
            ts_hours=self.ts_hours[keep],
            node_ids=self.node_ids[keep],
            ttr_hours=self.ttr_hours[keep],
            category_codes=self.category_codes[keep],
            class_codes=self.class_codes[keep],
            gpu_counts=self.gpu_counts[keep],
            gpu_category=self.gpu_category[keep],
            months=self.months[keep],
            weekdays=self.weekdays[keep],
            hours_of_day=self.hours_of_day[keep],
            slot_values=self.slot_values[take],
            slot_offsets=offsets,
        )

    def slots_of(self, index: int) -> np.ndarray:
        """Slot indices involved in record ``index``."""
        return self.slot_values[
            self.slot_offsets[index]:self.slot_offsets[index + 1]
        ]

    # -- shared-memory transport -------------------------------------------

    def export_shm(self):
        """Export this view's arrays into one shared-memory segment.

        Returns the owning :class:`repro.parallel.shm.ShmColumnBlock`;
        its picklable ``handle`` (O(metadata) bytes regardless of log
        size) is what travels to worker processes, which rebuild the
        view with :meth:`from_shm` as zero-copy views over the shared
        pages.  The caller owns the block and must ``close()`` it when
        the consumers are done attaching.
        """
        from repro.parallel.shm import export_view

        return export_view(self)

    @staticmethod
    def from_shm(handle) -> "ColumnarView":
        """Rebuild a view from an exported block's handle — the arrays
        are read-only views into the shared segment, no bytes copied.

        Raises:
            SweepError: If the handle was not produced by
                :meth:`export_shm`.
        """
        from repro.parallel.shm import view_from_handle

        return view_from_handle(handle)


def _category_table(
    machine: str, names: list[str]
) -> tuple[tuple[str, ...], np.ndarray, np.ndarray, bool]:
    """Build the code table plus per-category class/GPU lookups.

    Categories outside the machine taxonomy (lenient logs) class as
    UNKNOWN and non-GPU; the returned flag reports whether all names
    resolved, so consumers can fall back to the record path when not.
    """
    unique = tuple(sorted(set(names)))
    class_by_code = np.empty(len(unique), dtype=np.int8)
    gpu_by_code = np.empty(len(unique), dtype=bool)
    complete = True
    for code, name in enumerate(unique):
        try:
            cat = taxonomy.category(machine, name)
            class_by_code[code] = CLASS_CODES[cat.failure_class]
            gpu_by_code[code] = cat.gpu_related
        except TaxonomyError:
            class_by_code[code] = CLASS_CODES[FailureClass.UNKNOWN]
            gpu_by_code[code] = False
            complete = False
    return unique, class_by_code, gpu_by_code, complete


def build_columns(log: "FailureLog") -> ColumnarView:
    """Build the columnar view of an already-validated log.

    One O(n) pass over the records; everything downstream (filters,
    kernels) works on the arrays.  Prefer :attr:`FailureLog.columns`,
    which caches the result on the log.
    """
    records = log.records
    n = len(records)
    names = [r.category for r in records]
    unique, class_by_code, gpu_by_code, complete = _category_table(
        log.machine, names
    )
    code_of = {name: code for code, name in enumerate(unique)}

    ts = np.empty(n, dtype=np.float64)
    nodes = np.empty(n, dtype=np.int64)
    ttrs = np.empty(n, dtype=np.float64)
    codes = np.empty(n, dtype=np.int32)
    gpu_counts = np.empty(n, dtype=np.int16)
    months = np.empty(n, dtype=np.int8)
    weekdays = np.empty(n, dtype=np.int8)
    hours = np.empty(n, dtype=np.int8)
    offsets = np.zeros(n + 1, dtype=np.int64)
    flat_slots: list[int] = []
    start = log.window_start
    for i, r in enumerate(records):
        ts[i] = (r.timestamp - start).total_seconds() / 3600.0
        nodes[i] = r.node_id
        ttrs[i] = r.ttr_hours
        codes[i] = code_of[r.category]
        gpu_counts[i] = len(r.gpus_involved)
        months[i] = r.timestamp.month
        weekdays[i] = r.timestamp.weekday()
        hours[i] = r.timestamp.hour
        offsets[i + 1] = offsets[i] + len(r.gpus_involved)
        flat_slots.extend(r.gpus_involved)
    return ColumnarView(
        machine=log.machine,
        category_names=unique,
        taxonomy_complete=complete,
        ts_hours=ts,
        node_ids=nodes,
        ttr_hours=ttrs,
        category_codes=codes,
        class_codes=class_by_code[codes],
        gpu_counts=gpu_counts,
        gpu_category=gpu_by_code[codes],
        months=months,
        weekdays=weekdays,
        hours_of_day=hours,
        slot_values=np.asarray(flat_slots, dtype=np.int32),
        slot_offsets=offsets,
    )
