"""Failure-impact ranking.

RQ5: "we should not look to focus only on highly frequent failures,
but instead assess their impact on the system too. Less frequent
failure types with high recovery costs can affect the system more
negatively."  The impact of a category is its expected downtime
contribution — share x mean TTR — and the interesting output is how
its impact rank diverges from its frequency rank (SSD and power board
being the paper's examples).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.recovery import ttr_by_category
from repro.core.records import FailureLog
from repro.errors import AnalysisError

__all__ = ["ImpactEntry", "ImpactRanking", "impact_ranking"]


@dataclass(frozen=True)
class ImpactEntry:
    """One category's frequency-vs-impact position."""

    category: str
    share_of_failures: float
    mean_ttr_hours: float
    downtime_share: float
    frequency_rank: int
    impact_rank: int

    @property
    def rank_shift(self) -> int:
        """Positions gained when ranking by impact instead of
        frequency; positive = more important than its frequency
        suggests (the paper's SSD / power-board pattern)."""
        return self.frequency_rank - self.impact_rank


@dataclass(frozen=True)
class ImpactRanking:
    """All categories ranked by expected downtime contribution."""

    machine: str
    entries: tuple[ImpactEntry, ...]

    def entry_for(self, category: str) -> ImpactEntry:
        """Look up one category.

        Raises:
            AnalysisError: If the category is absent.
        """
        for entry in self.entries:
            if entry.category == category:
                return entry
        raise AnalysisError(
            f"category {category!r} not present in the ranking"
        )

    def underrated(self, min_shift: int = 2) -> list[ImpactEntry]:
        """Categories whose impact rank beats their frequency rank by
        at least ``min_shift`` positions — the rare-but-expensive
        failures operators under-provision for."""
        if min_shift < 1:
            raise AnalysisError(
                f"min_shift must be >= 1, got {min_shift}"
            )
        return [
            entry for entry in self.entries
            if entry.rank_shift >= min_shift
        ]

    def rank_divergence(self) -> float:
        """Mean absolute rank shift — 0 when frequency fully predicts
        impact."""
        if not self.entries:
            return 0.0
        return sum(
            abs(entry.rank_shift) for entry in self.entries
        ) / len(self.entries)


def impact_ranking(
    log: FailureLog, min_failures: int = 2
) -> ImpactRanking:
    """Rank categories by expected downtime contribution.

    Raises:
        AnalysisError: Via :func:`ttr_by_category` on an empty log.
    """
    by_category = ttr_by_category(log, min_failures=min_failures)
    total_impact = sum(entry.impact_hours for entry in by_category)
    if total_impact <= 0:
        raise AnalysisError("log carries no recovery time to rank")

    by_frequency = sorted(
        by_category,
        key=lambda entry: (-entry.share_of_failures, entry.category),
    )
    frequency_rank = {
        entry.category: rank
        for rank, entry in enumerate(by_frequency, start=1)
    }
    by_impact = sorted(
        by_category,
        key=lambda entry: (-entry.impact_hours, entry.category),
    )
    entries = tuple(
        ImpactEntry(
            category=entry.category,
            share_of_failures=entry.share_of_failures,
            mean_ttr_hours=entry.mean_hours,
            downtime_share=entry.impact_hours / total_impact,
            frequency_rank=frequency_rank[entry.category],
            impact_rank=rank,
        )
        for rank, entry in enumerate(by_impact, start=1)
    )
    return ImpactRanking(machine=log.machine, entries=entries)
