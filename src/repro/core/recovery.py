"""RQ5 — time to recovery (Figures 9 and 10).

Covers the system-level TTR distribution (Figure 9; MTTR ~55 h on both
machines despite very different MTBFs) and the per-category TTR
distributions (Figure 10; hardware categories show higher spread, and
infrequent categories can carry extreme recovery tails — SSD ~290 h on
Tsubame-2, power board ~230 h on Tsubame-3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import metrics, taxonomy
from repro.core.records import FailureLog
from repro.core.taxonomy import FailureClass
from repro.errors import AnalysisError
from repro.stats.ecdf import ECDF
from repro.stats.summary import FiveNumberSummary, five_number_summary

__all__ = [
    "TtrDistribution",
    "ttr_distribution",
    "CategoryTtr",
    "ttr_by_category",
    "class_spread_comparison",
]


@dataclass(frozen=True)
class TtrDistribution:
    """Figure 9 for one machine: the TTR ECDF plus the MTTR."""

    machine: str
    ecdf: ECDF
    mttr_hours: float

    def fraction_within(self, hours: float) -> float:
        """Fraction of failures repaired within ``hours``."""
        return self.ecdf(hours)

    def quantile(self, q: float) -> float:
        """TTR quantile in hours."""
        return self.ecdf.quantile(q)


def ttr_distribution(log: FailureLog) -> TtrDistribution:
    """Compute the Figure 9 TTR distribution of a log.

    Raises:
        AnalysisError: If the log is empty.
    """
    if len(log) == 0:
        raise AnalysisError("TTR distribution of an empty log is undefined")
    series = metrics.ttr_series_hours(log)
    return TtrDistribution(
        machine=log.machine,
        ecdf=ECDF(series),
        mttr_hours=metrics.mttr(log),
    )


@dataclass(frozen=True)
class CategoryTtr:
    """One box of Figure 10: TTR summary for a single category."""

    category: str
    failure_class: FailureClass
    summary: FiveNumberSummary
    share_of_failures: float

    @property
    def mean_hours(self) -> float:
        return self.summary.mean

    @property
    def max_hours(self) -> float:
        """Worst-case recovery, the paper's SSD/power-board anecdotes."""
        return self.summary.maximum

    @property
    def spread_hours(self) -> float:
        """p75 - p25 of the recovery time."""
        return self.summary.iqr

    @property
    def impact_hours(self) -> float:
        """share x mean TTR — the paper's point that *impact*, not just
        frequency, should guide operator attention."""
        return self.share_of_failures * self.summary.mean


def ttr_by_category(
    log: FailureLog, min_failures: int = 2
) -> list[CategoryTtr]:
    """Compute Figure 10: per-category TTR summaries sorted by mean.

    Raises:
        AnalysisError: If the log is empty or no category clears the
            threshold.
    """
    if len(log) == 0:
        raise AnalysisError("TTR by category of an empty log is undefined")
    if min_failures < 1:
        raise AnalysisError(
            f"min_failures must be >= 1, got {min_failures}"
        )
    total = len(log)
    results = []
    for name in log.categories():
        sub = log.by_category(name)
        if len(sub) < min_failures:
            continue
        series = metrics.ttr_series_hours(sub)
        results.append(
            CategoryTtr(
                category=name,
                failure_class=taxonomy.failure_class(log.machine, name),
                summary=five_number_summary(series),
                share_of_failures=len(sub) / total,
            )
        )
    if not results:
        raise AnalysisError(
            f"no category has at least {min_failures} failures"
        )
    results.sort(key=lambda entry: entry.mean_hours)
    return results


def class_spread_comparison(
    log: FailureLog, min_failures: int = 2
) -> dict[FailureClass, float]:
    """Mean TTR spread (IQR) per hardware/software class.

    Quantifies the paper's observation that hardware-related failures
    "tend to have a higher spread in the recovery time compared to
    software failures".  Classes with no qualifying category are
    omitted from the result.
    """
    by_category = ttr_by_category(log, min_failures=min_failures)
    spreads: dict[FailureClass, list[float]] = {}
    for entry in by_category:
        spreads.setdefault(entry.failure_class, []).append(
            entry.spread_hours
        )
    return {
        cls: sum(values) / len(values)
        for cls, values in spreads.items()
    }
