"""Per-category rate trends and shift attribution.

Combines the windowed view with changepoint detection per category:
when the overall failure rate shifts, *which* failure types drove it?
This is the diagnostic an operator reaches for after a Figure 12 spike
— and the paper's observation that GPU-driver problems track driver
rollouts is exactly a category-level rate shift.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.records import FailureLog
from repro.errors import AnalysisError
from repro.stats.changepoint import Changepoint, detect_changepoints

__all__ = [
    "CategoryShift",
    "category_rate_shifts",
    "category_window_counts",
]


def category_window_counts(
    log: FailureLog, num_windows: int
) -> dict[str, list[int]]:
    """Per-category failure counts over equal time windows.

    Raises:
        AnalysisError: On an empty log or invalid window count.
    """
    if len(log) == 0:
        raise AnalysisError(
            "category window counts of an empty log are undefined"
        )
    if num_windows < 2:
        raise AnalysisError(
            f"num_windows must be >= 2, got {num_windows}"
        )
    span = log.span_hours
    counts = {
        name: [0] * num_windows for name in log.categories()
    }
    for record in log:
        offset = log.hours_since_start(record)
        index = min(int(num_windows * offset / span), num_windows - 1)
        counts[record.category][index] += 1
    return counts


@dataclass(frozen=True)
class CategoryShift:
    """A detected per-category rate shift."""

    category: str
    changepoint: Changepoint
    window_hours: float

    @property
    def shift_time_hours(self) -> float:
        """Approximate time of the shift (start of the new regime)."""
        return self.changepoint.index * self.window_hours

    @property
    def is_increase(self) -> bool:
        return self.changepoint.right_rate > self.changepoint.left_rate


def category_rate_shifts(
    log: FailureLog,
    num_windows: int = 12,
    min_gain: float = 6.0,
    min_category_failures: int = 20,
) -> list[CategoryShift]:
    """Detect rate shifts per category, strongest first.

    Categories with fewer than ``min_category_failures`` records are
    skipped — changepoint detection on a handful of events only finds
    noise.

    Raises:
        AnalysisError: On invalid parameters or an empty log.
    """
    if min_category_failures < 1:
        raise AnalysisError(
            f"min_category_failures must be >= 1, got "
            f"{min_category_failures}"
        )
    counts = category_window_counts(log, num_windows)
    window_hours = log.span_hours / num_windows
    shifts: list[CategoryShift] = []
    for name, series in counts.items():
        if sum(series) < min_category_failures:
            continue
        for changepoint in detect_changepoints(
            series, min_gain=min_gain
        ):
            shifts.append(
                CategoryShift(
                    category=name,
                    changepoint=changepoint,
                    window_hours=window_hours,
                )
            )
    shifts.sort(key=lambda shift: -shift.changepoint.gain)
    return shifts
