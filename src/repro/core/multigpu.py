"""RQ3 — simultaneous multi-GPU failures (Table III and Figure 8).

Can multiple GPUs within one node fail simultaneously?  Table III
tabulates, over the GPU failures with recorded involvement, how many
GPUs each failure touched.  Figure 8 shows that multi-GPU failures
cluster in time: one is likely to be followed by another soon after.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.records import FailureLog, FailureRecord
from repro.errors import AnalysisError

__all__ = [
    "MultiGpuInvolvement",
    "multi_gpu_involvement",
    "MultiGpuClustering",
    "multi_gpu_clustering",
]


@dataclass(frozen=True)
class MultiGpuInvolvement:
    """Table III: #GPUs involved per failure, with counts and shares."""

    machine: str
    max_gpus: int
    counts: dict[int, int]

    @property
    def total(self) -> int:
        """GPU failures with recorded involvement (368 on Tsubame-2,
        81 on Tsubame-3 in the paper)."""
        return sum(self.counts.values())

    def share_of(self, num_gpus: int) -> float:
        """Share of failures involving exactly ``num_gpus`` GPUs."""
        if self.total == 0:
            return 0.0
        return self.counts.get(num_gpus, 0) / self.total

    @property
    def multi_gpu_share(self) -> float:
        """Share of failures involving more than one GPU.

        ~70% on Tsubame-2 versus <8% on Tsubame-3 in the paper.
        """
        if self.total == 0:
            return 0.0
        multi = sum(
            count for num, count in self.counts.items() if num > 1
        )
        return multi / self.total

    def rows(self) -> list[tuple[int, int, float]]:
        """Return (num_gpus, count, share) rows for 1..max_gpus."""
        return [
            (num, self.counts.get(num, 0), self.share_of(num))
            for num in range(1, self.max_gpus + 1)
        ]


def _reference_multi_gpu_involvement(
    log: FailureLog, max_gpus: int
) -> MultiGpuInvolvement:
    """Pure-Python Table III, retained for the parity suite."""
    if max_gpus < 1:
        raise AnalysisError(f"max_gpus must be >= 1, got {max_gpus}")
    counts: Counter[int] = Counter()
    for record in log:
        involved = record.num_gpus_involved
        if involved == 0:
            continue
        if involved > max_gpus:
            raise AnalysisError(
                f"record {record.record_id} involves {involved} GPUs but "
                f"the node only has {max_gpus}"
            )
        counts[involved] += 1
    return MultiGpuInvolvement(
        machine=log.machine, max_gpus=max_gpus, counts=dict(counts)
    )


def multi_gpu_involvement(
    log: FailureLog, max_gpus: int
) -> MultiGpuInvolvement:
    """Compute Table III over a log's GPU failures.

    Only records with recorded GPU involvement count; involvement
    beyond the node's GPU count is rejected.

    Raises:
        AnalysisError: On an invalid ``max_gpus`` or out-of-range
            involvement.
    """
    if max_gpus < 1:
        raise AnalysisError(f"max_gpus must be >= 1, got {max_gpus}")
    involved = log.columns.gpu_counts
    involved = involved[involved > 0]
    if involved.size and int(involved.max()) > max_gpus:
        # Rare error path: re-scan per record for the exact message.
        return _reference_multi_gpu_involvement(log, max_gpus)
    nums, tallies = np.unique(involved, return_counts=True)
    return MultiGpuInvolvement(
        machine=log.machine,
        max_gpus=max_gpus,
        counts=dict(zip(nums.tolist(), tallies.tolist())),
    )


@dataclass(frozen=True)
class MultiGpuClustering:
    """Figure 8: temporal clustering of multi-GPU failures.

    Compares the gaps that *follow a multi-GPU failure* against the
    gaps that follow a single-GPU failure.  If multi-GPU failures
    cluster, the gap from a multi-GPU failure to the next multi-GPU
    failure is shorter than an independent-arrivals model predicts.

    Attributes:
        machine: Machine name.
        events: (hours-since-start, num_gpus_involved) for every GPU
            failure with recorded involvement, in time order — the raw
            scatter Figure 8 plots.
        gaps_after_multi: Hours from each multi-GPU failure to the next
            multi-GPU failure.
        gaps_after_single: Hours from each single-GPU failure to the
            next multi-GPU failure.
    """

    machine: str
    events: tuple[tuple[float, int], ...]
    gaps_after_multi: tuple[float, ...]
    gaps_after_single: tuple[float, ...]

    @property
    def mean_gap_after_multi(self) -> float:
        """Mean hours to the next multi-GPU failure, given one just
        happened (nan when no such gaps exist)."""
        if not self.gaps_after_multi:
            return float("nan")
        return float(np.mean(self.gaps_after_multi))

    @property
    def mean_gap_after_single(self) -> float:
        """Mean hours to the next multi-GPU failure after a single-GPU
        failure (nan when no such gaps exist)."""
        if not self.gaps_after_single:
            return float("nan")
        return float(np.mean(self.gaps_after_single))

    @property
    def clustering_ratio(self) -> float:
        """mean(gap after single) / mean(gap after multi).

        Values above 1 mean multi-GPU failures beget multi-GPU failures
        sooner than single-GPU failures do — the Figure 8 claim.  When
        multi-GPU failures chain so tightly that *no* single-GPU
        failure ever precedes a later multi-GPU one, clustering is
        maximal and the ratio is +inf.
        """
        after_multi = self.mean_gap_after_multi
        if not np.isfinite(after_multi) or after_multi <= 0:
            return float("nan")
        if not self.gaps_after_single:
            return float("inf")
        return self.mean_gap_after_single / after_multi

    def is_clustered(self) -> bool:
        """True when the clustering ratio exceeds 1 (inf included)."""
        ratio = self.clustering_ratio
        return bool(not np.isnan(ratio) and ratio > 1.0)


def _reference_multi_gpu_clustering(log: FailureLog) -> MultiGpuClustering:
    """Pure-Python Figure 8, retained for the parity suite."""
    involved: list[tuple[float, FailureRecord]] = [
        (log.hours_since_start(record), record)
        for record in log
        if record.num_gpus_involved > 0
    ]
    if not involved:
        raise AnalysisError(
            "log has no GPU failures with recorded involvement"
        )
    events = tuple(
        (time, record.num_gpus_involved) for time, record in involved
    )
    gaps_after_multi: list[float] = []
    gaps_after_single: list[float] = []
    for index, (time, record) in enumerate(involved):
        next_multi_time = None
        for later_time, later_record in involved[index + 1:]:
            if later_record.num_gpus_involved > 1:
                next_multi_time = later_time
                break
        if next_multi_time is None:
            continue
        gap = next_multi_time - time
        if record.num_gpus_involved > 1:
            gaps_after_multi.append(gap)
        else:
            gaps_after_single.append(gap)
    return MultiGpuClustering(
        machine=log.machine,
        events=events,
        gaps_after_multi=tuple(gaps_after_multi),
        gaps_after_single=tuple(gaps_after_single),
    )


def multi_gpu_clustering(log: FailureLog) -> MultiGpuClustering:
    """Compute the Figure 8 temporal-clustering view of GPU failures.

    Raises:
        AnalysisError: If the log has no GPU failures with recorded
            involvement.
    """
    cols = log.columns
    keep = cols.gpu_counts > 0
    times = cols.ts_hours[keep]
    num_involved = cols.gpu_counts[keep].astype(np.int64)
    if times.size == 0:
        raise AnalysisError(
            "log has no GPU failures with recorded involvement"
        )
    events = tuple(zip(times.tolist(), num_involved.tolist()))
    # Index of the first multi-GPU event strictly after each event:
    # searchsorted over the multi positions replaces the quadratic
    # forward scan of the reference implementation.
    multi_positions = np.nonzero(num_involved > 1)[0]
    following = np.searchsorted(
        multi_positions, np.arange(times.size), side="right"
    )
    has_next = following < multi_positions.size
    gaps = (
        times[multi_positions[following[has_next]]] - times[has_next]
    )
    was_multi = (num_involved > 1)[has_next]
    return MultiGpuClustering(
        machine=log.machine,
        events=events,
        gaps_after_multi=tuple(gaps[was_multi].tolist()),
        gaps_after_single=tuple(gaps[~was_multi].tolist()),
    )
