"""Text report rendering for every table and figure in the paper.

Each ``report_*`` function turns one analysis result into the text
equivalent of the corresponding paper exhibit; :func:`full_report`
stitches all of them together for a pair of logs.  The benchmark
harness prints these, and EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

from repro.core import (
    breakdown,
    metrics,
    multigpu,
    recovery,
    seasonal,
    spatial,
    temporal,
)
from repro.core.records import FailureLog
from repro.core.taxonomy import categories_for
from repro.errors import AnalysisError
from repro.machines.specs import MachineSpec, get_machine
from repro.viz import ascii as viz

__all__ = [
    "report_table1",
    "report_table2",
    "report_fig2",
    "report_fig3",
    "report_fig4",
    "report_fig5",
    "report_table3",
    "report_fig6",
    "report_fig7",
    "report_fig8",
    "report_fig9",
    "report_fig10",
    "report_fig11",
    "report_fig12",
    "report_component_mtbf",
    "report_impact",
    "full_report",
]


def report_table1(specs: list[MachineSpec] | None = None) -> str:
    """Table I — node configurations."""
    if specs is None:
        specs = [get_machine("tsubame2"), get_machine("tsubame3")]
    if not specs:
        raise AnalysisError("report_table1 needs at least one machine")
    labels = list(specs[0].table1_row())
    rows = []
    for label in labels:
        rows.append([label] + [spec.table1_row()[label] for spec in specs])
    headers = [""] + [spec.display_name for spec in specs]
    return viz.render_table(headers, rows, title="Table I. Node configurations")


def report_table2() -> str:
    """Table II — failure categories per machine."""
    t2 = sorted(cat.name for cat in categories_for("tsubame2"))
    t3 = sorted(cat.name for cat in categories_for("tsubame3"))
    length = max(len(t2), len(t3))
    rows = [
        [
            t2[index] if index < len(t2) else "",
            t3[index] if index < len(t3) else "",
        ]
        for index in range(length)
    ]
    return viz.render_table(
        ["Tsubame-2", "Tsubame-3"], rows,
        title="Table II. Failure categories",
    )


def report_fig2(log: FailureLog) -> str:
    """Figure 2 — failure-category breakdown."""
    result = breakdown.category_breakdown(log)
    rows = [
        (entry.category, 100.0 * entry.share) for entry in result.shares
    ]
    return viz.bar_chart(
        rows,
        value_format="{:.2f}%",
        title=f"Fig 2 ({log.machine}). Failure categories, "
              f"n={result.total}",
    )


def report_fig3(log: FailureLog) -> str:
    """Figure 3 — Tsubame-3 software failure root loci (top 16)."""
    result = breakdown.software_root_loci(log)
    rows = [
        (entry.category, 100.0 * entry.share) for entry in result.top(16)
    ]
    return viz.bar_chart(
        rows,
        value_format="{:.1f}%",
        title=f"Fig 3 ({log.machine}). Software root loci, "
              f"n={result.total_software}",
    )


def report_fig4(log: FailureLog) -> str:
    """Figure 4 — per-node failure-count distribution."""
    result = spatial.node_failure_distribution(log)
    rows = [
        (f"{k} failure(s)", 100.0 * result.fraction_with_exactly(k))
        for k in sorted(result.histogram)
    ]
    return viz.bar_chart(
        rows,
        value_format="{:.1f}%",
        title=f"Fig 4 ({log.machine}). Nodes by failure count, "
              f"{result.num_affected_nodes} affected nodes",
    )


def report_fig5(log: FailureLog) -> str:
    """Figure 5 — per-GPU-slot failure distribution."""
    spec = get_machine(log.machine)
    result = spatial.gpu_slot_distribution(
        log.gpu_failures(), spec.gpu_slots
    )
    rows = [
        (f"GPU {slot}", float(result.counts.get(slot, 0)))
        for slot in spec.gpu_slots
    ]
    return viz.bar_chart(
        rows,
        value_format="{:.0f}",
        title=f"Fig 5 ({log.machine}). Failures per GPU slot "
              f"(total involvements {result.total})",
    )


def report_table3(log: FailureLog) -> str:
    """Table III — number of GPUs involved in node failures."""
    spec = get_machine(log.machine)
    result = multigpu.multi_gpu_involvement(log, spec.gpus_per_node)
    rows = [
        [str(num), str(count), f"{100.0 * share:.2f}%"]
        for num, count, share in result.rows()
    ]
    rows.append(["Total", str(result.total), "100%"])
    return viz.render_table(
        ["#GPUs", "count", "share"], rows,
        title=f"Table III ({log.machine}). GPUs involved per failure",
    )


def report_fig6(logs: list[FailureLog]) -> str:
    """Figure 6 — cumulative distribution of time between failures."""
    curves = {}
    summary_lines = []
    for log in logs:
        dist = temporal.tbf_distribution(log)
        curves[log.machine] = dist.ecdf
        summary_lines.append(
            f"{log.machine}: MTBF {dist.mtbf_hours:.1f} h "
            f"(span estimator {dist.mtbf_span_hours:.1f} h), "
            f"p75 {dist.p75_hours():.1f} h"
        )
    chart = viz.cdf_chart(
        curves, title="Fig 6. Time between failures (CDF)"
    )
    return chart + "\n" + "\n".join(summary_lines)


def report_fig7(log: FailureLog, min_failures: int = 3) -> str:
    """Figure 7 — TBF distribution per failure type."""
    entries = temporal.tbf_by_category(log, min_failures=min_failures)
    rows = [(entry.category, entry.summary) for entry in entries]
    return viz.boxplot_table(
        rows,
        title=f"Fig 7 ({log.machine}). Time between failures by type "
              f"(sorted by mean)",
    )


def report_fig8(log: FailureLog) -> str:
    """Figure 8 — temporal distribution of (multi-)GPU failures."""
    result = multigpu.multi_gpu_clustering(log)
    chart = viz.timeline(
        result.events,
        span=log.span_hours,
        title=f"Fig 8 ({log.machine}). GPU failures over time "
              f"(digits = #GPUs involved)",
    )
    return (
        chart
        + f"\nmean gap to next multi-GPU failure: after multi "
          f"{result.mean_gap_after_multi:.1f} h, after single "
          f"{result.mean_gap_after_single:.1f} h "
          f"(clustering ratio {result.clustering_ratio:.2f})"
    )


def report_fig9(logs: list[FailureLog]) -> str:
    """Figure 9 — cumulative distribution of time to recovery."""
    curves = {}
    summary_lines = []
    for log in logs:
        dist = recovery.ttr_distribution(log)
        curves[log.machine] = dist.ecdf
        summary_lines.append(
            f"{log.machine}: MTTR {dist.mttr_hours:.1f} h, "
            f"median {dist.quantile(0.5):.1f} h"
        )
    chart = viz.cdf_chart(curves, title="Fig 9. Time to recovery (CDF)")
    return chart + "\n" + "\n".join(summary_lines)


def report_fig10(log: FailureLog, min_failures: int = 2) -> str:
    """Figure 10 — TTR distribution per failure type."""
    entries = recovery.ttr_by_category(log, min_failures=min_failures)
    rows = [(entry.category, entry.summary) for entry in entries]
    return viz.boxplot_table(
        rows,
        title=f"Fig 10 ({log.machine}). Time to recovery by type "
              f"(sorted by mean)",
    )


def report_fig11(log: FailureLog) -> str:
    """Figure 11 — monthly time-to-recovery distribution."""
    result = seasonal.monthly_ttr(log)
    rows = [
        (f"month {month:>2}", result.summaries[month])
        for month in sorted(result.summaries)
    ]
    return viz.boxplot_table(
        rows,
        title=f"Fig 11 ({log.machine}). Time to recovery by month",
    )


def report_fig12(log: FailureLog) -> str:
    """Figure 12 — failures by month of occurrence."""
    result = seasonal.monthly_failure_counts(log)
    rows = [(name, float(count)) for name, count in result.rows()]
    return viz.bar_chart(
        rows,
        value_format="{:.0f}",
        title=f"Fig 12 ({log.machine}). Failures per month, "
              f"total {result.total}",
    )


def report_impact(log: FailureLog) -> str:
    """Impact ranking — RQ5's frequency-vs-impact point as a table."""
    from repro.core.impact import impact_ranking

    ranking = impact_ranking(log)
    rows = [
        [
            entry.category,
            f"{100 * entry.share_of_failures:.2f}%",
            f"{entry.mean_ttr_hours:.1f}",
            f"{100 * entry.downtime_share:.2f}%",
            str(entry.frequency_rank),
            str(entry.impact_rank),
            f"{entry.rank_shift:+d}",
        ]
        for entry in ranking.entries
    ]
    return viz.render_table(
        ["category", "failure share", "mean TTR (h)", "downtime share",
         "freq rank", "impact rank", "shift"],
        rows,
        title=f"Impact ranking ({log.machine}): frequency is not "
              f"impact",
    )


def report_component_mtbf(logs: list[FailureLog]) -> str:
    """RQ4 text — GPU/CPU MTBF per machine plus the paper's metric."""
    rows = []
    for log in logs:
        spec = get_machine(log.machine)
        classes = temporal.component_class_mtbf(log)
        pep = metrics.performance_error_proportionality(log, spec)
        rows.append(
            [
                log.machine,
                f"{metrics.mtbf(log):.1f}",
                f"{classes.gpu_mtbf_hours:.1f}",
                f"{classes.cpu_mtbf_hours:.1f}",
                f"{pep.flop_per_failure_free_period:.3e}",
            ]
        )
    return viz.render_table(
        ["machine", "MTBF (h)", "GPU MTBF (h)", "CPU MTBF (h)",
         "FLOP per failure-free period"],
        rows,
        title="Component-class MTBF and performance-error-proportionality",
    )


def full_report(t2_log: FailureLog, t3_log: FailureLog) -> str:
    """Render every exhibit for a Tsubame-2 / Tsubame-3 log pair."""
    sections = [
        report_table1(),
        report_table2(),
        report_fig2(t2_log),
        report_fig2(t3_log),
        report_fig3(t3_log),
        report_fig4(t2_log),
        report_fig4(t3_log),
        report_fig5(t2_log),
        report_fig5(t3_log),
        report_table3(t2_log),
        report_table3(t3_log),
        report_fig6([t2_log, t3_log]),
        report_fig7(t2_log),
        report_fig7(t3_log),
        report_fig8(t2_log),
        report_fig8(t3_log),
        report_fig9([t2_log, t3_log]),
        report_fig10(t2_log),
        report_fig10(t3_log),
        report_fig11(t2_log),
        report_fig11(t3_log),
        report_fig12(t2_log),
        report_fig12(t3_log),
        report_component_mtbf([t2_log, t3_log]),
        report_impact(t2_log),
        report_impact(t3_log),
    ]
    return "\n\n".join(sections)
