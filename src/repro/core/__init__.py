"""Core analysis library — the paper's contribution.

The analyses are organised by research question:

* RQ1 — :mod:`repro.core.breakdown` (Figures 2 and 3)
* RQ2 — :mod:`repro.core.spatial` (Figures 4 and 5)
* RQ3 — :mod:`repro.core.multigpu` (Table III and Figure 8)
* RQ4 — :mod:`repro.core.temporal` (Figures 6 and 7)
* RQ5 — :mod:`repro.core.recovery` and :mod:`repro.core.seasonal`
  (Figures 9-12)

plus the shared data model (:mod:`repro.core.records`), taxonomy
(:mod:`repro.core.taxonomy`), metric definitions
(:mod:`repro.core.metrics`) and text report rendering
(:mod:`repro.core.report`).
"""

from repro.core.breakdown import (
    CategoryBreakdown,
    CategoryShare,
    RootLocusBreakdown,
    category_breakdown,
    software_root_loci,
)
from repro.core.category_trends import (
    CategoryShift,
    category_rate_shifts,
    category_window_counts,
)
from repro.core.columns import ColumnarView, build_columns
from repro.core.compare import GenerationComparison, compare_generations
from repro.core.exposure import ExposureReport, ExposureRow, exposure_report
from repro.core.impact import ImpactEntry, ImpactRanking, impact_ranking
from repro.core.metrics import (
    PerformanceErrorProportionality,
    availability,
    job_interruption_probability,
    mtbf,
    mtbf_span,
    mttr,
    performance_error_proportionality,
    tbf_series_hours,
    ttr_series_hours,
)
from repro.core.overlap import ConcurrentOutages, concurrent_outages
from repro.core.multigpu import (
    MultiGpuClustering,
    MultiGpuInvolvement,
    multi_gpu_clustering,
    multi_gpu_involvement,
)
from repro.core.records import FailureLog, FailureRecord
from repro.core.recovery import (
    CategoryTtr,
    TtrDistribution,
    class_spread_comparison,
    ttr_by_category,
    ttr_distribution,
)
from repro.core.seasonal import (
    HourOfDayProfile,
    MonthlyFailureCounts,
    MonthlyTtr,
    SeasonalCorrelation,
    WeekdayProfile,
    hour_of_day_profile,
    monthly_failure_counts,
    monthly_ttr,
    ttr_density_correlation,
    weekday_profile,
)
from repro.core.spatial import (
    GpuSlotDistribution,
    NodeFailureDistribution,
    RackFailureDistribution,
    RepeatFailureClassSplit,
    gpu_slot_distribution,
    node_failure_distribution,
    rack_failure_distribution,
    repeat_failure_class_split,
)
from repro.core.taxonomy import Category, FailureClass
from repro.core.temporal import (
    CategoryTbf,
    ComponentClassMtbf,
    TbfDistribution,
    component_class_mtbf,
    tbf_by_category,
    tbf_distribution,
)
from repro.core.trends import (
    CrowAmsaaFit,
    WindowPoint,
    crow_amsaa_fit,
    ttr_survival,
    windowed_mtbf,
    windowed_mttr,
)

__all__ = [
    "Category",
    "CategoryBreakdown",
    "CategoryShare",
    "CategoryShift",
    "CategoryTbf",
    "CategoryTtr",
    "ColumnarView",
    "ComponentClassMtbf",
    "ConcurrentOutages",
    "CrowAmsaaFit",
    "ExposureReport",
    "ExposureRow",
    "FailureClass",
    "FailureLog",
    "FailureRecord",
    "GenerationComparison",
    "GpuSlotDistribution",
    "HourOfDayProfile",
    "ImpactEntry",
    "ImpactRanking",
    "MonthlyFailureCounts",
    "MonthlyTtr",
    "MultiGpuClustering",
    "MultiGpuInvolvement",
    "NodeFailureDistribution",
    "PerformanceErrorProportionality",
    "RackFailureDistribution",
    "RepeatFailureClassSplit",
    "RootLocusBreakdown",
    "SeasonalCorrelation",
    "TbfDistribution",
    "TtrDistribution",
    "WeekdayProfile",
    "WindowPoint",
    "availability",
    "build_columns",
    "category_breakdown",
    "category_rate_shifts",
    "category_window_counts",
    "class_spread_comparison",
    "compare_generations",
    "component_class_mtbf",
    "concurrent_outages",
    "crow_amsaa_fit",
    "exposure_report",
    "job_interruption_probability",
    "gpu_slot_distribution",
    "hour_of_day_profile",
    "impact_ranking",
    "monthly_failure_counts",
    "monthly_ttr",
    "mtbf",
    "mtbf_span",
    "mttr",
    "multi_gpu_clustering",
    "multi_gpu_involvement",
    "node_failure_distribution",
    "performance_error_proportionality",
    "rack_failure_distribution",
    "repeat_failure_class_split",
    "software_root_loci",
    "tbf_by_category",
    "tbf_distribution",
    "tbf_series_hours",
    "ttr_by_category",
    "ttr_density_correlation",
    "ttr_distribution",
    "ttr_series_hours",
    "ttr_survival",
    "weekday_profile",
    "windowed_mtbf",
    "windowed_mttr",
]
