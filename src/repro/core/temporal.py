"""RQ4 — time between failures (Figures 6 and 7, component MTBF).

Covers the system-level TBF distribution (Figure 6), the per-category
TBF distributions (Figure 7, boxplots sorted by mean), and the
per-component-class MTBF comparison the paper uses to argue GPU
hardware reliability improved ~10x across generations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import metrics
from repro.core.records import FailureLog
from repro.errors import AnalysisError
from repro.stats.ecdf import ECDF
from repro.stats.summary import FiveNumberSummary, five_number_summary

__all__ = [
    "TbfDistribution",
    "tbf_distribution",
    "CategoryTbf",
    "tbf_by_category",
    "ComponentClassMtbf",
    "component_class_mtbf",
]


@dataclass(frozen=True)
class TbfDistribution:
    """Figure 6 for one machine: the TBF ECDF plus headline numbers."""

    machine: str
    ecdf: ECDF
    mtbf_hours: float
    mtbf_span_hours: float

    def p75_hours(self) -> float:
        """The paper's headline percentile: 75% of failures occur
        within this many hours of the previous failure (20 h on
        Tsubame-2, 93 h on Tsubame-3)."""
        return self.ecdf.quantile(0.75)

    def fraction_within(self, hours: float) -> float:
        """Fraction of gaps no longer than ``hours``."""
        return self.ecdf(hours)


def tbf_distribution(log: FailureLog) -> TbfDistribution:
    """Compute the Figure 6 TBF distribution of a log.

    Raises:
        AnalysisError: If the log has fewer than two failures.
    """
    series = metrics.tbf_series_hours(log)
    return TbfDistribution(
        machine=log.machine,
        ecdf=ECDF(series),
        mtbf_hours=metrics.mtbf(log),
        mtbf_span_hours=metrics.mtbf_span(log),
    )


@dataclass(frozen=True)
class CategoryTbf:
    """One box of Figure 7: TBF summary for a single failure category.

    The TBF series of a category is computed over the sub-log of that
    category only (gaps between consecutive failures *of that type*).
    """

    category: str
    summary: FiveNumberSummary

    @property
    def mean_hours(self) -> float:
        return self.summary.mean

    @property
    def median_hours(self) -> float:
        return self.summary.median

    @property
    def spread_hours(self) -> float:
        """The paper's "spread": p75 - p25."""
        return self.summary.iqr


def _reference_tbf_by_category(
    log: FailureLog, min_failures: int = 3
) -> list[CategoryTbf]:
    """Per-record-path Figure 7, retained for the parity suite."""
    if min_failures < 2:
        raise AnalysisError(
            f"min_failures must be >= 2 to define any TBF, "
            f"got {min_failures}"
        )
    results = []
    for name in log.categories():
        sub = log.by_category(name)
        if len(sub) < min_failures:
            continue
        series = metrics._reference_tbf_series_hours(sub)
        results.append(
            CategoryTbf(category=name, summary=five_number_summary(series))
        )
    if not results:
        raise AnalysisError(
            f"no category has at least {min_failures} failures"
        )
    results.sort(key=lambda entry: entry.mean_hours)
    return results


def tbf_by_category(
    log: FailureLog, min_failures: int = 3
) -> list[CategoryTbf]:
    """Compute Figure 7: per-category TBF summaries sorted by mean.

    Categories with fewer than ``min_failures`` records are skipped —
    a TBF distribution over one or two gaps is noise, and the paper's
    boxplots visibly omit the rarest categories.

    Raises:
        AnalysisError: If no category clears the threshold.
    """
    if min_failures < 2:
        raise AnalysisError(
            f"min_failures must be >= 2 to define any TBF, "
            f"got {min_failures}"
        )
    cols = log.columns
    results = []
    for name in log.categories():
        stamps = cols.ts_hours[cols.category_codes == cols.code_of(name)]
        if stamps.shape[0] < min_failures:
            continue
        results.append(
            CategoryTbf(
                category=name,
                summary=five_number_summary(np.diff(stamps)),
            )
        )
    if not results:
        raise AnalysisError(
            f"no category has at least {min_failures} failures"
        )
    results.sort(key=lambda entry: entry.mean_hours)
    return results


@dataclass(frozen=True)
class ComponentClassMtbf:
    """Per-component-class MTBF for the RQ4 cross-generation argument.

    Uses the span estimator (span / count) because filtered logs can be
    short; see :func:`repro.core.metrics.mtbf_span`.
    """

    machine: str
    gpu_mtbf_hours: float
    cpu_mtbf_hours: float
    gpu_failures: int
    cpu_failures: int

    def gpu_improvement_over(self, older: "ComponentClassMtbf") -> float:
        """GPU MTBF ratio of this (newer) machine over an older one."""
        if older.gpu_mtbf_hours <= 0:
            raise AnalysisError("older GPU MTBF must be positive")
        return self.gpu_mtbf_hours / older.gpu_mtbf_hours

    def cpu_improvement_over(self, older: "ComponentClassMtbf") -> float:
        """CPU MTBF ratio of this (newer) machine over an older one."""
        if older.cpu_mtbf_hours <= 0:
            raise AnalysisError("older CPU MTBF must be positive")
        return self.cpu_mtbf_hours / older.cpu_mtbf_hours


def component_class_mtbf(
    log: FailureLog,
    gpu_category: str = "GPU",
    cpu_category: str = "CPU",
) -> ComponentClassMtbf:
    """Compute GPU and CPU MTBF for one machine's log.

    Raises:
        AnalysisError: If the log has no GPU or no CPU failures.
    """
    gpu_log = log.by_category(gpu_category)
    cpu_log = log.by_category(cpu_category)
    if len(gpu_log) == 0:
        raise AnalysisError(f"log has no {gpu_category!r} failures")
    if len(cpu_log) == 0:
        raise AnalysisError(f"log has no {cpu_category!r} failures")
    return ComponentClassMtbf(
        machine=log.machine,
        gpu_mtbf_hours=metrics.mtbf_span(gpu_log),
        cpu_mtbf_hours=metrics.mtbf_span(cpu_log),
        gpu_failures=len(gpu_log),
        cpu_failures=len(cpu_log),
    )
