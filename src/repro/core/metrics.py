"""Reliability metrics: TBF, MTBF, TTR, MTTR, availability, and the
paper's *performance-error-proportionality*.

Definitions (Section III of the paper):

* **Time between failures (TBF)** — elapsed wall-clock time between two
  consecutive failure occurrences anywhere on the system.
* **Mean time between failures (MTBF)** — we report two estimators:
  the mean of the TBF series (``mtbf``) and the observation span
  divided by the failure count (``mtbf_span``).  They agree when
  failures cover the window evenly; both are exposed because field
  studies are often ambiguous about which was used.
* **Time to recovery (TTR)** — per-failure repair duration as logged.
* **Performance-error-proportionality** — "useful work done per
  failure-free period", operationalised as Rpeak × MTBF, i.e. the
  maximum FLOP attainable between interruptions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.records import FailureLog
from repro.errors import AnalysisError
from repro.machines.specs import MachineSpec

__all__ = [
    "tbf_series_hours",
    "ttr_series_hours",
    "mtbf",
    "mtbf_span",
    "mttr",
    "availability",
    "PerformanceErrorProportionality",
    "performance_error_proportionality",
    "job_interruption_probability",
]

_PFLOPS_TO_FLOPS = 1e15
_SECONDS_PER_HOUR = 3600.0


def _reference_tbf_series_hours(log: FailureLog) -> list[float]:
    """Pure-Python TBF series, retained for the parity suite."""
    if len(log) < 2:
        raise AnalysisError(
            f"TBF needs at least 2 failures, log has {len(log)}"
        )
    stamps = log.timestamps_hours()
    return [later - earlier for earlier, later in zip(stamps, stamps[1:])]


def tbf_series_hours(log: FailureLog) -> list[float]:
    """Return the time-between-failures series of a log, in hours.

    The series has ``len(log) - 1`` entries; simultaneous failures
    contribute zero-length gaps (they are real in field logs — e.g.
    correlated reboots — and the CDFs must keep them).

    Raises:
        AnalysisError: If the log has fewer than two failures.
    """
    if len(log) < 2:
        raise AnalysisError(
            f"TBF needs at least 2 failures, log has {len(log)}"
        )
    return np.diff(log.columns.ts_hours).tolist()


def _reference_ttr_series_hours(log: FailureLog) -> list[float]:
    """Pure-Python TTR series, retained for the parity suite."""
    return [record.ttr_hours for record in log]


def ttr_series_hours(log: FailureLog) -> list[float]:
    """Return the per-failure time-to-recovery series, in hours."""
    return log.columns.ttr_hours.tolist()


def mtbf(log: FailureLog) -> float:
    """Mean of the TBF series, in hours."""
    return float(np.mean(tbf_series_hours(log)))


def mtbf_span(log: FailureLog) -> float:
    """Observation span divided by failure count, in hours.

    This estimator is defined for any non-empty log and is the one we
    use for per-component-class MTBF (GPU/CPU MTBF comparisons in RQ4),
    where the filtered series can be short.

    Raises:
        AnalysisError: If the log is empty.
    """
    if len(log) == 0:
        raise AnalysisError("MTBF of an empty log is undefined")
    return log.span_hours / len(log)


def mttr(log: FailureLog) -> float:
    """Mean time to recovery, in hours.

    Raises:
        AnalysisError: If the log is empty.
    """
    if len(log) == 0:
        raise AnalysisError("MTTR of an empty log is undefined")
    return float(np.mean(ttr_series_hours(log)))


def availability(log: FailureLog, num_nodes: int) -> float:
    """Fleet-level availability estimate in [0, 1].

    Approximates each failure as taking one node out of service for its
    recovery time: availability = 1 - sum(TTR) / (num_nodes * span).

    Raises:
        AnalysisError: If ``num_nodes`` is not positive.
    """
    if num_nodes <= 0:
        raise AnalysisError(f"num_nodes must be positive, got {num_nodes}")
    downtime_node_hours = float(np.sum(ttr_series_hours(log)))
    capacity_node_hours = num_nodes * log.span_hours
    return max(0.0, 1.0 - downtime_node_hours / capacity_node_hours)


@dataclass(frozen=True)
class PerformanceErrorProportionality:
    """The paper's proposed benchmarking metric (RQ4).

    Attributes:
        machine: Machine name.
        rpeak_pflops: Theoretical peak performance.
        mtbf_hours: System MTBF used in the computation.
        flop_per_failure_free_period: Rpeak x MTBF, in FLOP — the
            maximum useful computation between two interruptions.
    """

    machine: str
    rpeak_pflops: float
    mtbf_hours: float
    flop_per_failure_free_period: float

    def ratio_to(
        self, other: "PerformanceErrorProportionality"
    ) -> float:
        """How many times more useful work per failure-free period this
        machine achieves relative to ``other``."""
        if other.flop_per_failure_free_period <= 0:
            raise AnalysisError(
                "cannot form a ratio against a non-positive metric"
            )
        return (
            self.flop_per_failure_free_period
            / other.flop_per_failure_free_period
        )


def performance_error_proportionality(
    log: FailureLog, spec: MachineSpec
) -> PerformanceErrorProportionality:
    """Compute FLOP per failure-free period for one machine.

    Raises:
        AnalysisError: If the log's machine does not match the spec.
    """
    if log.machine != spec.name:
        raise AnalysisError(
            f"log is for {log.machine!r} but spec is for {spec.name!r}"
        )
    mtbf_hours = mtbf(log)
    flop = (
        spec.rpeak_pflops
        * _PFLOPS_TO_FLOPS
        * mtbf_hours
        * _SECONDS_PER_HOUR
    )
    return PerformanceErrorProportionality(
        machine=spec.name,
        rpeak_pflops=spec.rpeak_pflops,
        mtbf_hours=mtbf_hours,
        flop_per_failure_free_period=flop,
    )


def job_interruption_probability(
    system_mtbf_hours: float,
    num_system_nodes: int,
    job_nodes: int,
    job_hours: float,
) -> float:
    """Probability a job sees at least one failure on its nodes.

    Models failures as a Poisson process at the system rate
    1 / MTBF, spread uniformly over nodes, so a job holding
    ``job_nodes`` of ``num_system_nodes`` nodes for ``job_hours``
    accumulates rate x time x share expected hits:
    P = 1 - exp(-(job_hours / MTBF) x (job_nodes / N)).

    This is the user-facing translation of the MTBF numbers: the paper
    urges HPC centres to help users reason about failure exposure.

    Raises:
        AnalysisError: On non-positive inputs or a job larger than the
            system.
    """
    if system_mtbf_hours <= 0:
        raise AnalysisError(
            f"MTBF must be positive, got {system_mtbf_hours}"
        )
    if num_system_nodes < 1:
        raise AnalysisError(
            f"num_system_nodes must be >= 1, got {num_system_nodes}"
        )
    if not 1 <= job_nodes <= num_system_nodes:
        raise AnalysisError(
            f"job_nodes must be in [1, {num_system_nodes}], "
            f"got {job_nodes}"
        )
    if job_hours <= 0:
        raise AnalysisError(f"job_hours must be positive, got {job_hours}")
    expected_hits = (
        (job_hours / system_mtbf_hours)
        * (job_nodes / num_system_nodes)
    )
    return 1.0 - float(np.exp(-expected_hits))
