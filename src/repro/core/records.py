"""Failure-log data model.

A :class:`FailureRecord` is one line of a Tsubame-style failure log: the
time a failure occurred, the node it occurred on, its category, the time
it took to recover from it, and — for GPU-incident failures — which GPU
slots were involved.  A :class:`FailureLog` is a chronologically sorted,
validated collection of records for one machine, together with the
observation window.

The schema deliberately matches the fields the paper's analyses consume
(Section II, "Dataset"): occurrence time, recovery time, category, and
enough locality to answer RQ2/RQ3 (node id and GPU slots).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from datetime import datetime, timedelta
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core import taxonomy
from repro.core.taxonomy import FailureClass
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.columns import ColumnarView

__all__ = ["FailureRecord", "FailureLog", "HOURS_PER_DAY"]

HOURS_PER_DAY = 24.0


@dataclass(frozen=True, slots=True)
class FailureRecord:
    """One failure event.

    Attributes:
        record_id: Stable integer id, unique within a log.
        timestamp: Wall-clock time of the failure occurrence.
        node_id: Index of the compute node the failure occurred on.
        category: Failure category name (must exist in the machine's
            taxonomy, see :mod:`repro.core.taxonomy`).
        ttr_hours: Time to recovery in hours — the elapsed time until
            the component returned to normal operational status.
        gpus_involved: Sorted tuple of GPU slot indices involved in the
            failure.  Empty for non-GPU failures and for GPU failures
            whose involvement was not recorded (the paper's Table III
            covers 368 of 398 GPU failures on Tsubame-2).
        root_locus: Root locus of a Tsubame-3 ``Software`` failure
            (Figure 3), or None for every other category.
    """

    record_id: int
    timestamp: datetime
    node_id: int
    category: str
    ttr_hours: float
    gpus_involved: tuple[int, ...] = ()
    root_locus: str | None = None

    def __post_init__(self) -> None:
        if self.record_id < 0:
            raise ValidationError(
                f"record_id must be non-negative, got {self.record_id}"
            )
        if self.node_id < 0:
            raise ValidationError(
                f"node_id must be non-negative, got {self.node_id}"
            )
        if not self.category:
            raise ValidationError("category must be a non-empty string")
        if not (self.ttr_hours >= 0.0):  # also rejects NaN
            raise ValidationError(
                f"ttr_hours must be a non-negative number, "
                f"got {self.ttr_hours!r}"
            )
        if any(slot < 0 for slot in self.gpus_involved):
            raise ValidationError(
                f"GPU slot indices must be non-negative, "
                f"got {self.gpus_involved}"
            )
        if len(set(self.gpus_involved)) != len(self.gpus_involved):
            raise ValidationError(
                f"GPU slot indices must be unique, got {self.gpus_involved}"
            )
        if tuple(sorted(self.gpus_involved)) != self.gpus_involved:
            # Normalise rather than reject: slot order carries no meaning.
            object.__setattr__(
                self, "gpus_involved", tuple(sorted(self.gpus_involved))
            )

    @property
    def num_gpus_involved(self) -> int:
        """Number of GPU slots recorded as involved (0 when unrecorded)."""
        return len(self.gpus_involved)

    @property
    def recovered_at(self) -> datetime:
        """Time the failure was fully repaired."""
        return self.timestamp + timedelta(hours=self.ttr_hours)

    def with_ttr(self, ttr_hours: float) -> "FailureRecord":
        """Return a copy of this record with a different recovery time."""
        return replace(self, ttr_hours=ttr_hours)


@dataclass(frozen=True)
class FailureLog:
    """A validated, chronologically sorted failure log for one machine.

    Attributes:
        machine: Machine name (``"tsubame2"`` or ``"tsubame3"``).
        records: Records sorted by timestamp (ties broken by record id).
        window_start: Start of the observation window.
        window_end: End of the observation window.
    """

    machine: str
    records: tuple[FailureRecord, ...]
    window_start: datetime
    window_end: datetime
    _strict_taxonomy: bool = field(default=True, repr=False)

    def __post_init__(self) -> None:
        if self.window_end <= self.window_start:
            raise ValidationError(
                f"window_end ({self.window_end}) must be after "
                f"window_start ({self.window_start})"
            )
        ordered = tuple(
            sorted(self.records, key=lambda r: (r.timestamp, r.record_id))
        )
        object.__setattr__(self, "records", ordered)
        seen_ids: set[int] = set()
        valid_names: set[str] | None = None
        if self._strict_taxonomy:
            valid_names = {
                cat.name for cat in taxonomy.categories_for(self.machine)
            }
        for record in ordered:
            if record.record_id in seen_ids:
                raise ValidationError(
                    f"duplicate record_id {record.record_id}"
                )
            seen_ids.add(record.record_id)
            if not (self.window_start
                    <= record.timestamp
                    <= self.window_end):
                raise ValidationError(
                    f"record {record.record_id} at {record.timestamp} lies "
                    f"outside the observation window "
                    f"[{self.window_start}, {self.window_end}]"
                )
            if valid_names is not None and record.category not in valid_names:
                raise ValidationError(
                    f"record {record.record_id} has category "
                    f"{record.category!r}, which is not in the "
                    f"{self.machine} taxonomy"
                )

    # -- trusted fast path -------------------------------------------------
    #
    # Every record in a log has already passed the full __post_init__
    # validation (ids unique, timestamps in window, categories in
    # taxonomy) and is stored sorted.  Any order-preserving subset of
    # such records therefore needs neither re-validation nor re-sorting;
    # _from_trusted builds the sub-log directly, bypassing __init__.
    # This is the invariant documented in docs/PERFORMANCE.md — never
    # route records from outside an existing validated log through it.

    @classmethod
    def _from_trusted(
        cls,
        machine: str,
        records: tuple[FailureRecord, ...],
        window_start: datetime,
        window_end: datetime,
        strict_taxonomy: bool,
        columns: "ColumnarView | None" = None,
    ) -> "FailureLog":
        log = object.__new__(cls)
        state = log.__dict__
        state["machine"] = machine
        state["records"] = records
        state["window_start"] = window_start
        state["window_end"] = window_end
        state["_strict_taxonomy"] = strict_taxonomy
        if columns is not None:
            state["_derived_cache"] = {"columns": columns}
        return log

    def _cached(self, key: str, factory: Callable[[], Any]) -> Any:
        """Memoize a derived quantity on this (frozen) log."""
        cache = self.__dict__.get("_derived_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_derived_cache", cache)
        if key not in cache:
            cache[key] = factory()
        return cache[key]

    def __getstate__(self) -> dict[str, Any]:
        # Derived caches hold NumPy arrays that are cheap to rebuild
        # but expensive to ship to worker processes; drop them.
        return {
            k: v for k, v in self.__dict__.items() if k != "_derived_cache"
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)

    @property
    def columns(self) -> "ColumnarView":
        """The log's columnar NumPy view, built once and cached.

        Filtered sub-logs receive their parent's arrays sliced by mask
        rather than rebuilding from records.
        """
        from repro.core.columns import build_columns

        return self._cached("columns", lambda: build_columns(self))

    # -- basic container protocol ----------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[FailureRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> FailureRecord:
        return self.records[index]

    # -- derived quantities ----------------------------------------------

    @property
    def span_hours(self) -> float:
        """Length of the observation window in hours."""
        return (self.window_end - self.window_start).total_seconds() / 3600.0

    def hours_since_start(self, record: FailureRecord) -> float:
        """Offset of a record's timestamp from the window start, in hours."""
        delta = record.timestamp - self.window_start
        return delta.total_seconds() / 3600.0

    def timestamps_hours(self) -> list[float]:
        """All record offsets from the window start, in hours, sorted."""
        return list(
            self._cached(
                "timestamps_hours",
                lambda: tuple(
                    self.hours_since_start(r) for r in self.records
                ),
            )
        )

    def categories(self) -> list[str]:
        """Category names present in the log, sorted by name."""
        return list(
            self._cached(
                "categories",
                lambda: tuple(sorted({r.category for r in self.records})),
            )
        )

    def node_ids(self) -> list[int]:
        """Node ids present in the log, sorted."""
        return list(
            self._cached(
                "node_ids",
                lambda: tuple(sorted({r.node_id for r in self.records})),
            )
        )

    # -- filtering and slicing ---------------------------------------------

    def _rebuild(self, records: Iterable[FailureRecord]) -> "FailureLog":
        """Build a sub-log from an order-preserving subset of this
        log's records, skipping re-validation and re-sorting (the
        records already passed both — see ``_from_trusted``)."""
        return FailureLog._from_trusted(
            machine=self.machine,
            records=tuple(records),
            window_start=self.window_start,
            window_end=self.window_end,
            strict_taxonomy=self._strict_taxonomy,
        )

    def _subset(self, keep: np.ndarray) -> "FailureLog":
        """Build the sub-log selected by a boolean mask, propagating
        the columnar view by slicing instead of recomputation."""
        from itertools import compress

        records = tuple(compress(self.records, keep))
        cache = self.__dict__.get("_derived_cache") or {}
        source = cache.get("columns")
        return FailureLog._from_trusted(
            machine=self.machine,
            records=records,
            window_start=self.window_start,
            window_end=self.window_end,
            strict_taxonomy=self._strict_taxonomy,
            columns=source.mask(keep) if source is not None else None,
        )

    def filter(
        self, predicate: Callable[[FailureRecord], bool]
    ) -> "FailureLog":
        """Return a new log containing the records matching ``predicate``."""
        keep = np.fromiter(
            (bool(predicate(r)) for r in self.records),
            dtype=bool,
            count=len(self.records),
        )
        return self._subset(keep)

    def by_category(self, *names: str) -> "FailureLog":
        """Return the sub-log of records in any of the given categories."""
        cols = self.columns
        return self._subset(
            np.isin(cols.category_codes, cols.codes_of(tuple(names)))
        )

    def by_class(self, failure_class: FailureClass) -> "FailureLog":
        """Return the sub-log of records whose category has this class."""
        cols = self.columns
        if not cols.taxonomy_complete:
            # Lenient log with ad-hoc categories: keep the record path
            # so the per-record TaxonomyError surfaces as before.
            return self.filter(
                lambda r: taxonomy.failure_class(self.machine, r.category)
                is failure_class
            )
        return self._subset(
            cols.class_codes == cols.class_code_of(failure_class)
        )

    def gpu_failures(self) -> "FailureLog":
        """Return the sub-log of GPU-incident failures.

        A record counts as GPU-incident when its category is GPU-related
        in the machine taxonomy (e.g. ``GPU`` on both machines, plus the
        SXM2 categories on Tsubame-3) or when it explicitly records
        involved GPU slots.
        """
        cols = self.columns
        if not cols.taxonomy_complete:
            return self.filter(
                lambda r: bool(r.gpus_involved)
                or taxonomy.is_gpu_category(self.machine, r.category)
            )
        return self._subset((cols.gpu_counts > 0) | cols.gpu_category)

    def by_node(self, node_id: int) -> "FailureLog":
        """Return the sub-log of records on one node."""
        return self._subset(self.columns.node_ids == node_id)

    def between(self, start: datetime, end: datetime) -> "FailureLog":
        """Return the sub-log of records with start <= timestamp < end."""
        if end <= start:
            raise ValidationError(
                f"between() requires start < end, got {start} .. {end}"
            )
        # Same hour-offset arithmetic as hours_since_start, so boundary
        # comparisons agree exactly with the datetime comparisons.
        ts = self.columns.ts_hours
        start_h = (start - self.window_start).total_seconds() / 3600.0
        end_h = (end - self.window_start).total_seconds() / 3600.0
        return self._subset((ts >= start_h) & (ts < end_h))

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_records(
        cls,
        machine: str,
        records: Sequence[FailureRecord],
        window_start: datetime | None = None,
        window_end: datetime | None = None,
        strict_taxonomy: bool = True,
    ) -> "FailureLog":
        """Build a log, inferring the window from the records if absent.

        When the window is inferred, it is padded by one hour on each
        side so that boundary records validate and TBF/TTR analyses see
        a non-degenerate window.

        Raises:
            ValidationError: If no records are given and no explicit
                window is provided.
        """
        if window_start is None or window_end is None:
            if not records:
                raise ValidationError(
                    "cannot infer an observation window from an empty "
                    "record list; pass window_start and window_end"
                )
            stamps = [r.timestamp for r in records]
            pad = timedelta(hours=1)
            window_start = window_start or min(stamps) - pad
            window_end = window_end or max(stamps) + pad
        return cls(
            machine=machine,
            records=tuple(records),
            window_start=window_start,
            window_end=window_end,
            _strict_taxonomy=strict_taxonomy,
        )
