"""Concurrent-outage analysis.

The paper's RQ5 raises an alarm it does not quantify: "the MTTR is
very comparable to MTBF and hence, it is likely that multiple
concurrent failures might impact the handling/repair of previous
failures."  This module quantifies it: treating each failure as an
outage interval [t, t + TTR), a sweep over interval endpoints yields
the exact distribution of simultaneously-open outages over the
observation window — how often repairs overlap, how deep the overlap
gets, and how much repair-crew parallelism the log implies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.records import FailureLog
from repro.errors import AnalysisError

__all__ = ["ConcurrentOutages", "concurrent_outages"]


@dataclass(frozen=True)
class ConcurrentOutages:
    """Time-weighted distribution of simultaneously-open outages.

    Attributes:
        machine: Machine name.
        span_hours: Length of the analysed window.
        time_at_level: level k -> hours during which exactly k outages
            were open simultaneously.
        max_concurrent: Peak number of simultaneously-open outages.
    """

    machine: str
    span_hours: float
    time_at_level: dict[int, float]
    max_concurrent: int

    def fraction_at_least(self, k: int) -> float:
        """Fraction of time with k or more outages open."""
        if k < 0:
            raise AnalysisError(f"k must be >= 0, got {k}")
        hours = sum(
            duration
            for level, duration in self.time_at_level.items()
            if level >= k
        )
        return hours / self.span_hours

    @property
    def overlap_fraction(self) -> float:
        """Fraction of time with two or more outages open."""
        return self.fraction_at_least(2)

    @property
    def any_outage_fraction(self) -> float:
        """Fraction of time with at least one outage open."""
        return self.fraction_at_least(1)

    def mean_concurrent(self) -> float:
        """Time-average number of open outages.

        Equals total outage hours / span (Little's law: L = lambda x W
        with lambda = 1/MTBF and W = MTTR, so this approximates
        MTTR / MTBF — the paper's comparability alarm as a single
        number).
        """
        total = sum(
            level * duration
            for level, duration in self.time_at_level.items()
        )
        return total / self.span_hours

    def implied_repair_parallelism(self, coverage: float = 0.99) -> int:
        """Smallest crew size k whose capacity covers the outage load
        ``coverage`` of the time (i.e. time with > k open outages is
        at most 1 - coverage)."""
        if not 0.0 < coverage <= 1.0:
            raise AnalysisError(
                f"coverage must be in (0, 1], got {coverage}"
            )
        tolerance = 1e-12
        for k in range(self.max_concurrent + 1):
            if self.fraction_at_least(k + 1) <= 1.0 - coverage + tolerance:
                return k
        return self.max_concurrent


def concurrent_outages(log: FailureLog) -> ConcurrentOutages:
    """Sweep the log's outage intervals and bucket time by depth.

    Outages extending past the window end are truncated at it, so all
    the accounted time lies inside the window.

    Raises:
        AnalysisError: If the log is empty.
    """
    if len(log) == 0:
        raise AnalysisError(
            "concurrent outage analysis of an empty log is undefined"
        )
    span = log.span_hours
    events: list[tuple[float, int]] = []
    for record in log:
        start = log.hours_since_start(record)
        end = min(start + record.ttr_hours, span)
        if end <= start:
            continue  # zero-length outage contributes no time
        events.append((start, +1))
        events.append((end, -1))
    events.sort()

    time_at_level: dict[int, float] = {}
    level = 0
    cursor = 0.0
    for time, delta in events:
        if time > cursor:
            time_at_level[level] = (
                time_at_level.get(level, 0.0) + (time - cursor)
            )
            cursor = time
        level += delta
    if cursor < span:
        time_at_level[level] = (
            time_at_level.get(level, 0.0) + (span - cursor)
        )
    max_concurrent = max(time_at_level, default=0)
    return ConcurrentOutages(
        machine=log.machine,
        span_hours=span,
        time_at_level=time_at_level,
        max_concurrent=max_concurrent,
    )
