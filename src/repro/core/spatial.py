"""RQ2 — spatial distribution of failures (Figures 4 and 5).

Two questions: how are failures distributed *across nodes* (do a few
faulty nodes dominate?) and *within a node* across GPU slots (are some
slots unluckier than others?).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core import taxonomy
from repro.core.columns import CLASS_CODES
from repro.core.records import FailureLog
from repro.core.taxonomy import FailureClass
from repro.errors import AnalysisError

__all__ = [
    "NodeFailureDistribution",
    "node_failure_distribution",
    "RepeatFailureClassSplit",
    "repeat_failure_class_split",
    "GpuSlotDistribution",
    "gpu_slot_distribution",
    "RackFailureDistribution",
    "rack_failure_distribution",
]


@dataclass(frozen=True)
class NodeFailureDistribution:
    """Figure 4: how many failures each affected node experienced.

    Attributes:
        machine: Machine name.
        counts_per_node: Mapping node id -> failure count (affected
            nodes only).
        histogram: Mapping k -> number of nodes with exactly k failures.
    """

    machine: str
    counts_per_node: dict[int, int]
    histogram: dict[int, int]

    @property
    def num_affected_nodes(self) -> int:
        """Number of nodes with at least one failure."""
        return len(self.counts_per_node)

    @property
    def total_failures(self) -> int:
        """Total failures across affected nodes."""
        return sum(self.counts_per_node.values())

    def fraction_with_exactly(self, k: int) -> float:
        """Fraction of affected nodes with exactly k failures."""
        if self.num_affected_nodes == 0:
            return 0.0
        return self.histogram.get(k, 0) / self.num_affected_nodes

    def fraction_with_more_than(self, k: int) -> float:
        """Fraction of affected nodes with more than k failures."""
        if self.num_affected_nodes == 0:
            return 0.0
        count = sum(
            nodes for failures, nodes in self.histogram.items()
            if failures > k
        )
        return count / self.num_affected_nodes

    def cdf_points(self) -> list[tuple[int, float]]:
        """Return (k, fraction of nodes with <= k failures) pairs."""
        points = []
        running = 0
        for k in sorted(self.histogram):
            running += self.histogram[k]
            points.append((k, running / self.num_affected_nodes))
        return points

    def top_nodes(self, k: int = 10) -> list[tuple[int, int]]:
        """Return the k nodes with the most failures as (node, count)."""
        ranked = sorted(
            self.counts_per_node.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:k]


def _reference_node_failure_distribution(
    log: FailureLog,
) -> NodeFailureDistribution:
    """Pure-Python Figure 4, retained for the parity suite."""
    if len(log) == 0:
        raise AnalysisError(
            "node failure distribution of an empty log is undefined"
        )
    counts = Counter(record.node_id for record in log)
    histogram = Counter(counts.values())
    return NodeFailureDistribution(
        machine=log.machine,
        counts_per_node=dict(counts),
        histogram=dict(histogram),
    )


def node_failure_distribution(log: FailureLog) -> NodeFailureDistribution:
    """Compute the Figure 4 per-node failure-count distribution.

    Raises:
        AnalysisError: If the log is empty.
    """
    if len(log) == 0:
        raise AnalysisError(
            "node failure distribution of an empty log is undefined"
        )
    nodes, per_node = np.unique(log.columns.node_ids, return_counts=True)
    ks, num_nodes = np.unique(per_node, return_counts=True)
    return NodeFailureDistribution(
        machine=log.machine,
        counts_per_node=dict(zip(nodes.tolist(), per_node.tolist())),
        histogram=dict(zip(ks.tolist(), num_nodes.tolist())),
    )


@dataclass(frozen=True)
class RepeatFailureClassSplit:
    """Hardware/software split of failures on multi-failure nodes.

    The paper reports: "considering nodes with more than 1 failure, on
    Tsubame-2, we observed 352 hardware failures and 1 software
    failure, and on Tsubame-3, we observed 104 hardware and 95 software
    failures" — both classes recur on the same node.
    """

    machine: str
    num_multi_failure_nodes: int
    hardware_failures: int
    software_failures: int
    unknown_failures: int

    @property
    def total(self) -> int:
        """All failures on multi-failure nodes."""
        return (
            self.hardware_failures
            + self.software_failures
            + self.unknown_failures
        )


def _reference_repeat_failure_class_split(
    log: FailureLog,
) -> RepeatFailureClassSplit:
    """Pure-Python class split, retained for the parity suite."""
    distribution = node_failure_distribution(log)
    multi_nodes = {
        node for node, count in distribution.counts_per_node.items()
        if count > 1
    }
    tallies = {cls: 0 for cls in FailureClass}
    for record in log:
        if record.node_id not in multi_nodes:
            continue
        cls = taxonomy.failure_class(log.machine, record.category)
        tallies[cls] += 1
    return RepeatFailureClassSplit(
        machine=log.machine,
        num_multi_failure_nodes=len(multi_nodes),
        hardware_failures=tallies[FailureClass.HARDWARE],
        software_failures=tallies[FailureClass.SOFTWARE],
        unknown_failures=tallies[FailureClass.UNKNOWN],
    )


def repeat_failure_class_split(log: FailureLog) -> RepeatFailureClassSplit:
    """Split failures on multi-failure nodes by hardware/software class."""
    cols = log.columns
    if not cols.taxonomy_complete:
        # Ad-hoc categories must keep raising TaxonomyError per record.
        return _reference_repeat_failure_class_split(log)
    if len(log) == 0:
        raise AnalysisError(
            "node failure distribution of an empty log is undefined"
        )
    nodes, per_node = np.unique(cols.node_ids, return_counts=True)
    multi = nodes[per_node > 1]
    on_multi = np.isin(cols.node_ids, multi)
    tallies = np.bincount(
        cols.class_codes[on_multi], minlength=len(CLASS_CODES)
    )
    return RepeatFailureClassSplit(
        machine=log.machine,
        num_multi_failure_nodes=int(multi.size),
        hardware_failures=int(tallies[CLASS_CODES[FailureClass.HARDWARE]]),
        software_failures=int(tallies[CLASS_CODES[FailureClass.SOFTWARE]]),
        unknown_failures=int(tallies[CLASS_CODES[FailureClass.UNKNOWN]]),
    )


@dataclass(frozen=True)
class GpuSlotDistribution:
    """Figure 5: failure counts per GPU slot within a node.

    Counts weigh each failure by the GPU slots it involved, so a
    simultaneous two-GPU failure contributes to two slots.
    """

    machine: str
    counts: dict[int, int]

    @property
    def total(self) -> int:
        """Total slot involvements."""
        return sum(self.counts.values())

    def share_of(self, slot: int) -> float:
        """Share of involvements landing on one slot."""
        if self.total == 0:
            return 0.0
        return self.counts.get(slot, 0) / self.total

    def relative_to_mean(self, slot: int) -> float:
        """A slot's count relative to the mean slot count (1.0 = even).

        The paper phrases Figure 5(a) this way: on Tsubame-2, "GPU 1
        has experienced ~20% more failures than GPU 0 and GPU 2".
        """
        if not self.counts:
            return 0.0
        mean = self.total / len(self.counts)
        if mean == 0.0:
            return 0.0
        return self.counts.get(slot, 0) / mean

    def imbalance(self) -> float:
        """Max/min slot-count ratio (1.0 means perfectly uniform)."""
        values = [v for v in self.counts.values() if v > 0]
        if not values:
            return 1.0
        low = min(self.counts.values())
        if low == 0:
            return float("inf")
        return max(values) / low


def _reference_gpu_slot_distribution(
    log: FailureLog, gpu_slots: tuple[int, ...]
) -> GpuSlotDistribution:
    """Pure-Python Figure 5, retained for the parity suite."""
    if not gpu_slots:
        raise AnalysisError("gpu_slots must be non-empty")
    valid = set(gpu_slots)
    counts = {slot: 0 for slot in gpu_slots}
    for record in log:
        for slot in record.gpus_involved:
            if slot not in valid:
                raise AnalysisError(
                    f"record {record.record_id} involves GPU slot {slot}, "
                    f"which is not among the node's slots {sorted(valid)}"
                )
            counts[slot] += 1
    return GpuSlotDistribution(machine=log.machine, counts=counts)


def gpu_slot_distribution(
    log: FailureLog, gpu_slots: tuple[int, ...]
) -> GpuSlotDistribution:
    """Compute the Figure 5 per-slot involvement counts.

    Args:
        log: Failure log (any records without recorded GPU involvement
            are ignored — the paper can only attribute failures whose
            slot is known).
        gpu_slots: All slot indices present on a node of this machine,
            so slots with zero failures still appear.

    Raises:
        AnalysisError: If ``gpu_slots`` is empty or a record involves a
            slot outside it.
    """
    if not gpu_slots:
        raise AnalysisError("gpu_slots must be non-empty")
    slots = log.columns.slot_values
    wanted = np.asarray(sorted(set(gpu_slots)), dtype=slots.dtype)
    if slots.size and not np.isin(slots, wanted).all():
        # Rare error path: re-scan per record for the exact message.
        return _reference_gpu_slot_distribution(log, gpu_slots)
    tallies = np.bincount(
        slots, minlength=int(wanted[-1]) + 1 if wanted.size else 0
    )
    counts = {slot: int(tallies[slot]) for slot in gpu_slots}
    return GpuSlotDistribution(machine=log.machine, counts=counts)


@dataclass(frozen=True)
class RackFailureDistribution:
    """Rack-level failure counts.

    The paper's generalizability discussion: failures distribute
    non-uniformly across racks too, which matters for power/cooling
    domains and maintenance routing.
    """

    machine: str
    counts: dict[int, int]
    num_racks: int

    @property
    def total(self) -> int:
        """Total failures across racks."""
        return sum(self.counts.values())

    def count_for(self, rack_id: int) -> int:
        """Failure count of one rack (0 when unaffected)."""
        return self.counts.get(rack_id, 0)

    @property
    def affected_racks(self) -> int:
        """Racks with at least one failure."""
        return len(self.counts)

    def top_racks(self, k: int = 5) -> list[tuple[int, int]]:
        """The k racks with the most failures, as (rack, count)."""
        ranked = sorted(
            self.counts.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:k]

    def concentration(self, top_fraction: float = 0.1) -> float:
        """Share of failures on the top ``top_fraction`` of racks.

        Under a uniform spread this approaches ``top_fraction``; values
        well above it quantify rack-level skew.

        Raises:
            AnalysisError: If the fraction is outside (0, 1].
        """
        if not 0.0 < top_fraction <= 1.0:
            raise AnalysisError(
                f"top_fraction must be in (0, 1], got {top_fraction}"
            )
        if self.total == 0:
            return 0.0
        k = max(1, int(round(top_fraction * self.num_racks)))
        top = sum(count for _, count in self.top_racks(k))
        return top / self.total

    def gini(self) -> float:
        """Gini coefficient of per-rack failure counts (0 = uniform).

        Computed over all racks including zero-failure ones, so empty
        racks raise the coefficient — as they should for a skew
        measure.
        """
        if self.total == 0:
            return 0.0
        values = sorted(
            self.counts.get(rack, 0) for rack in range(self.num_racks)
        )
        n = len(values)
        cumulative = 0.0
        for index, value in enumerate(values, start=1):
            cumulative += index * value
        return (2.0 * cumulative) / (n * self.total) - (n + 1.0) / n


def _reference_rack_failure_distribution(log, layout) -> RackFailureDistribution:
    """Pure-Python rack aggregation, retained for the parity suite."""
    if len(log) == 0:
        raise AnalysisError(
            "rack failure distribution of an empty log is undefined"
        )
    if layout.machine != log.machine:
        raise AnalysisError(
            f"layout is for {layout.machine!r} but log is for "
            f"{log.machine!r}"
        )
    counts = Counter(layout.rack_of(record.node_id) for record in log)
    return RackFailureDistribution(
        machine=log.machine,
        counts=dict(counts),
        num_racks=layout.num_racks,
    )


def rack_failure_distribution(log, layout) -> RackFailureDistribution:
    """Aggregate a log's failures per rack.

    Args:
        log: Failure log.
        layout: A :class:`repro.machines.racks.RackLayout` for the
            log's machine.

    Raises:
        AnalysisError: If the log is empty or machines mismatch.
    """
    if len(log) == 0:
        raise AnalysisError(
            "rack failure distribution of an empty log is undefined"
        )
    if layout.machine != log.machine:
        raise AnalysisError(
            f"layout is for {layout.machine!r} but log is for "
            f"{log.machine!r}"
        )
    # One rack lookup per affected node instead of one per record.
    nodes, per_node = np.unique(log.columns.node_ids, return_counts=True)
    counts: dict[int, int] = {}
    for node, count in zip(nodes.tolist(), per_node.tolist()):
        rack = layout.rack_of(node)
        counts[rack] = counts.get(rack, 0) + count
    return RackFailureDistribution(
        machine=log.machine,
        counts=dict(counts),
        num_racks=layout.num_racks,
    )
