"""Persistent warm worker pool shared by every sweep in the process.

The old ``repro.parallel`` created a fresh
:class:`~concurrent.futures.ProcessPoolExecutor` per ``sweep`` call
and tore it down afterwards.  Interpreter start + module imports cost
hundreds of milliseconds per worker, so at realistic task sizes the
pool setup dominated and ``BENCH_sim.json`` recorded parallel
ensembles at **0.89x** — paying for parallelism and receiving a
slowdown.

This module keeps **one** pool alive for the process lifetime:

* :func:`get_pool` returns the module singleton, creating it on first
  use and *growing* it (never shrinking) when a caller asks for more
  workers than it currently has.  Amortised over a session — a sweep
  of sweeps, a long-lived ``repro.serve`` process — the fork/spawn
  cost is paid once.
* **Fork safety**: the singleton records its creating PID.  A process
  that ``fork()``\\ s inherits the parent's executor state (queues,
  management thread) in an unusable form; the first ``get_pool`` in
  the child detects the PID change and builds a fresh pool instead of
  touching the inherited wreck.
* **Crash respawn**: when a sweep observes
  :class:`~concurrent.futures.process.BrokenProcessPool` it calls
  :meth:`WorkerPool.notify_broken` with the generation it was using.
  The first notifier swaps in a fresh executor (generation + 1);
  concurrent sweeps that saw the same break become no-ops.  The
  *sweep-level* recovery contract is unchanged from before — the
  notifying sweep still re-runs its unfinished chunks serially in the
  parent — the respawn just restores warm parallelism for the *next*
  call instead of leaving a corpse.
* **Thread safety**: ``repro.serve`` drains micro-batches from
  executor threads, so several sweeps may share the pool
  concurrently.  ``ProcessPoolExecutor.submit`` is thread-safe; the
  singleton and generation bookkeeping here are guarded by locks.

:func:`shutdown_pool` tears the singleton down explicitly (tests, CLI
``KeyboardInterrupt`` handling — the workers must not outlive an
interrupted parent, and exit code 130 must not be delayed by a pool
join).  It is also registered ``atexit`` so normal interpreter exit
reaps the workers.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable

__all__ = [
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
    "pool_stats",
]


class WorkerPool:
    """One process-lifetime executor with growth and crash respawn.

    Not constructed directly in normal use — :func:`get_pool` owns the
    singleton.  Direct construction is for tests that need an isolated
    pool.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.created_pid = os.getpid()
        self._lock = threading.Lock()
        self._max_workers = max_workers
        self._executor: ProcessPoolExecutor | None = (
            ProcessPoolExecutor(max_workers=max_workers)
        )
        self._spawns = 1  # executor cold starts paid so far
        self._generation = 1

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def generation(self) -> int:
        """Increments every respawn/regrow; snapshot it with
        :meth:`executor` and hand it back to :meth:`notify_broken`."""
        return self._generation

    @property
    def closed(self) -> bool:
        return self._executor is None

    def executor(self) -> tuple[ProcessPoolExecutor, int]:
        """Current executor plus its generation tag.

        Raises:
            RuntimeError: If the pool was shut down.
        """
        with self._lock:
            if self._executor is None:
                raise RuntimeError("worker pool is shut down")
            return self._executor, self._generation

    def submit(
        self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any
    ) -> Future:
        """Submit one task to the current executor (thread-safe)."""
        executor, _generation = self.executor()
        return executor.submit(fn, *args, **kwargs)

    def grow(self, max_workers: int) -> None:
        """Replace the executor with a larger one; no-op if already
        at least ``max_workers`` wide.

        The old executor is shut down without cancelling: futures
        other threads already hold keep running to completion on the
        old workers while new submissions land on the wide pool.
        """
        with self._lock:
            if self._executor is None:
                raise RuntimeError("worker pool is shut down")
            if max_workers <= self._max_workers:
                return
            old = self._executor
            self._executor = ProcessPoolExecutor(max_workers=max_workers)
            self._max_workers = max_workers
            self._spawns += 1
            self._generation += 1
        old.shutdown(wait=False)

    def notify_broken(self, generation: int) -> None:
        """Respawn after a sweep saw ``BrokenProcessPool`` on
        ``generation``.

        Only the first notifier for a generation respawns; later ones
        (other threads sharing the same broken executor) find the
        generation already advanced and return.  A stale notification
        after an explicit shutdown does nothing.
        """
        with self._lock:
            if self._executor is None or generation != self._generation:
                return
            old = self._executor
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers
            )
            self._spawns += 1
            self._generation += 1
        old.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Reap the workers; idempotent.

        Does not wait for in-flight tasks (callers abandoning a pool
        mid-sweep — SIGINT — must not block on stragglers) but does
        cancel everything still queued.
        """
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def stats(self) -> dict[str, Any]:
        """Counters for benchmarks and tests."""
        with self._lock:
            return {
                "max_workers": self._max_workers,
                "spawns": self._spawns,
                "generation": self._generation,
                "created_pid": self.created_pid,
                "alive": self._executor is not None,
            }


_singleton: WorkerPool | None = None
_singleton_lock = threading.Lock()


def get_pool(processes: int) -> WorkerPool:
    """The process-wide warm pool, at least ``processes`` wide.

    First call pays the spawn; later calls reuse (growing if asked
    for more workers than the pool has).  After a ``fork()`` the
    child gets its own fresh pool — the parent's executor does not
    survive forking.
    """
    global _singleton
    with _singleton_lock:
        pool = _singleton
        if pool is not None and (
            pool.closed or pool.created_pid != os.getpid()
        ):
            # Closed explicitly, or inherited across fork().  An
            # inherited executor's management thread and pipes do not
            # exist in this process; abandon the handle untouched.
            pool = None
        if pool is None:
            pool = WorkerPool(processes)
            _singleton = pool
        elif processes > pool.max_workers:
            pool.grow(processes)
        return pool


def shutdown_pool() -> None:
    """Shut down the singleton (if any); idempotent.

    Used by the CLI's ``KeyboardInterrupt`` path (workers must die
    with the interrupted parent, preserving exit code 130), by tests
    that need a cold pool, and ``atexit``.
    """
    global _singleton
    with _singleton_lock:
        pool, _singleton = _singleton, None
    if pool is not None and pool.created_pid == os.getpid():
        pool.shutdown()


def pool_stats() -> dict[str, Any] | None:
    """Stats of the live singleton, or None when no pool exists."""
    with _singleton_lock:
        pool = _singleton
    if pool is None or pool.created_pid != os.getpid():
        return None
    return pool.stats()


atexit.register(shutdown_pool)
