"""Deterministic, fault-tolerant parallel execution substrate.

Monte-Carlo replication (many seeds through the same pipeline) and
grid sweeps (many configurations over the same log) are embarrassingly
parallel, but naive parallelism breaks two guarantees this repo cares
about: result *determinism* (the output must not depend on worker
scheduling) and *parity* (the parallel path must return exactly what
the serial loop returns, in the same order).  And naive process pools
break a third thing — the *speedup itself*: pool startup and
per-task pickling of columnar data made ``--workers 4`` a 0.89x
"slowdown" before this package existed.

The package splits the substrate into four layers:

* :mod:`repro.parallel.outcomes` — outcome/error types, worker-count
  policy (``REPRO_WORKERS``, CPU affinity), retry-bounded item runner.
* :mod:`repro.parallel.pool` — the process-lifetime warm worker pool
  (singleton, fork-safe, crash-respawning) that amortises
  fork + import startup across every sweep in the process.
* :mod:`repro.parallel.shm` — zero-copy handoff of large sweep-wide
  payloads (``FailureLog`` columns, ``ColumnarView`` arrays) over
  ``multiprocessing.shared_memory``, pickle fallback for everything
  else.
* :mod:`repro.parallel.sweeps` — :func:`sweep` / :func:`sweep_iter`:
  input-ordered, fault-tolerant dispatch with probe-autotuned
  work-stealing chunking.

Public API is unchanged from the old ``repro.parallel`` module —
``sweep(fn, seeds, processes=...)`` is still bit-identical to
``[fn(s) for s in seeds]`` — plus the pool controls and shm types for
callers that want them.  ``fn`` must be picklable (a module-level
function or a picklable callable object, not a lambda or closure)
whenever ``processes > 1``.
"""

from repro.parallel.outcomes import (
    SweepItemError,
    SweepOutcome,
    available_cpus,
    default_processes,
)
from repro.parallel.pool import (
    WorkerPool,
    get_pool,
    pool_stats,
    shutdown_pool,
)
from repro.parallel.shm import SharedPayload, ShmColumnBlock
from repro.parallel.sweeps import sweep, sweep_iter

__all__ = [
    "sweep",
    "sweep_iter",
    "default_processes",
    "available_cpus",
    "SweepOutcome",
    "SweepItemError",
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
    "pool_stats",
    "ShmColumnBlock",
    "SharedPayload",
]
