"""Zero-copy payload handoff over ``multiprocessing.shared_memory``.

A process-pool task pays for its *payload*: every argument pickles in
the parent, travels a pipe, and unpickles in the worker — per task.
For sweeps whose items share one large read-mostly object (a
:class:`~repro.core.records.FailureLog` scored under many
configurations, a :class:`~repro.core.columns.ColumnarView` fed to
many kernels), that cost is O(dataset bytes) *per task* and is exactly
what made parallel sweeps a slowdown at realistic sizes
(``BENCH_core.json`` 0.93x, ``BENCH_sim.json`` 0.89x before this
module existed).

Two layers fix it:

* :class:`ShmColumnBlock` — the NumPy transport.  ``export`` copies a
  set of named arrays into one shared-memory segment *once*;
  ``attach`` reconstructs them in a worker as **views over the shared
  pages** (read-only, no copy, no pickle of the data).  The picklable
  :class:`ShmBlockHandle` is a few hundred bytes of dtype/shape/offset
  metadata regardless of array size.

* :class:`SharedPayload` — the object protocol used by
  ``sweep(..., shared=obj)``.  The parent exports ``obj`` once; each
  dispatched chunk carries only a :class:`SharedSpec` token, and each
  worker materialises the object once per process (cached by token)
  and reuses it for every subsequent task of the sweep — and of later
  sweeps sharing the same payload.  Export strategy by type:

  - ``ColumnarView`` → pure shm views (true zero-copy).
  - ``FailureLog`` → the compact record pickle rides shm (unpickled
    once per worker), and the log's columnar view is exported as shm
    views and *injected* into the reconstructed log's cache, so every
    vectorized kernel in the worker reads the parent's arrays.
  - anything else → its pickle bytes ride shm (the documented
    fallback for non-columnar payloads; still one unpickle per
    worker instead of one per task).

Every strategy preserves bit-parity with handing the object itself to
``fn`` — the shm test suite asserts it.

Lifetime: the parent owns the segments and unlinks them when the
sweep finishes (``SharedPayload.close``).  POSIX keeps the pages
alive for workers that still map them, so a long-lived warm pool can
finish in-flight chunks safely; worker-side attachments are dropped
LRU once a handful of distinct payloads have been seen.
"""

from __future__ import annotations

import pickle
import uuid
from dataclasses import dataclass, fields
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.errors import SweepError

__all__ = [
    "ShmArraySpec",
    "ShmBlockHandle",
    "ShmColumnBlock",
    "SharedSpec",
    "SharedPayload",
    "resolve_shared",
]

#: Byte alignment of each array inside a block (cache-line friendly).
_ALIGN = 64

#: Distinct shared payloads a worker keeps attached before dropping
#: the least recently used one.
_WORKER_CACHE_CAP = 4


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting ownership.

    ``SharedMemory(name=...)`` registers the segment with this
    process's resource tracker (fixed by ``track=False`` in 3.13),
    which would unlink the parent's segment when *this* process exits.
    Attachers must never unlink — deregister on the older runtimes.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        segment = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        return segment


@dataclass(frozen=True)
class ShmArraySpec:
    """Location of one array inside a shared block."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ShmBlockHandle:
    """Picklable description of an exported block: O(metadata) bytes.

    ``meta`` carries small picklable scalars alongside the arrays
    (e.g. a view's machine name and category table).
    """

    segment: str
    size: int
    arrays: tuple[ShmArraySpec, ...]
    meta: dict[str, Any]


class ShmColumnBlock:
    """One shared-memory segment holding named NumPy arrays.

    Owner side: :meth:`export` copies the arrays in and returns the
    owning block; :attr:`handle` is the picklable pointer to ship to
    workers; :meth:`close` unmaps and unlinks.  Worker side:
    :meth:`attach` maps the segment and rebuilds read-only views.

    Lifetime caveat: the views returned by :meth:`array` /
    :meth:`arrays` are valid only while this block object is alive
    and unclosed.  ``SharedMemory``'s finalizer unmaps the segment
    even under live NumPy views (their base chain ends at the raw
    ``mmap`` and does not pin the wrapper), so consumers must keep a
    reference to the block alongside the arrays —
    :func:`view_from_handle` pins it on the rebuilt view for exactly
    this reason.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        handle: ShmBlockHandle,
        owner: bool,
    ) -> None:
        self._segment = segment
        self.handle = handle
        self._owner = owner
        self._closed = False

    @classmethod
    def export(
        cls,
        arrays: dict[str, np.ndarray],
        meta: dict[str, Any] | None = None,
    ) -> "ShmColumnBlock":
        """Copy ``arrays`` into a fresh shared segment (the one copy).

        Raises:
            SweepError: If the segment cannot be allocated.
        """
        specs: list[ShmArraySpec] = []
        offset = 0
        prepared: dict[str, np.ndarray] = {}
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            prepared[key] = array
            offset = _aligned(offset)
            specs.append(
                ShmArraySpec(
                    key=key,
                    dtype=array.dtype.str,
                    shape=tuple(array.shape),
                    offset=offset,
                )
            )
            offset += array.nbytes
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, offset)
            )
        except OSError as error:  # pragma: no cover - shm exhausted
            raise SweepError(
                f"could not allocate {offset} shared-memory bytes: "
                f"{error}"
            ) from error
        for spec in specs:
            source = prepared[spec.key]
            if source.nbytes == 0:
                continue
            view = np.ndarray(
                spec.shape,
                dtype=spec.dtype,
                buffer=segment.buf,
                offset=spec.offset,
            )
            view[...] = source
        handle = ShmBlockHandle(
            segment=segment.name,
            size=max(1, offset),
            arrays=tuple(specs),
            meta=dict(meta or {}),
        )
        return cls(segment, handle, owner=True)

    @classmethod
    def attach(cls, handle: ShmBlockHandle) -> "ShmColumnBlock":
        """Map an exported block (no copy; arrays view shared pages)."""
        return cls(_attach_segment(handle.segment), handle, owner=False)

    def array(self, key: str) -> np.ndarray:
        """Read-only view of one array in the block.

        Raises:
            KeyError: If ``key`` was not exported.
        """
        for spec in self.handle.arrays:
            if spec.key == key:
                view = np.ndarray(
                    spec.shape,
                    dtype=spec.dtype,
                    buffer=self._segment.buf,
                    offset=spec.offset,
                )
                view.setflags(write=False)
                return view
        raise KeyError(key)

    def arrays(self) -> dict[str, np.ndarray]:
        """Read-only views of every array, keyed as exported."""
        return {
            spec.key: self.array(spec.key)
            for spec in self.handle.arrays
        }

    def close(self) -> None:
        """Unmap the segment; the owner also unlinks it.

        POSIX semantics: an unlinked segment stays alive until the
        last process unmaps it, so workers holding views are safe.
        Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - live exported views
            # Views into the buffer are still alive in this process;
            # the mapping will drop when they are garbage collected.
            return
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShmColumnBlock":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# --------------------------------------------------------------------------
# ColumnarView transport
# --------------------------------------------------------------------------

def export_view(view: Any) -> ShmColumnBlock:
    """Export a :class:`~repro.core.columns.ColumnarView`'s arrays.

    The scalar fields (machine, category table, taxonomy flag) ride
    the handle's ``meta``; every ndarray field rides the segment.
    """
    arrays: dict[str, np.ndarray] = {}
    meta: dict[str, Any] = {"__kind__": "columnar_view"}
    for field in fields(view):
        value = getattr(view, field.name)
        if isinstance(value, np.ndarray):
            arrays[field.name] = value
        else:
            meta[field.name] = value
    return ShmColumnBlock.export(arrays, meta)


def view_from_handle(handle: ShmBlockHandle) -> Any:
    """Rebuild a ColumnarView over an exported block's shared pages.

    The returned view's arrays are read-only views into the segment —
    no bytes are copied.  The attached block is pinned on the view
    itself: ``SharedMemory.__del__`` unmaps the segment even while
    NumPy views into it exist (the views' base chain ends at the raw
    ``mmap``, which does not protect against the wrapper's
    finalizer), so the view must own the wrapper for as long as it
    lives.

    Raises:
        SweepError: If the handle was not exported from a view.
    """
    from repro.core.columns import ColumnarView

    meta = dict(handle.meta)
    if meta.pop("__kind__", None) != "columnar_view":
        raise SweepError(
            "shared-memory handle does not describe a ColumnarView"
        )
    block = ShmColumnBlock.attach(handle)
    view = ColumnarView(**meta, **block.arrays())
    object.__setattr__(view, "_shm_block", block)
    return view


# --------------------------------------------------------------------------
# SharedPayload: the sweep(shared=...) protocol
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SharedSpec:
    """What a chunk actually carries for its shared payload.

    Tiny and picklable: a cache token plus the shm handles needed to
    materialise the payload once per worker.
    """

    token: str
    kind: str  # "view" | "log" | "pickle"
    block: ShmBlockHandle
    columns: ShmBlockHandle | None = None


class SharedPayload:
    """Parent-side registration of one sweep-wide shared object.

    Built by :func:`repro.parallel.sweep` when ``shared=`` is passed;
    owns the shm segments until :meth:`close`.
    """

    def __init__(self, value: Any) -> None:
        self.value = value
        self._blocks: list[ShmColumnBlock] = []
        self.spec = self._export(value)

    def _export(self, value: Any) -> SharedSpec:
        from repro.core.columns import ColumnarView
        from repro.core.records import FailureLog

        token = uuid.uuid4().hex
        if isinstance(value, ColumnarView):
            block = export_view(value)
            self._blocks.append(block)
            return SharedSpec(
                token=token, kind="view", block=block.handle
            )
        if isinstance(value, FailureLog):
            columns = export_view(value.columns)
            self._blocks.append(columns)
            body = ShmColumnBlock.export(
                {"pickle": _pickle_array(value)},
                {"__kind__": "pickle"},
            )
            self._blocks.append(body)
            return SharedSpec(
                token=token,
                kind="log",
                block=body.handle,
                columns=columns.handle,
            )
        body = ShmColumnBlock.export(
            {"pickle": _pickle_array(value)}, {"__kind__": "pickle"}
        )
        self._blocks.append(body)
        return SharedSpec(token=token, kind="pickle", block=body.handle)

    def spec_nbytes(self) -> int:
        """Serialized per-chunk cost of referencing this payload."""
        return len(pickle.dumps(self.spec))

    def close(self) -> None:
        """Unlink the owned segments (workers' mappings stay valid)."""
        for block in self._blocks:
            block.close()
        self._blocks = []

    def __enter__(self) -> "SharedPayload":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _pickle_array(value: Any) -> np.ndarray:
    return np.frombuffer(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
        dtype=np.uint8,
    )


def _unpickle_block(handle: ShmBlockHandle) -> Any:
    block = ShmColumnBlock.attach(handle)
    try:
        # bytes() copies out of the segment before unpickling, so the
        # materialised object never aliases pages the parent unlinks.
        return pickle.loads(bytes(block.array("pickle")))
    finally:
        block.close()


#: token -> materialised payload, insertion-ordered for LRU eviction.
_worker_cache: dict[str, Any] = {}


def resolve_shared(spec: SharedSpec) -> Any:
    """Materialise a shared payload in this process, once per token.

    Called by the chunk runner inside pool workers (and by the
    parent's serial-recovery path when a pool breaks, where the cache
    simply fills from the local copy of the segments).
    """
    cached = _worker_cache.get(spec.token)
    if cached is not None:
        return cached
    if spec.kind == "view":
        value = view_from_handle(spec.block)
    elif spec.kind == "log":
        value = _unpickle_block(spec.block)
        assert spec.columns is not None
        view = view_from_handle(spec.columns)
        # Inject the zero-copy view into the log's derived cache so
        # every columnar kernel in this worker reads the parent's
        # arrays instead of rebuilding them from records.
        object.__setattr__(value, "_derived_cache", {"columns": view})
    elif spec.kind == "pickle":
        value = _unpickle_block(spec.block)
    else:
        raise SweepError(f"unknown shared payload kind {spec.kind!r}")
    while len(_worker_cache) >= _WORKER_CACHE_CAP:
        _worker_cache.pop(next(iter(_worker_cache)))
    _worker_cache[spec.token] = value
    return value
