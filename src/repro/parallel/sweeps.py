"""Deterministic, fault-tolerant sweeps on the warm worker pool.

:func:`sweep` / :func:`sweep_iter` keep the contracts the repo has
always had — input-ordered results bit-identical to the serial loop,
attributed failures, bounded retries, crash recovery — and add the
three mechanisms that make ``processes > 1`` actually pay:

* **Warm pool** (:mod:`repro.parallel.pool`): dispatch goes to the
  process-lifetime singleton instead of a per-call executor, so the
  fork + import cost is paid once per process, not once per sweep.

* **Zero-copy shared payload** (:mod:`repro.parallel.shm`): a sweep
  whose items all reference one large object passes it once as
  ``shared=obj``; ``fn`` is then called as ``fn(item, obj)``.  In
  parallel runs the object travels via shared memory and each chunk
  carries an O(metadata) token; serially the very same object is
  handed to ``fn`` directly.  Either way ``fn`` sees an equal object,
  preserving parity.

* **Work-stealing dispatch with autotuned chunking**: items are split
  into many small chunks on the executor's shared call queue, so a
  worker that drew a fast chunk immediately steals the next instead
  of idling behind a slow sibling.  Chunk size is picked by a probe
  phase: the first ``processes`` items are dispatched as single-item
  probes (keeping every worker busy from the first microsecond), the
  time to the first completion estimates per-item cost, and the
  remaining items are chunked to target ``REPRO_CHUNK_TARGET_MS``
  (default 20 ms) of work per chunk — long items degrade to per-item
  dispatch (maximal stealing), micro-items batch up (minimal
  overhead).  An explicit ``chunksize=`` bypasses the autotuner.

Failure semantics are unchanged: worker exceptions come back
attributed (:class:`SweepItemError` / per-item
:class:`SweepOutcome`); a worker process dying mid-sweep
(``BrokenProcessPool``) keeps finished chunks, re-runs unfinished
ones serially in the parent, and respawns the warm pool for the next
caller.  ``KeyboardInterrupt`` during a sweep shuts the pool down
before propagating, so an interrupted CLI exits 130 without waiting
on orphaned workers.
"""

from __future__ import annotations

import math
import os
import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, TypeVar

from repro.parallel.outcomes import (
    SweepOutcome,
    attempt_item,
    finalize,
    picklable_error,
    validate_sweep_args,
)
from repro.parallel.pool import get_pool, shutdown_pool
from repro.parallel.shm import SharedPayload, SharedSpec, resolve_shared

__all__ = ["sweep", "sweep_iter"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

#: Work per autotuned chunk; raise to shave dispatch overhead on
#: homogeneous loads, lower for better stealing on lumpy ones.
_DEFAULT_CHUNK_TARGET_MS = 20.0

#: Autotuned chunks per worker, floor — keeps enough chunks in the
#: queue that uneven lengths can be stolen around.
_CHUNKS_PER_WORKER = 4

_Triple = tuple[Any, BaseException | None, int]


def _chunk_target_seconds() -> float:
    raw = os.environ.get("REPRO_CHUNK_TARGET_MS", "").strip()
    if raw:
        try:
            millis = float(raw)
            if millis > 0:
                return millis / 1000.0
        except ValueError:
            pass
    return _DEFAULT_CHUNK_TARGET_MS / 1000.0


def _run_chunk(
    fn: Callable[..., Any],
    chunk: Sequence[Any],
    retries: int,
    backoff_seconds: float,
    spec: SharedSpec | None = None,
) -> list[_Triple]:
    """Worker entry point: run a chunk, capturing per-item failures.

    With ``spec`` the shared payload is materialised (from cache after
    the first chunk in this worker) and passed to ``fn`` as its second
    argument.
    """
    shared: Any = None
    has_shared = spec is not None
    if has_shared:
        try:
            shared = resolve_shared(spec)
        except Exception as exc:
            error = picklable_error(exc)
            return [(None, error, 1)] * len(chunk)
    out = []
    for item in chunk:
        result, error, attempts = attempt_item(
            fn, item, retries, backoff_seconds, shared, has_shared
        )
        if error is not None:
            error = picklable_error(error)
        out.append((result, error, attempts))
    return out


def _run_chunk_local(
    fn: Callable[..., Any],
    chunk: Sequence[Any],
    retries: int,
    backoff_seconds: float,
    shared: Any,
    has_shared: bool,
) -> list[_Triple]:
    """Parent-side chunk runner for broken-pool recovery."""
    out = []
    for item in chunk:
        result, error, attempts = attempt_item(
            fn, item, retries, backoff_seconds, shared, has_shared
        )
        if error is not None:
            error = picklable_error(error)
        out.append((result, error, attempts))
    return out


def _submit(
    executor: Any,
    fn: Callable[..., Any],
    chunk: Sequence[Any],
    retries: int,
    backoff_seconds: float,
    spec: SharedSpec | None,
) -> Future | None:
    """Submit one chunk; ``None`` when the executor was swapped out
    underneath us (another thread respawned/grew the pool) — the
    harvest loop runs such chunks serially."""
    try:
        return executor.submit(
            _run_chunk, fn, chunk, retries, backoff_seconds, spec
        )
    except RuntimeError:
        return None


def _plan_and_submit(
    executor: Any,
    fn: Callable[..., Any],
    items: Sequence[Any],
    processes: int,
    chunksize: int | None,
    retries: int,
    backoff_seconds: float,
    spec: SharedSpec | None,
) -> list[tuple[Sequence[Any], Future | None]]:
    """Chunk ``items`` and submit every chunk, in input order.

    With an explicit ``chunksize`` the split is fixed.  Otherwise the
    first ``min(processes, n)`` items go out immediately as
    single-item probe chunks; the first probe to finish calibrates
    the per-item cost and the tail is chunked to the time target —
    small enough that ``_CHUNKS_PER_WORKER`` chunks per worker stay
    available for stealing, large enough to amortise dispatch.
    """
    entries: list[tuple[Sequence[Any], Future | None]] = []
    if chunksize is not None:
        for start in range(0, len(items), chunksize):
            chunk = items[start:start + chunksize]
            entries.append(
                (
                    chunk,
                    _submit(
                        executor, fn, chunk, retries,
                        backoff_seconds, spec,
                    ),
                )
            )
        return entries

    probe_count = min(processes, len(items))
    probe_started = time.perf_counter()
    for index in range(probe_count):
        chunk = items[index:index + 1]
        entries.append(
            (
                chunk,
                _submit(
                    executor, fn, chunk, retries, backoff_seconds, spec
                ),
            )
        )
    remaining = len(items) - probe_count
    if remaining == 0:
        return entries

    per_item: float | None = None
    probe_futures = [f for (_, f) in entries if f is not None]
    if probe_futures:
        done, _pending = wait(
            probe_futures, return_when=FIRST_COMPLETED
        )
        if any(f.exception() is None for f in done):
            per_item = max(
                time.perf_counter() - probe_started, 1e-6
            )

    stealing_cap = max(
        1, math.ceil(remaining / (processes * _CHUNKS_PER_WORKER))
    )
    if per_item is None:
        # Probes all failed (e.g. the pool just broke): skip tuning,
        # keep the stealing floor, and let harvest-side recovery deal
        # with the failures.
        size = stealing_cap
    else:
        size = max(
            1,
            min(int(_chunk_target_seconds() / per_item), stealing_cap),
        )
    for start in range(probe_count, len(items), size):
        chunk = items[start:start + size]
        entries.append(
            (
                chunk,
                _submit(
                    executor, fn, chunk, retries, backoff_seconds, spec
                ),
            )
        )
    return entries


def sweep(
    fn: Callable[..., _ResultT],
    seeds: Iterable[_ItemT],
    processes: int | None = None,
    chunksize: int | None = None,
    return_errors: bool = False,
    retries: int = 0,
    backoff_seconds: float = 0.0,
    shared: Any = None,
) -> list[_ResultT] | list[SweepOutcome]:
    """Apply ``fn`` to every seed, optionally across processes.

    Args:
        fn: Pure function of one item — or of ``(item, shared)`` when
            ``shared`` is passed.  Must be picklable (defined at
            module level) when ``processes > 1``.
        seeds: Work items — RNG seeds for Monte-Carlo replication, or
            any other per-run parameter objects.
        processes: ``None`` or ``1`` runs the serial loop in-process;
            ``N > 1`` dispatches to the process-wide warm pool (grown
            to at least N workers).  Worker scheduling never affects
            results: the merge is seed-ordered.
        chunksize: Items per dispatched task; default autotunes from
            a probe of the first items (see module docs).
        return_errors: When True, return one :class:`SweepOutcome` per
            item (in seed order) instead of raw results; failures are
            captured per item rather than raised, so every healthy
            seed still yields its result.
        retries: Re-run an item that raised up to this many extra
            times before recording/raising the failure.
        backoff_seconds: Base of the exponential backoff slept between
            retry attempts (``backoff * 2**attempt``); 0 retries
            immediately.
        shared: One sweep-wide read-only object handed to every call
            as ``fn(item, shared)``.  Parallel runs ship it through
            shared memory once (zero-copy for columnar data) instead
            of pickling it into every task; serial runs pass the
            object through untouched.

    Returns:
        ``[fn(s) for s in seeds]`` — same values, same order,
        regardless of ``processes`` — or a list of
        :class:`SweepOutcome` when ``return_errors`` is True.

    Raises:
        ValidationError: On a non-positive ``processes``/``chunksize``
            or a negative ``retries``/``backoff_seconds``.
        SweepItemError: When an item fails (after retries) and
            ``return_errors`` is False.  The error names the item index
            and repr and chains the worker exception as ``__cause__``.
    """
    validate_sweep_args(processes, chunksize, retries, backoff_seconds)
    items: Sequence[_ItemT] = list(seeds)
    if not items:
        return []
    has_shared = shared is not None
    if processes is None or processes == 1 or len(items) == 1:
        raw = [
            attempt_item(
                fn, item, retries, backoff_seconds, shared, has_shared
            )
            for item in items
        ]
        return finalize(items, raw, return_errors)

    pool = get_pool(processes)
    executor, generation = pool.executor()
    payload = SharedPayload(shared) if has_shared else None
    spec = payload.spec if payload is not None else None
    try:
        entries = _plan_and_submit(
            executor, fn, items, processes, chunksize,
            retries, backoff_seconds, spec,
        )
        chunk_results: list[list[_Triple] | None] = [None] * len(entries)
        pool_broken = False
        try:
            for position, (chunk, future) in enumerate(entries):
                if future is None:
                    pool_broken = True
                    continue
                try:
                    chunk_results[position] = future.result()
                except BrokenProcessPool:
                    # A worker died (crash/OOM/_exit).  Futures the
                    # pool never ran fail the same way instantly; keep
                    # harvesting so chunks that did finish are not
                    # re-run, and re-dispatch the rest below.
                    pool_broken = True
        except KeyboardInterrupt:
            # Workers must not outlive an interrupted parent; the
            # CLI's exit-130 contract depends on not blocking here.
            shutdown_pool()
            raise
        if pool_broken:
            # Respawn the warm pool for the next caller, then keep
            # this sweep's old contract: completed chunks are kept,
            # only unfinished ones re-run, in the parent process, so
            # hours of finished work survive a single worker crash.
            pool.notify_broken(generation)
            for position, (chunk, _future) in enumerate(entries):
                if chunk_results[position] is None:
                    chunk_results[position] = _run_chunk_local(
                        fn, chunk, retries, backoff_seconds,
                        shared, has_shared,
                    )
        raw = [
            triple
            for chunk in chunk_results
            if chunk is not None
            for triple in chunk
        ]
    finally:
        if payload is not None:
            payload.close()
    return finalize(items, raw, return_errors)


def sweep_iter(
    fn: Callable[..., _ResultT],
    seeds: Iterable[_ItemT],
    processes: int | None = None,
    chunksize: int | None = None,
    retries: int = 0,
    backoff_seconds: float = 0.0,
    shared: Any = None,
) -> Iterator[SweepOutcome]:
    """Stream :class:`SweepOutcome`s in input order as they finish.

    The generator twin of ``sweep(..., return_errors=True)``: same
    dispatch (warm pool, autotuned work-stealing chunks, shared
    payload), same fault tolerance, same input-ordered parity
    guarantee — but outcomes are yielded chunk by chunk instead of
    materialised, so a consumer folding a large replication ensemble
    into online statistics holds one chunk of results at a time, not
    all of them.  Later chunks keep computing in the pool while
    earlier ones are consumed; abandoning the generator early cancels
    what has not started while the pool itself stays warm for the
    next sweep.

    Args and failure semantics match :func:`sweep` with
    ``return_errors=True`` (failures are captured per item, never
    raised; a dead worker re-runs unfinished chunks in-process and
    respawns the pool).

    Raises:
        ValidationError: On the same invalid arguments as
            :func:`sweep`.
    """
    validate_sweep_args(processes, chunksize, retries, backoff_seconds)
    items: Sequence[_ItemT] = list(seeds)
    if not items:
        return
    has_shared = shared is not None
    if processes is None or processes == 1 or len(items) == 1:
        for index, item in enumerate(items):
            result, error, attempts = attempt_item(
                fn, item, retries, backoff_seconds, shared, has_shared
            )
            yield SweepOutcome(
                index=index,
                item=item,
                result=result,
                error=error,
                attempts=attempts,
            )
        return

    pool = get_pool(processes)
    executor, generation = pool.executor()
    payload = SharedPayload(shared) if has_shared else None
    spec = payload.spec if payload is not None else None
    entries: list[tuple[Sequence[Any], Future | None]] = []
    try:
        try:
            entries = _plan_and_submit(
                executor, fn, items, processes, chunksize,
                retries, backoff_seconds, spec,
            )
            start = 0
            notified_broken = False
            for chunk, future in entries:
                triples: list[_Triple]
                if future is None:
                    triples = _run_chunk_local(
                        fn, chunk, retries, backoff_seconds,
                        shared, has_shared,
                    )
                else:
                    try:
                        triples = future.result()
                    except BrokenProcessPool:
                        # Same recovery as sweep(), per chunk: a dead
                        # worker re-runs this chunk in-process; chunks
                        # already yielded are untouched and later
                        # chunks get the same treatment when their
                        # futures surface the break.
                        if not notified_broken:
                            pool.notify_broken(generation)
                            notified_broken = True
                        triples = _run_chunk_local(
                            fn, chunk, retries, backoff_seconds,
                            shared, has_shared,
                        )
                for offset, (item, (result, error, attempts)) in (
                    enumerate(zip(chunk, triples))
                ):
                    yield SweepOutcome(
                        index=start + offset,
                        item=item,
                        result=result,
                        error=error,
                        attempts=attempts,
                    )
                start += len(chunk)
        except KeyboardInterrupt:
            shutdown_pool()
            raise
    finally:
        # Normal exit, close(), or an exception: drop what has not
        # started.  Cancelling is cheap and idempotent; chunks already
        # running finish in the (still warm) pool and are discarded.
        for _chunk, future in entries:
            if future is not None:
                future.cancel()
        if payload is not None:
            payload.close()
