"""Sweep outcome types, error attribution, and worker-count policy.

The small, dependency-free substrate underneath :mod:`repro.parallel`:
per-item outcome records (:class:`SweepOutcome`), attributed failures
(:class:`SweepItemError`), the retry-bounded single-item runner used by
both the serial loop and the pool workers, and the policy for how many
worker processes "parallel" means on this host.
"""

from __future__ import annotations

import os
import pickle
import time as _time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.errors import SweepError, ValidationError

__all__ = [
    "SweepOutcome",
    "SweepItemError",
    "available_cpus",
    "default_processes",
]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


class SweepItemError(SweepError):
    """One sweep item failed (after any retries).

    Attributes:
        index: Position of the failing item in the input sequence.
        item: The failing item itself.
        attempts: How many times the item was attempted.
        cause: The exception the item raised (also chained as
            ``__cause__`` when this error is raised).
    """

    def __init__(
        self, index: int, item: Any, attempts: int, cause: BaseException
    ) -> None:
        self.index = index
        self.item = item
        self.attempts = attempts
        self.cause = cause
        attempt_text = (
            f" after {attempts} attempts" if attempts > 1 else ""
        )
        super().__init__(
            f"sweep item {index} ({item!r}) failed{attempt_text}: "
            f"{type(cause).__name__}: {cause}"
        )

    def __reduce__(self):
        # The default exception reduce replays __init__ with ``args``
        # (the formatted message), which does not match this
        # constructor — unpickling would raise a secondary TypeError
        # and the attributed failure would degrade to a repr stand-in.
        # Reconstruct from the real constructor arguments instead, so
        # a SweepItemError raised *inside* a worker (e.g. a nested
        # sweep) survives the trip back to the parent typed.
        return (
            type(self),
            (self.index, self.item, self.attempts, self.cause),
        )


@dataclass(frozen=True)
class SweepOutcome:
    """Result of one sweep item under ``return_errors=True``.

    Exactly one of :attr:`result` / :attr:`error` is meaningful; check
    :attr:`ok` (or call :meth:`unwrap`) before touching :attr:`result`.
    """

    index: int
    item: Any
    result: Any = None
    error: BaseException | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True when the item produced a result."""
        return self.error is None

    def unwrap(self) -> Any:
        """Return the result, or raise the attributed failure.

        Raises:
            SweepItemError: If this item failed.
        """
        if self.error is not None:
            raise SweepItemError(
                self.index, self.item, self.attempts, self.error
            ) from self.error
        return self.result


def available_cpus() -> int:
    """CPUs this process may actually schedule on.

    The CPU-affinity count when the platform reports one (containers
    and batch schedulers often restrict affinity below
    ``os.cpu_count()``), else ``os.cpu_count()``, else 1.  This is the
    *hardware* answer; :func:`default_processes` layers the
    ``REPRO_WORKERS`` policy override on top.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def default_processes() -> int:
    """Worker count to use when the caller just says "parallel".

    ``REPRO_WORKERS`` wins when set (the operator's explicit sizing
    for this deployment — also the CLI default for ``simulate
    --workers`` and ``serve --workers``); otherwise the schedulable
    CPU count from :func:`available_cpus`.

    Raises:
        ValidationError: If ``REPRO_WORKERS`` is set but is not a
            positive integer.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if raw:
        try:
            workers = int(raw)
        except ValueError:
            raise ValidationError(
                f"REPRO_WORKERS must be a positive integer, got {raw!r}"
            ) from None
        if workers < 1:
            raise ValidationError(
                f"REPRO_WORKERS must be >= 1, got {workers}"
            )
        return workers
    return available_cpus()


def validate_sweep_args(
    processes: int | None,
    chunksize: int | None,
    retries: int,
    backoff_seconds: float,
) -> None:
    """Shared argument validation for :func:`sweep` / :func:`sweep_iter`.

    Raises:
        ValidationError: On a non-positive ``processes``/``chunksize``
            or a negative ``retries``/``backoff_seconds``.
    """
    if processes is not None and processes < 1:
        raise ValidationError(
            f"processes must be >= 1, got {processes}"
        )
    if chunksize is not None and chunksize < 1:
        raise ValidationError(
            f"chunksize must be >= 1, got {chunksize}"
        )
    if retries < 0:
        raise ValidationError(f"retries must be >= 0, got {retries}")
    if backoff_seconds < 0:
        raise ValidationError(
            f"backoff_seconds must be >= 0, got {backoff_seconds}"
        )


def picklable_error(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else a
    :class:`SweepError` stand-in carrying its repr.

    Captured worker exceptions travel back to the parent as *data*; an
    unpicklable one would otherwise kill the whole result chunk.  The
    round trip is tested both ways because either direction can fail:
    ``dumps`` on exceptions holding unpicklable state, and ``loads``
    on exception classes whose constructors require arguments that the
    default exception reduce does not replay (their ``dumps``
    succeeds, then reconstruction raises ``TypeError``).
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return SweepError(
            f"worker raised unpicklable {type(exc).__name__}: {exc!r}"
        )


def attempt_item(
    fn: Callable[..., _ResultT],
    item: _ItemT,
    retries: int,
    backoff_seconds: float,
    shared: Any = None,
    has_shared: bool = False,
) -> tuple[Any, BaseException | None, int]:
    """Run one item with bounded retry; never raises ``Exception``.

    Returns ``(result, error, attempts)`` where ``error`` is None on
    success.  Backoff sleeps ``backoff_seconds * 2**(attempt - 1)``
    between attempts.  ``BaseException``s that are not ``Exception``
    (``KeyboardInterrupt``, worker shutdown) propagate.  With
    ``has_shared`` the call is ``fn(item, shared)`` — the shared
    payload protocol of :func:`repro.parallel.sweep`.
    """
    last: BaseException | None = None
    attempts = 0
    for attempt in range(retries + 1):
        attempts = attempt + 1
        try:
            if has_shared:
                return fn(item, shared), None, attempts
            return fn(item), None, attempts
        except Exception as exc:
            last = exc
            if attempt < retries and backoff_seconds > 0:
                _time.sleep(backoff_seconds * (2.0 ** attempt))
    assert last is not None
    return None, last, attempts


def finalize(
    items: Sequence[_ItemT],
    raw: Sequence[tuple[Any, BaseException | None, int]],
    return_errors: bool,
) -> list[Any]:
    """Turn per-item ``(result, error, attempts)`` triples into the
    caller-facing value: raw results (raising on the first failure) or
    :class:`SweepOutcome`s."""
    if return_errors:
        return [
            SweepOutcome(
                index=index,
                item=item,
                result=result,
                error=error,
                attempts=attempts,
            )
            for index, (item, (result, error, attempts)) in enumerate(
                zip(items, raw)
            )
        ]
    results = []
    for index, (item, (result, error, attempts)) in enumerate(
        zip(items, raw)
    ):
        if error is not None:
            raise SweepItemError(index, item, attempts, error) from error
        results.append(result)
    return results
