"""Test-support utilities shipped with the library.

:mod:`repro.testing.chaos` is a chaos-injection harness: it corrupts
logs, event streams, and sweep functions in controlled, manifest-backed
ways so the robustness layers (tolerant ingest, stream disorder
policies, fault-tolerant sweeps) can be exercised — and asserted
against — deterministically.  Nothing here is imported by the library
proper; it exists for this repo's test suite and for downstream users
who want to chaos-test their own pipelines built on :mod:`repro`.
"""

from repro.testing.chaos import (
    LOG_FAULT_KINDS,
    TRACE_FAULT_KINDS,
    ChaosInjectedError,
    CrashOnce,
    FlakyFunction,
    InjectedFault,
    PoisonedFunction,
    corrupt_log_file,
    corrupt_trace_file,
    duplicate_stream,
    flip_byte,
    shuffle_stream,
    truncate_file,
)

__all__ = [
    "LOG_FAULT_KINDS",
    "TRACE_FAULT_KINDS",
    "ChaosInjectedError",
    "CrashOnce",
    "FlakyFunction",
    "InjectedFault",
    "PoisonedFunction",
    "corrupt_log_file",
    "corrupt_trace_file",
    "duplicate_stream",
    "flip_byte",
    "shuffle_stream",
    "truncate_file",
]
