"""Chaos-injection harness for logs, streams, and sweeps.

The paper is about failures and repairs; this module makes sure *our
own pipeline* earns the subject matter.  It injects controlled,
seeded, manifest-backed corruption into each layer the robustness
stack defends:

* **Logs** — :func:`corrupt_log_file` rewrites a clean ``.csv`` /
  ``.jsonl`` log with NaN timestamps, negative recovery times, missing
  fields, garbage lines, duplicated records, out-of-window stamps,
  unknown categories, shuffled row order, and/or a truncated tail.  It
  returns an :class:`InjectedFault` manifest naming the exact output
  line of every fault, so a test can assert the tolerant reader
  quarantines *precisely* those lines and keeps the rest.
* **Streams** — :func:`shuffle_stream` disorders events with a
  *bounded* time displacement (so the ``buffer`` policy with at least
  that window provably restores order) and :func:`duplicate_stream`
  re-delivers events, for duplicate suppression.
* **Sweeps** — :class:`PoisonedFunction` (an item that always
  raises), :class:`FlakyFunction` (fails the first N attempts, then
  succeeds — persisted on disk so retries in other worker processes
  see the attempt count), and :class:`CrashOnce` (hard-kills its
  worker process once, to break the pool) are picklable wrappers for
  exercising :func:`repro.parallel.sweep`'s error capture, retry, and
  broken-pool recovery.
* **Stores** — :func:`truncate_file` (a torn write: the file's tail
  is cut off mid-byte-stream) and :func:`flip_byte` (bit rot: one
  byte inverted in place) model the two crash/corruption shapes
  :mod:`repro.store`'s recovery defends against, applied to segment
  or manifest files directly.
* **Traces** — :func:`corrupt_trace_file` rewrites a clean
  :mod:`repro.trace` JSONL trace with garbage lines, mangled JSON,
  unknown event types, events missing required keys, and/or a torn
  final line, with a manifest; the tolerant trace reader
  (``on_error="quarantine"``) must set aside exactly those lines.

Everything is deterministic given a seed; nothing here touches global
state.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.stream.events import StreamEvent

__all__ = [
    "LOG_FAULT_KINDS",
    "ChaosInjectedError",
    "InjectedFault",
    "corrupt_log_file",
    "shuffle_stream",
    "duplicate_stream",
    "PoisonedFunction",
    "FlakyFunction",
    "CrashOnce",
    "truncate_file",
    "flip_byte",
    "TRACE_FAULT_KINDS",
    "corrupt_trace_file",
]


class ChaosInjectedError(RuntimeError):
    """The failure deliberately raised by chaos-wrapped functions."""


# --------------------------------------------------------------------------
# Log corruption
# --------------------------------------------------------------------------

#: Row-level fault kinds understood by :func:`corrupt_log_file`.  Every
#: kind is guaranteed to make the row unparseable or invalid, so a
#: lenient read must quarantine exactly the manifested lines.
LOG_FAULT_KINDS = (
    "nan_time",
    "negative_ttr",
    "missing_field",
    "garbage",
    "duplicate_row",
    "out_of_window",
    "bad_category",
)

_FAR_FUTURE = "2099-01-01T00:00:00"
_GARBAGE = "!!! chaos garbage line !!!"
_BAD_CATEGORY = "FluxCapacitor"

#: Column order of the interchange CSV (mirrors repro.io.schema).
_CSV_ORDER = (
    "record_id", "timestamp", "node_id", "category", "ttr_hours",
    "gpus", "root_locus",
)


@dataclass(frozen=True)
class InjectedFault:
    """One deliberately corrupted line in the output file.

    Attributes:
        line_number: 1-based physical line in the *corrupted* file.
        kind: One of :data:`LOG_FAULT_KINDS` or ``"truncated"``.
        description: What was done to the line.
    """

    line_number: int
    kind: str
    description: str


def _corrupt_csv_cells(cells: list[str], kind: str) -> list[str]:
    index = {name: i for i, name in enumerate(_CSV_ORDER)}
    if kind == "nan_time":
        cells[index["timestamp"]] = "nan"
    elif kind == "negative_ttr":
        cells[index["ttr_hours"]] = "-3.5"
    elif kind == "missing_field":
        del cells[index["ttr_hours"]:]
    elif kind == "out_of_window":
        cells[index["timestamp"]] = _FAR_FUTURE
    elif kind == "bad_category":
        cells[index["category"]] = _BAD_CATEGORY
    return cells


def _corrupt_json_obj(obj: dict, kind: str) -> dict:
    if kind == "nan_time":
        obj["timestamp"] = "nan"
    elif kind == "negative_ttr":
        obj["ttr_hours"] = -3.5
    elif kind == "missing_field":
        obj.pop("ttr_hours", None)
    elif kind == "out_of_window":
        obj["timestamp"] = _FAR_FUTURE
    elif kind == "bad_category":
        obj["category"] = _BAD_CATEGORY
    return obj


def _corrupt_data_line(line: str, kind: str, format: str) -> str:
    """Return a corrupted copy of one data line (sans newline)."""
    if kind == "garbage":
        return _GARBAGE
    if format == "csv":
        return ",".join(_corrupt_csv_cells(line.split(","), kind))
    return json.dumps(_corrupt_json_obj(json.loads(line), kind))


def corrupt_log_file(
    src: str | Path,
    dst: str | Path,
    seed: int = 0,
    kinds: Sequence[str] = LOG_FAULT_KINDS,
    rate: float = 0.2,
    shuffle: bool = False,
    truncate: bool = False,
) -> list[InjectedFault]:
    """Write a corrupted copy of a clean log file, with a manifest.

    Args:
        src: Clean ``.csv`` (written by ``write_csv``) or ``.jsonl``
            (written by ``write_jsonl``) log file.
        dst: Where to write the corrupted copy (same format).
        seed: Corruption RNG seed — same seed, same corruption.
        kinds: Fault kinds to draw from (:data:`LOG_FAULT_KINDS`).
        rate: Per-row corruption probability.
        shuffle: Also shuffle the data rows.  Row order carries no
            meaning in the interchange schema (logs sort on load), so
            shuffling alone must *not* produce quarantines — it is
            listed in the manifest with line number 0 for visibility.
        truncate: Also chop the final data line mid-way (a torn write).

    Returns:
        The fault manifest: one :class:`InjectedFault` per corrupted
        line, with line numbers valid in ``dst``.

    Raises:
        ValueError: On an unknown fault kind or an unrecognised file
            format, or when the source file has no data rows.
    """
    unknown = set(kinds) - set(LOG_FAULT_KINDS)
    if unknown:
        raise ValueError(f"unknown fault kinds {sorted(unknown)}")
    src, dst = Path(src), Path(dst)
    rng = random.Random(seed)
    lines = src.read_text().splitlines()

    if src.suffix.lower() == ".csv":
        format = "csv"
        body_start = 0
        while body_start < len(lines) and lines[body_start].startswith("#"):
            body_start += 1
        body_start += 1  # the column-header row
    elif src.suffix.lower() in (".jsonl", ".ndjson"):
        format = "jsonl"
        body_start = 1  # the header object
    else:
        raise ValueError(f"unrecognised log format: {src}")
    preamble, data = lines[:body_start], lines[body_start:]
    if not data:
        raise ValueError(f"{src} has no data rows to corrupt")

    manifest: list[InjectedFault] = []
    if shuffle:
        rng.shuffle(data)
        manifest.append(
            InjectedFault(0, "shuffle", "data rows shuffled")
        )

    out = list(preamble)
    for line in data:
        if rng.random() < rate:
            kind = kinds[rng.randrange(len(kinds))]
            if kind == "duplicate_row":
                out.append(line)
                out.append(line)
                manifest.append(
                    InjectedFault(
                        len(out), "duplicate_row",
                        "row re-appended verbatim (duplicate id)",
                    )
                )
            else:
                out.append(_corrupt_data_line(line, kind, format))
                manifest.append(
                    InjectedFault(
                        len(out), kind, f"row corrupted: {kind}"
                    )
                )
        else:
            out.append(line)
    if truncate:
        cut = max(1, len(out[-1]) // 3)
        out[-1] = out[-1][:cut]
        # One manifest entry per line: truncation supersedes any
        # corruption already applied to the final line.
        manifest = [
            fault for fault in manifest
            if fault.line_number != len(out)
        ]
        manifest.append(
            InjectedFault(
                len(out), "truncated", "final row torn mid-write"
            )
        )
    dst.write_text("\n".join(out) + "\n")
    return manifest


# --------------------------------------------------------------------------
# Binary-file corruption (store segments and manifests)
# --------------------------------------------------------------------------

def truncate_file(
    path: str | Path, keep_fraction: float = 0.5
) -> int:
    """Tear a file as a crashed write would: keep a byte prefix.

    Truncates in place to ``keep_fraction`` of the current size
    (rounded down; at least 0).  Returns the new size in bytes.

    Raises:
        ValueError: If ``keep_fraction`` is outside ``[0, 1)``.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(
            f"keep_fraction must lie in [0, 1), got {keep_fraction}"
        )
    path = Path(path)
    keep = int(path.stat().st_size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def flip_byte(
    path: str | Path,
    offset: int | None = None,
    seed: int = 0,
) -> int:
    """Invert one byte of a file in place (bit rot).

    ``offset`` may be negative (from the end) or None to draw a
    seeded-random position.  Returns the absolute offset flipped.

    Raises:
        ValueError: On an empty file or an out-of-range offset.
    """
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"{path} is empty; nothing to flip")
    if offset is None:
        offset = random.Random(seed).randrange(size)
    elif offset < 0:
        offset += size
    if not 0 <= offset < size:
        raise ValueError(
            f"offset {offset} outside file of {size} bytes"
        )
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ 0xFF]))
    return offset


# --------------------------------------------------------------------------
# Trace corruption
# --------------------------------------------------------------------------

#: Line-level fault kinds understood by :func:`corrupt_trace_file`.
#: Every kind makes the line unparseable or semantically invalid, so a
#: quarantine read must set aside exactly the manifested lines.
TRACE_FAULT_KINDS = (
    "garbage",
    "mangled_json",
    "unknown_type",
    "missing_key",
)


def _corrupt_trace_line(line: str, kind: str) -> str:
    if kind == "garbage":
        return _GARBAGE
    if kind == "mangled_json":
        # Drop the closing brace: still one line, no longer JSON.
        return line.rstrip()[:-1]
    obj = json.loads(line)
    if kind == "unknown_type":
        obj["t"] = "flux_capacitor"
    else:  # missing_key: every event kind requires "time"
        obj.pop("time", None)
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def corrupt_trace_file(
    src: str | Path,
    dst: str | Path,
    seed: int = 0,
    kinds: Sequence[str] = TRACE_FAULT_KINDS,
    rate: float = 0.2,
    truncate: bool = False,
) -> list[InjectedFault]:
    """Write a corrupted copy of a clean simulation trace.

    The header (line 1) is never touched — a broken header makes the
    whole file unreadable by contract, which is a different test.
    ``report`` and ``end`` lines are also left intact so outcome
    comparisons stay meaningful; only event lines are corrupted.

    Args:
        src: Clean trace written by :func:`repro.trace.write_trace`.
        dst: Where to write the corrupted copy.
        seed: Corruption RNG seed — same seed, same corruption.
        kinds: Fault kinds to draw from (:data:`TRACE_FAULT_KINDS`).
        rate: Per-event-line corruption probability.
        truncate: Also chop the final line mid-way (a torn write).

    Returns:
        The fault manifest, line numbers valid in ``dst``.

    Raises:
        ValueError: On unknown fault kinds or a trace with no event
            lines.
    """
    unknown = set(kinds) - set(TRACE_FAULT_KINDS)
    if unknown:
        raise ValueError(f"unknown fault kinds {sorted(unknown)}")
    src, dst = Path(src), Path(dst)
    rng = random.Random(seed)
    lines = src.read_text().splitlines()
    if len(lines) < 2:
        raise ValueError(f"{src} has no event lines to corrupt")

    manifest: list[InjectedFault] = []
    out: list[str] = []
    for number, line in enumerate(lines, start=1):
        kind_tag = None
        try:
            kind_tag = json.loads(line).get("t")
        except (json.JSONDecodeError, AttributeError):
            pass
        protected = number == 1 or kind_tag in ("report", "end")
        if not protected and rng.random() < rate:
            kind = kinds[rng.randrange(len(kinds))]
            out.append(_corrupt_trace_line(line, kind))
            manifest.append(
                InjectedFault(
                    len(out), kind, f"trace line corrupted: {kind}"
                )
            )
        else:
            out.append(line)
    if truncate:
        cut = max(1, len(out[-1]) // 3)
        out[-1] = out[-1][:cut]
        manifest = [
            fault for fault in manifest
            if fault.line_number != len(out)
        ]
        manifest.append(
            InjectedFault(
                len(out), "truncated", "final line torn mid-write"
            )
        )
    dst.write_text("\n".join(out) + "\n")
    return manifest


# --------------------------------------------------------------------------
# Stream corruption
# --------------------------------------------------------------------------

def shuffle_stream(
    events: Iterable[StreamEvent],
    seed: int = 0,
    max_shift_hours: float = 24.0,
) -> list[StreamEvent]:
    """Disorder a stream with bounded time displacement.

    Each event's *arrival position* is perturbed by sorting on
    ``time + U(0, max_shift_hours)``; consequently any event that
    arrives before an older one is at most ``max_shift_hours`` newer.
    A ``buffer`` policy with ``window_hours >= max_shift_hours``
    therefore restores exact time order with zero drops.
    """
    if max_shift_hours < 0:
        raise ValueError(
            f"max_shift_hours must be >= 0, got {max_shift_hours}"
        )
    rng = random.Random(seed)
    keyed = [
        (event.time_hours + rng.uniform(0.0, max_shift_hours), i, event)
        for i, event in enumerate(events)
    ]
    keyed.sort(key=lambda triple: (triple[0], triple[1]))
    return [event for _, _, event in keyed]


def duplicate_stream(
    events: Iterable[StreamEvent],
    seed: int = 0,
    rate: float = 0.1,
) -> tuple[list[StreamEvent], int]:
    """Re-deliver a fraction of events immediately after the original.

    Models an at-least-once transport (e.g. a repair notification
    retried by its sender).  Returns the corrupted stream and the
    number of duplicates inserted.
    """
    rng = random.Random(seed)
    out: list[StreamEvent] = []
    duplicates = 0
    for event in events:
        out.append(event)
        if rng.random() < rate:
            out.append(event)
            duplicates += 1
    return out, duplicates


# --------------------------------------------------------------------------
# Sweep-function chaos (picklable callables)
# --------------------------------------------------------------------------

def _digest(item: Any) -> str:
    """Stable cross-process identity for an item (``hash()`` is salted
    per process for strings, so it cannot be used)."""
    return hashlib.sha1(repr(item).encode()).hexdigest()[:16]


class PoisonedFunction:
    """Wrap ``fn`` so designated items always raise.

    The canonical "one poisoned seed" scenario: every other item
    computes normally, the poisoned ones raise
    :class:`ChaosInjectedError`.  Picklable as long as ``fn`` and the
    items are.
    """

    def __init__(
        self, fn: Callable[[Any], Any], poisoned: Iterable[Any]
    ) -> None:
        self.fn = fn
        self.poisoned = frozenset(poisoned)

    def __call__(self, item: Any) -> Any:
        if item in self.poisoned:
            raise ChaosInjectedError(f"poisoned item {item!r}")
        return self.fn(item)


class FlakyFunction:
    """Wrap ``fn`` so designated items fail their first N attempts.

    Models a transient fault (flaky filesystem, OOM-adjacent
    allocation) that a bounded retry should absorb.  Attempt counts
    persist as files under ``state_dir`` so the count survives process
    boundaries — a retry inside a pool worker sees the attempts made
    anywhere else.

    Args:
        fn: The wrapped pure function.
        failures: Attempts that fail before the first success.
        state_dir: Directory for attempt-count files (use a pytest
            ``tmp_path``).
        items: Items that are flaky (default: all of them).
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        failures: int,
        state_dir: str | Path,
        items: Iterable[Any] | None = None,
    ) -> None:
        if failures < 0:
            raise ValueError(f"failures must be >= 0, got {failures}")
        self.fn = fn
        self.failures = failures
        self.state_dir = str(state_dir)
        self.items = None if items is None else frozenset(items)

    def __call__(self, item: Any) -> Any:
        if self.items is None or item in self.items:
            marker = os.path.join(
                self.state_dir, f"flaky-{_digest(item)}.attempts"
            )
            with open(marker, "a") as handle:
                handle.write("x")
            attempts = os.path.getsize(marker)
            if attempts <= self.failures:
                raise ChaosInjectedError(
                    f"transient fault on {item!r} "
                    f"(attempt {attempts}/{self.failures})"
                )
        return self.fn(item)


class CrashOnce:
    """Wrap ``fn`` so a designated item hard-kills its worker — once.

    ``os._exit`` takes the worker process down without unwinding,
    which is how a segfault or the OOM killer looks to a process pool:
    :class:`~concurrent.futures.process.BrokenProcessPool`.  A
    sentinel file under ``state_dir`` makes the crash one-shot, so the
    sweep's serial re-dispatch completes.  As a safety net the crash
    only triggers in a process other than the one that constructed the
    wrapper, so it can never take down the test runner itself.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        crash_items: Iterable[Any],
        state_dir: str | Path,
    ) -> None:
        self.fn = fn
        self.crash_items = frozenset(crash_items)
        self.state_dir = str(state_dir)
        self.parent_pid = os.getpid()

    def __call__(self, item: Any) -> Any:
        if item in self.crash_items and os.getpid() != self.parent_pid:
            sentinel = os.path.join(
                self.state_dir, f"crash-{_digest(item)}.sentinel"
            )
            try:
                fd = os.open(
                    sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                pass  # already crashed once; behave this time
            else:
                os.close(fd)
                os._exit(139)
        return self.fn(item)
