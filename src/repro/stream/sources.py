"""Event-stream sources.

Five ways events reach a :class:`~repro.stream.monitor.FailureMonitor`:

* :class:`ReplaySource` — replay a finished
  :class:`~repro.core.records.FailureLog` (batch → stream bridge).
* :class:`FileSource` — replay a log file (CSV or JSON Lines, format
  inferred from the extension via :func:`repro.io.infer_format`).
* :class:`SyntheticSource` — generate a calibrated synthetic trace and
  replay it (the :mod:`repro.synth` stream adapter).
* :class:`SimulationSource` — run a
  :class:`~repro.sim.simulator.ClusterSimulator` while recording the
  failure/repair events its engine publishes on the live bus, then
  yield them.  For *in-loop* consumption (react to events while the
  simulation is still running) attach the monitor directly with
  :meth:`FailureMonitor.attach` before calling ``run``.
* :class:`TraceSource` — replay a recorded simulation trace file
  (see :mod:`repro.trace`) without re-running the simulation; repair
  events carry the trace's *actual* completion times (queueing
  included), unlike the ``failure + ttr`` approximation of
  ``include_repairs`` replays.

All sources are iterables of monotonic
:class:`~repro.stream.events.StreamEvent`s, so ``monitor.consume(source)``
works uniformly.
"""

from __future__ import annotations

from collections.abc import Iterator
from datetime import timedelta
from pathlib import Path

from repro.core.records import FailureLog, FailureRecord
from repro.errors import StreamError
from repro.stream.events import StreamEvent, events_from_log

__all__ = [
    "ReplaySource",
    "FileSource",
    "SyntheticSource",
    "SimulationSource",
    "TraceSource",
]


class ReplaySource:
    """Replay a finished failure log as a stream.

    Args:
        log: The log to replay.
        include_repairs: Also emit REPAIR events at each failure's
            recovery completion.
    """

    def __init__(
        self, log: FailureLog, include_repairs: bool = False
    ) -> None:
        self._log = log
        self._include_repairs = include_repairs

    @property
    def log(self) -> FailureLog:
        return self._log

    @property
    def machine(self) -> str:
        return self._log.machine

    @property
    def span_hours(self) -> float:
        """Observation span, for :meth:`FailureMonitor.finalize`."""
        return self._log.span_hours

    def __iter__(self) -> Iterator[StreamEvent]:
        return events_from_log(
            self._log, include_repairs=self._include_repairs
        )


class FileSource(ReplaySource):
    """Replay a log file as a stream.

    Args:
        path: ``.csv`` or ``.jsonl`` log file.
        format: Explicit format override (``"csv"`` / ``"jsonl"``).
        include_repairs: Also emit REPAIR events.
        on_error: Ingest policy for malformed rows (``"raise"`` /
            ``"skip"`` / ``"collect"``, see
            :func:`repro.io.read_log`).  With ``"collect"`` the
            quarantine diagnostics are kept on :attr:`read_report`.
    """

    def __init__(
        self,
        path: Path | str,
        format: str | None = None,
        include_repairs: bool = False,
        on_error: str = "raise",
    ) -> None:
        from repro.io import read_log
        from repro.io.tolerant import LogReadReport

        loaded = read_log(path, format=format, on_error=on_error)
        report: LogReadReport | None = None
        if isinstance(loaded, LogReadReport):
            report = loaded
            loaded = loaded.log
        super().__init__(loaded, include_repairs=include_repairs)
        self._path = Path(path)
        self._read_report = report

    @property
    def path(self) -> Path:
        return self._path

    @property
    def read_report(self):
        """The :class:`~repro.io.tolerant.LogReadReport` from a
        lenient (``on_error="collect"``) load, else None."""
        return self._read_report


class SyntheticSource(ReplaySource):
    """Generate a calibrated synthetic trace and replay it.

    Args:
        machine: ``"tsubame2"`` or ``"tsubame3"``.
        seed: Generator seed.
        config: Full :class:`~repro.synth.GeneratorConfig` (overrides
            ``seed``).
        include_repairs: Also emit REPAIR events.
    """

    def __init__(
        self,
        machine: str,
        seed: int = 0,
        config=None,
        include_repairs: bool = False,
    ) -> None:
        from repro.synth import generate_log

        super().__init__(
            generate_log(machine, seed=seed, config=config),
            include_repairs=include_repairs,
        )


class SimulationSource:
    """Run a cluster simulation and yield the events it published.

    The source subscribes to the simulator engine's event bus, runs
    the horizon on first iteration, and yields the recorded
    failure/repair events.  Iterating twice replays the recording; it
    does not re-run the simulation.

    Args:
        simulator: A :class:`~repro.sim.simulator.ClusterSimulator`
            that has not been run yet.
        horizon_hours: Simulated hours to run.
    """

    def __init__(self, simulator, horizon_hours: float) -> None:
        if horizon_hours <= 0:
            raise StreamError(
                f"horizon_hours must be positive, got {horizon_hours}"
            )
        self._simulator = simulator
        self._horizon = horizon_hours
        self._recorded: list[StreamEvent] | None = None
        self._report = None

    @property
    def report(self):
        """The simulation report (available after iteration)."""
        return self._report

    @property
    def horizon_hours(self) -> float:
        return self._horizon

    def _run(self) -> list[StreamEvent]:
        recorded: list[StreamEvent] = []
        engine = self._simulator.engine
        engine.subscribe(
            "failure",
            lambda record, time_hours: recorded.append(
                StreamEvent.failure(time_hours, record)
            ),
        )
        engine.subscribe(
            "repair",
            lambda node_id, category, time_hours: recorded.append(
                StreamEvent.repair(time_hours, node_id, category)
            ),
        )
        self._report = self._simulator.run(self._horizon)
        return recorded

    def __iter__(self) -> Iterator[StreamEvent]:
        if self._recorded is None:
            self._recorded = self._run()
        return iter(self._recorded)


class TraceSource:
    """Replay a recorded simulation trace file as a stream.

    Reads a :mod:`repro.trace` JSONL trace and yields its failure
    (and, optionally, repair-completion) events in recorded order —
    no simulation is re-run.  The ``rdone`` events in a trace are the
    moments repairs actually completed, so with ``include_repairs``
    the stream reflects technician/spare queueing faithfully.

    Args:
        path: Trace file recorded by ``repro-failures trace record``
            or :func:`repro.trace.record_run` + ``write_trace``.
        include_repairs: Also emit REPAIR events (from ``rdone``).
        on_error: ``"raise"`` (default) aborts on a malformed trace
            line; ``"quarantine"`` sets bad lines aside (available on
            :attr:`quarantined`) and streams the rest — the
            chaos-tolerant mode for truncated or corrupt traces.
    """

    def __init__(
        self,
        path: Path | str,
        include_repairs: bool = False,
        on_error: str = "raise",
    ) -> None:
        from repro.machines.specs import get_machine
        from repro.trace import read_trace

        self._path = Path(path)
        self._trace, self._quarantined = read_trace(
            path, on_error=on_error
        )
        self._include_repairs = include_repairs
        self._log_start = get_machine(self.machine).log_start

    @property
    def path(self) -> Path:
        return self._path

    @property
    def trace(self):
        """The parsed :class:`repro.trace.Trace`."""
        return self._trace

    @property
    def quarantined(self):
        """Malformed lines set aside by ``on_error="quarantine"``."""
        return self._quarantined

    @property
    def machine(self) -> str:
        return self._trace.config.machine

    @property
    def span_hours(self) -> float:
        """The recorded horizon, for :meth:`FailureMonitor.finalize`."""
        return self._trace.horizon_hours

    def __iter__(self) -> Iterator[StreamEvent]:
        record_id = 0
        for event in self._trace.events:
            kind = event["t"]
            if kind == "fail":
                record = FailureRecord(
                    record_id=record_id,
                    timestamp=self._log_start
                    + timedelta(hours=event["time"]),
                    node_id=event["node"],
                    category=event["cat"],
                    ttr_hours=event["ttr"],
                    gpus_involved=tuple(event["gpus"]),
                )
                record_id += 1
                yield StreamEvent.failure(event["time"], record)
            elif kind == "rdone" and self._include_repairs:
                yield StreamEvent.repair(
                    event["time"], event["node"], event["cat"]
                )
