"""Incremental estimators for live failure streams.

Every estimator here consumes one observation at a time in O(1) or
O(log n) work and bounded memory, and converges to its batch
counterpart in :mod:`repro.core`:

* :class:`Welford` — numerically stable running mean/variance
  (Welford 1962).  Its mean is *exactly* the batch mean up to float
  rounding, which is what makes the monitor's MTBF/MTTR parity
  guarantee tight.
* :class:`P2Quantile` — the P² algorithm (Jain & Chlamtac 1985): a
  single quantile from five markers, constant memory, no guarantee
  but excellent in practice.
* :class:`GKQuantileSketch` — the Greenwald-Khanna sketch (SIGMOD
  2001): any quantile with a *guaranteed* rank error of at most
  ``epsilon * n``, in O((1/epsilon) log(epsilon n)) memory.  This is
  the sketch behind the monitor's median/p99 TBF tolerance.
* :class:`RollingWindowStats` — exact mean/count over a trailing
  time window (memory proportional to events in the window).
* :class:`EwmaRate` — exponentially weighted event rate (events per
  hour), the streaming analogue of a windowed count.
* :class:`OnlineMtbf` / :class:`OnlineMttr` — the headline reliability
  metrics assembled from the pieces above.
"""

from __future__ import annotations

import math
from bisect import insort
from collections import deque
from dataclasses import dataclass

from repro.errors import StreamError

__all__ = [
    "Welford",
    "P2Quantile",
    "GKQuantileSketch",
    "RollingWindowStats",
    "EwmaRate",
    "OnlineMtbf",
    "OnlineMttr",
]


class Welford:
    """Running mean and variance, one value at a time."""

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    @property
    def n(self) -> int:
        """Observations seen."""
        return self._n

    @property
    def mean(self) -> float:
        """Running mean (0.0 before any observation)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1; 0.0 with fewer than 2 values)."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def push(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)

    def push_many(self, values) -> None:
        """Fold an iterable of observations, in order.

        Deliberately a sequential loop rather than a Chan-style moment
        merge: the result is *bit-identical* to pushing each value with
        :meth:`push`, which is the parity contract batch ingestion
        (``FailureMonitor.observe_many``) is tested against.
        """
        n = self._n
        mean = self._mean
        m2 = self._m2
        for value in values:
            n += 1
            delta = value - mean
            mean += delta / n
            m2 += delta * (value - mean)
        self._n = n
        self._mean = mean
        self._m2 = m2

    def state(self) -> dict:
        """JSON-serializable snapshot of the running moments.

        Restoring via :meth:`from_state` is bit-identical: the same
        future pushes yield the same mean/variance as if the estimator
        had never been persisted.  This is what lets the persistent
        store (:mod:`repro.store.views`) keep its materialized
        analytics incremental across process restarts.
        """
        return {"n": self._n, "mean": self._mean, "m2": self._m2}

    @classmethod
    def from_state(cls, state: dict) -> "Welford":
        """Rebuild an estimator from a :meth:`state` snapshot."""
        est = cls()
        est._n = int(state["n"])
        est._mean = float(state["mean"])
        est._m2 = float(state["m2"])
        return est

    @classmethod
    def merged(cls, estimators: "list[Welford]") -> "Welford":
        """Combine independent estimators (Chan et al. 1979).

        The merge algebra behind fleet telemetry: each serve shard
        keeps its own per-endpoint latency moments, and the router
        rolls them up into one estimator whose mean is exact and whose
        variance matches pushing every shard's observations into a
        single accumulator (up to float rounding — *not* the
        bit-identity contract :meth:`push_many` keeps, which is why
        the sequential path stays separate).
        """
        out = cls()
        for est in estimators:
            if est._n == 0:
                continue
            if out._n == 0:
                out._n, out._mean, out._m2 = est._n, est._mean, est._m2
                continue
            n = out._n + est._n
            delta = est._mean - out._mean
            out._mean += delta * est._n / n
            out._m2 += est._m2 + delta * delta * out._n * est._n / n
            out._n = n
        return out


class P2Quantile:
    """Single-quantile P² estimator: five markers, constant memory.

    Args:
        q: Target quantile in (0, 1).
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise StreamError(f"quantile must lie in (0, 1), got {q}")
        self._q = q
        self._initial: list[float] = []
        # Marker heights, positions (1-based), and desired positions.
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._n = 0

    @property
    def q(self) -> float:
        return self._q

    @property
    def n(self) -> int:
        """Observations seen."""
        return self._n

    def push(self, value: float) -> None:
        """Fold one observation into the marker set."""
        self._n += 1
        if self._n <= 5:
            insort(self._initial, value)
            if self._n == 5:
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self._q
                self._desired = [
                    1.0,
                    1.0 + 2.0 * q,
                    1.0 + 4.0 * q,
                    3.0 + 2.0 * q,
                    5.0,
                ]
            return

        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        for i in (1, 2, 3):
            d = self._desired[i] - positions[i]
            if (d >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                d <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step)
            * (h[i + 1] - h[i])
            / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step)
            * (h[i] - h[i - 1])
            / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, p = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (p[j] - p[i])

    def value(self) -> float:
        """Current quantile estimate.

        Raises:
            StreamError: Before the first observation.
        """
        if self._n == 0:
            raise StreamError("P2Quantile has seen no observations")
        if self._n <= 5:
            rank = max(
                0, min(self._n - 1, math.ceil(self._q * self._n) - 1)
            )
            return self._initial[rank]
        return self._heights[2]


@dataclass
class _GKTuple:
    value: float
    g: int
    delta: int


class GKQuantileSketch:
    """Greenwald-Khanna epsilon-approximate quantile sketch.

    Any quantile query is answered with a value whose *rank* in the
    stream so far is within ``epsilon * n`` of the exact target rank —
    a guarantee that holds for every distribution and arrival order.
    The monitor documents its TBF median/p99 tolerance in exactly
    these terms (docs/STREAMING.md).

    Args:
        epsilon: Rank-error bound as a fraction of the stream length
            (default 0.005: a p99 over 10 000 gaps is off by at most
            50 ranks).
    """

    def __init__(self, epsilon: float = 0.005) -> None:
        if not 0.0 < epsilon < 0.5:
            raise StreamError(
                f"epsilon must lie in (0, 0.5), got {epsilon}"
            )
        self._epsilon = epsilon
        self._tuples: list[_GKTuple] = []
        self._n = 0
        self._compress_every = max(1, int(1.0 / (2.0 * epsilon)))

    @property
    def n(self) -> int:
        """Observations seen."""
        return self._n

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def size(self) -> int:
        """Stored tuples (the sketch's memory footprint)."""
        return len(self._tuples)

    def push(self, value: float) -> None:
        """Insert one observation."""
        band = int(2.0 * self._epsilon * self._n)
        # Find the insertion index by value.
        lo, hi = 0, len(self._tuples)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._tuples[mid].value < value:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0 or lo == len(self._tuples):
            delta = 0
        else:
            delta = max(band - 1, 0)
        self._tuples.insert(lo, _GKTuple(value, 1, delta))
        self._n += 1
        if self._n % self._compress_every == 0:
            self._compress()

    def push_many(self, values) -> None:
        """Insert an iterable of observations, in order.

        A plain loop over :meth:`push` (not a sketch merge), so the
        resulting tuple list — and every subsequent quantile answer —
        is bit-identical to single-value insertion.
        """
        for value in values:
            self.push(value)

    def state(self) -> dict:
        """JSON-serializable snapshot of the sketch.

        The tuple list is captured verbatim, so a sketch restored with
        :meth:`from_state` answers every future query bit-identically
        to one that was never persisted.
        """
        return {
            "epsilon": self._epsilon,
            "n": self._n,
            "tuples": [[t.value, t.g, t.delta] for t in self._tuples],
        }

    @classmethod
    def from_state(cls, state: dict) -> "GKQuantileSketch":
        """Rebuild a sketch from a :meth:`state` snapshot."""
        sketch = cls(epsilon=float(state["epsilon"]))
        sketch._n = int(state["n"])
        sketch._tuples = [
            _GKTuple(float(value), int(g), int(delta))
            for value, g, delta in state["tuples"]
        ]
        return sketch

    @classmethod
    def merged(
        cls, sketches: "list[GKQuantileSketch]"
    ) -> "GKQuantileSketch":
        """Combine independent sketches into one (conservative merge).

        Tuple lists are merged by value; each tuple's ``delta`` is
        inflated by the other sketches' worst-case rank uncertainty,
        so every rank bound stays valid over the concatenated stream.
        The price is additive error: merging sketches of rank error
        ``eps_i * n_i`` yields a sketch whose error bound is
        ``sum(eps_i)`` of the combined count — fine for fleet
        telemetry rollups (a p99 over four 1%-sketches is within 4%
        rank error), not a substitute for one sketch over one stream.
        """
        live = [s for s in sketches if s._n]
        if not live:
            return cls()
        epsilon = min(0.499, sum(s._epsilon for s in live))
        merged = cls(epsilon=epsilon)
        entries: list[tuple[float, int, int]] = []
        for sketch in live:
            others = sum(
                int(2.0 * other._epsilon * other._n)
                for other in live
                if other is not sketch
            )
            for entry in sketch._tuples:
                entries.append(
                    (entry.value, entry.g, entry.delta + others)
                )
        entries.sort(key=lambda entry: entry[0])
        merged._tuples = [
            _GKTuple(value, g, delta) for value, g, delta in entries
        ]
        merged._n = sum(s._n for s in live)
        merged._compress()
        return merged

    def _compress(self) -> None:
        limit = int(2.0 * self._epsilon * self._n)
        tuples = self._tuples
        i = len(tuples) - 2
        while i >= 1:
            left, right = tuples[i], tuples[i + 1]
            if left.g + right.g + right.delta <= limit:
                right.g += left.g
                del tuples[i]
            i -= 1

    def value(self, q: float) -> float:
        """Estimate the ``q`` quantile of everything seen so far.

        Raises:
            StreamError: Before the first observation or for a
                quantile outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise StreamError(f"quantile must lie in [0, 1], got {q}")
        if self._n == 0:
            raise StreamError("GKQuantileSketch has seen no observations")
        target = max(1, math.ceil(q * self._n))
        bound = self._epsilon * self._n
        rmin = 0
        best = self._tuples[-1].value
        for entry in self._tuples:
            rmin += entry.g
            rmax = rmin + entry.delta
            if target - rmin <= bound and rmax - target <= bound:
                best = entry.value
                break
        return best


class RollingWindowStats:
    """Exact mean/count over a trailing time window.

    Values are pushed with their event time (hours); querying first
    evicts everything older than ``window_hours`` behind the newest
    ``advance_to`` time.
    """

    def __init__(self, window_hours: float) -> None:
        if window_hours <= 0:
            raise StreamError(
                f"window_hours must be positive, got {window_hours}"
            )
        self._window = window_hours
        self._entries: deque[tuple[float, float]] = deque()
        self._sum = 0.0
        self._now = 0.0

    @property
    def window_hours(self) -> float:
        return self._window

    def push(self, time_hours: float, value: float) -> None:
        """Record a value observed at a point in time."""
        self.advance_to(time_hours)
        self._entries.append((time_hours, value))
        self._sum += value

    def advance_to(self, time_hours: float) -> None:
        """Move the window edge forward, evicting expired entries."""
        if time_hours < self._now:
            raise StreamError(
                f"window time went backwards: {time_hours} h after "
                f"{self._now} h"
            )
        self._now = time_hours
        horizon = time_hours - self._window
        entries = self._entries
        while entries and entries[0][0] < horizon:
            self._sum -= entries.popleft()[1]

    @property
    def count(self) -> int:
        """Entries currently inside the window."""
        return len(self._entries)

    @property
    def mean(self) -> float | None:
        """Mean of in-window values (None when the window is empty)."""
        if not self._entries:
            return None
        return self._sum / len(self._entries)


class EwmaRate:
    """Exponentially weighted event rate in events per hour.

    Each arrival contributes a unit mass that decays with time
    constant ``tau_hours``; the rate estimate is the decayed mass
    divided by ``tau``.  After many arrivals of a Poisson process with
    rate r, the estimate converges to r.
    """

    def __init__(self, tau_hours: float = 168.0) -> None:
        if tau_hours <= 0:
            raise StreamError(
                f"tau_hours must be positive, got {tau_hours}"
            )
        self._tau = tau_hours
        self._mass = 0.0
        self._last = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        """Arrivals recorded."""
        return self._count

    def push(self, time_hours: float) -> None:
        """Record one arrival."""
        self._decay(time_hours)
        self._mass += 1.0
        self._count += 1

    def _decay(self, time_hours: float) -> None:
        if time_hours < self._last:
            raise StreamError(
                f"EWMA time went backwards: {time_hours} h after "
                f"{self._last} h"
            )
        self._mass *= math.exp(-(time_hours - self._last) / self._tau)
        self._last = time_hours

    def rate_per_hour(self, time_hours: float | None = None) -> float:
        """Current rate estimate, decayed to ``time_hours``."""
        if time_hours is not None:
            self._decay(time_hours)
        return self._mass / self._tau

    def state(self) -> dict:
        """JSON-serializable snapshot of the decayed mass."""
        return {
            "tau": self._tau,
            "mass": self._mass,
            "last": self._last,
            "count": self._count,
        }

    @classmethod
    def from_state(cls, state: dict) -> "EwmaRate":
        """Rebuild a rate estimator from a :meth:`state` snapshot."""
        est = cls(tau_hours=float(state["tau"]))
        est._mass = float(state["mass"])
        est._last = float(state["last"])
        est._count = int(state["count"])
        return est


class OnlineMtbf:
    """Streaming MTBF: both estimators the batch layer reports.

    ``mtbf`` is the running mean of the gap series — it matches
    :func:`repro.core.metrics.mtbf` exactly (same arithmetic,
    streaming order).  ``mtbf_span`` divides observed span by count,
    matching :func:`repro.core.metrics.mtbf_span` once the stream has
    covered the full window.
    """

    def __init__(self) -> None:
        self._gaps = Welford()
        self._last_failure: float | None = None
        self._failures = 0

    @property
    def failures(self) -> int:
        return self._failures

    @property
    def gap_count(self) -> int:
        return self._gaps.n

    def push_failure(self, time_hours: float) -> float | None:
        """Record a failure; returns the gap it closed (None if first)."""
        gap = None
        if self._last_failure is not None:
            gap = time_hours - self._last_failure
            if gap < 0:
                raise StreamError(
                    f"failure stream went backwards: {time_hours} h "
                    f"after {self._last_failure} h"
                )
            self._gaps.push(gap)
        self._last_failure = time_hours
        self._failures += 1
        return gap

    @property
    def mtbf_hours(self) -> float | None:
        """Mean of the gap series (None with fewer than 2 failures)."""
        if self._gaps.n == 0:
            return None
        return self._gaps.mean

    def mtbf_span_hours(self, elapsed_hours: float) -> float | None:
        """Observed span over failure count (None before any failure)."""
        if self._failures == 0:
            return None
        return elapsed_hours / self._failures

    @property
    def gap_std_hours(self) -> float:
        return self._gaps.std


class OnlineMttr:
    """Streaming MTTR: running mean/std of per-failure recovery times.

    Matches :func:`repro.core.metrics.mttr` exactly (same mean, fed
    in stream order).
    """

    def __init__(self) -> None:
        self._ttr = Welford()

    @property
    def n(self) -> int:
        return self._ttr.n

    def push_ttr(self, ttr_hours: float) -> None:
        if ttr_hours < 0:
            raise StreamError(
                f"ttr_hours must be non-negative, got {ttr_hours}"
            )
        self._ttr.push(ttr_hours)

    @property
    def mttr_hours(self) -> float | None:
        """Running MTTR (None before the first recovery)."""
        if self._ttr.n == 0:
            return None
        return self._ttr.mean

    @property
    def ttr_std_hours(self) -> float:
        return self._ttr.std
