"""Online failure monitoring over live event streams.

The batch analyses in :mod:`repro.core` answer the paper's questions
over a *finished* log; this package answers the operator's version of
the same questions — MTBF/MTTR, TBF quantiles, category mix, multi-GPU
bursts — *incrementally*, one event at a time, with changepoint
detection and alerting on top.

Quickstart::

    from repro.stream import FailureMonitor, SyntheticSource

    source = SyntheticSource("tsubame3", seed=42)
    monitor = FailureMonitor(window_hours=720.0)
    snapshot = monitor.consume(source)
    monitor.finalize(source.span_hours)
    print(snapshot.format_lines())
    for alert in monitor.alerts:
        print(alert.format_line())

Live simulation::

    from repro.sim import ClusterSimulator

    sim = ClusterSimulator("tsubame2", seed=7)
    monitor = FailureMonitor()
    monitor.attach(sim.engine)       # failures/repairs stream in live
    sim.run(5000.0)

Parity: replaying a full log through a monitor reproduces the batch
MTBF/MTTR exactly (same arithmetic) and quantiles within the sketch's
``epsilon * n`` rank error — see docs/STREAMING.md.
"""

from repro.stream.alerts import (
    Alert,
    AlertRule,
    AlertSeverity,
    AlertSink,
    CallbackSink,
    CategorySurgeRule,
    ListSink,
    MttrDegradationRule,
    MultiGpuBurstRule,
    PrintSink,
    RateShiftRule,
    default_rules,
)
from repro.stream.detectors import (
    CusumDetector,
    Detection,
    MultiGpuBurstDetector,
    PageHinkleyDetector,
)
from repro.stream.events import (
    EventKind,
    StreamEvent,
    ensure_monotonic,
    events_from_log,
)
from repro.stream.monitor import FailureMonitor, MonitorSnapshot
from repro.stream.online import (
    EwmaRate,
    GKQuantileSketch,
    OnlineMtbf,
    OnlineMttr,
    P2Quantile,
    RollingWindowStats,
    Welford,
)
from repro.stream.sources import (
    FileSource,
    ReplaySource,
    SimulationSource,
    SyntheticSource,
    TraceSource,
)
from repro.stream.tolerance import (
    DISORDER_POLICIES,
    StreamStats,
    tolerant_stream,
)

__all__ = [
    "Alert",
    "AlertRule",
    "AlertSeverity",
    "AlertSink",
    "CallbackSink",
    "CategorySurgeRule",
    "CusumDetector",
    "DISORDER_POLICIES",
    "Detection",
    "EventKind",
    "EwmaRate",
    "FailureMonitor",
    "FileSource",
    "GKQuantileSketch",
    "ListSink",
    "MonitorSnapshot",
    "MttrDegradationRule",
    "MultiGpuBurstDetector",
    "MultiGpuBurstRule",
    "OnlineMtbf",
    "OnlineMttr",
    "P2Quantile",
    "PageHinkleyDetector",
    "PrintSink",
    "RateShiftRule",
    "ReplaySource",
    "RollingWindowStats",
    "SimulationSource",
    "StreamEvent",
    "StreamStats",
    "SyntheticSource",
    "TraceSource",
    "Welford",
    "default_rules",
    "ensure_monotonic",
    "events_from_log",
    "tolerant_stream",
]
