"""The failure monitor: estimators + detectors + alerting, composed.

:class:`FailureMonitor` is the subsystem's front door.  Feed it
:class:`~repro.stream.events.StreamEvent`s one at a time (or attach it
to a running simulation engine) and it maintains, incrementally:

* cumulative MTBF (gap-mean and span estimators) and MTTR,
* a Greenwald-Khanna sketch of the TBF and TTR distributions
  (median/p99 within a guaranteed rank error),
* rolling-window MTBF/MTTR over a trailing operator horizon,
* per-category EWMA failure rates,
* the alert rule catalog of :mod:`repro.stream.alerts`.

Parity guarantee
----------------
Replaying a finished :class:`~repro.core.records.FailureLog` through a
monitor converges to the batch kernels: ``mtbf`` and ``mttr`` match
:mod:`repro.core.metrics` up to float rounding (both are plain means,
one computed by Welford), ``mtbf_span`` matches once ``finalize`` is
called with the full window span, and quantiles carry the sketch's
``epsilon * n`` rank-error bound.  ``tests/stream/test_online_parity``
enforces all of this property-style; tolerances are documented in
docs/STREAMING.md.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import StreamError
from repro.stream.alerts import Alert, AlertRule, AlertSink, default_rules
from repro.stream.events import StreamEvent
from repro.stream.online import (
    EwmaRate,
    GKQuantileSketch,
    OnlineMtbf,
    OnlineMttr,
    RollingWindowStats,
)
from repro.stream.tolerance import StreamStats, tolerant_stream

__all__ = ["MonitorSnapshot", "FailureMonitor"]


@dataclass(frozen=True)
class MonitorSnapshot:
    """Point-in-time state of a :class:`FailureMonitor`.

    All quantities are in hours unless named otherwise; estimators
    that have not seen enough data report None.
    """

    time_hours: float
    events_seen: int
    failures: int
    repairs: int
    mtbf_hours: float | None
    mtbf_span_hours: float | None
    mttr_hours: float | None
    rolling_mtbf_hours: float | None
    rolling_mttr_hours: float | None
    rolling_window_hours: float
    rolling_failures: int
    tbf_quantiles_hours: dict[float, float] = field(default_factory=dict)
    ttr_quantiles_hours: dict[float, float] = field(default_factory=dict)
    category_rates_per_hour: dict[str, float] = field(default_factory=dict)
    alerts_fired: int = 0
    #: Feed-degradation counters (non-zero only when the monitor
    #: consumed a stream under a tolerant disorder policy).
    events_dropped: int = 0
    events_reordered: int = 0
    duplicates_suppressed: int = 0

    def format_lines(self) -> list[str]:
        """Render the snapshot as aligned report lines."""

        def fmt(value: float | None) -> str:
            return f"{value:10.2f}" if value is not None else f"{'-':>10}"

        lines = [
            f"t={self.time_hours:.1f} h  events={self.events_seen}  "
            f"failures={self.failures}  repairs={self.repairs}  "
            f"alerts={self.alerts_fired}",
            f"  MTBF (gap mean):  {fmt(self.mtbf_hours)} h",
            f"  MTBF (span):      {fmt(self.mtbf_span_hours)} h",
            f"  MTTR:             {fmt(self.mttr_hours)} h",
            f"  rolling {self.rolling_window_hours:.0f} h window: "
            f"MTBF {fmt(self.rolling_mtbf_hours)} h, "
            f"MTTR {fmt(self.rolling_mttr_hours)} h "
            f"({self.rolling_failures} failures)",
        ]
        if self.tbf_quantiles_hours:
            parts = ", ".join(
                f"p{int(q * 100)}={v:.2f}"
                for q, v in sorted(self.tbf_quantiles_hours.items())
            )
            lines.append(f"  TBF quantiles:    {parts} (h)")
        if self.ttr_quantiles_hours:
            parts = ", ".join(
                f"p{int(q * 100)}={v:.2f}"
                for q, v in sorted(self.ttr_quantiles_hours.items())
            )
            lines.append(f"  TTR quantiles:    {parts} (h)")
        if self.category_rates_per_hour:
            top = sorted(
                self.category_rates_per_hour.items(),
                key=lambda kv: kv[1],
                reverse=True,
            )[:5]
            parts = ", ".join(f"{c}={r:.4f}/h" for c, r in top)
            lines.append(f"  category rates:   {parts}")
        if (
            self.events_dropped
            or self.events_reordered
            or self.duplicates_suppressed
        ):
            lines.append(
                f"  feed degradation: {self.events_dropped} dropped, "
                f"{self.events_reordered} reordered, "
                f"{self.duplicates_suppressed} duplicates suppressed"
            )
        return lines


class FailureMonitor:
    """Online failure analytics over a live event stream.

    Args:
        window_hours: Trailing window for rolling MTBF/MTTR (default
            30 days).
        quantiles: TBF/TTR quantiles tracked by the sketches.
        sketch_epsilon: Greenwald-Khanna rank-error bound.
        ewma_tau_hours: Time constant of per-category rates.
        rules: Alert rules to run (defaults to
            :func:`repro.stream.alerts.default_rules`; pass ``[]`` to
            disable alerting).
        sinks: Extra alert sinks; fired alerts are always also kept
            on :attr:`alerts`.
    """

    def __init__(
        self,
        window_hours: float = 720.0,
        quantiles: tuple[float, ...] = (0.5, 0.75, 0.99),
        sketch_epsilon: float = 0.005,
        ewma_tau_hours: float = 168.0,
        rules: list[AlertRule] | None = None,
        sinks: Iterable[AlertSink] = (),
    ) -> None:
        for q in quantiles:
            if not 0.0 < q < 1.0:
                raise StreamError(
                    f"quantiles must lie in (0, 1), got {q}"
                )
        self._quantiles = tuple(quantiles)
        self._mtbf = OnlineMtbf()
        self._mttr = OnlineMttr()
        self._tbf_sketch = GKQuantileSketch(sketch_epsilon)
        self._ttr_sketch = GKQuantileSketch(sketch_epsilon)
        self._rolling_gaps = RollingWindowStats(window_hours)
        self._rolling_ttr = RollingWindowStats(window_hours)
        self._ewma_tau = ewma_tau_hours
        self._category_rates: dict[str, EwmaRate] = {}
        self._rules = default_rules() if rules is None else list(rules)
        self._sinks = list(sinks)
        self._alerts: list[Alert] = []
        self._events = 0
        self._failures = 0
        self._repairs = 0
        self._now = 0.0
        self._stream_stats = StreamStats()

    # -- feeding -----------------------------------------------------------

    @property
    def now_hours(self) -> float:
        """Time of the latest event observed."""
        return self._now

    @property
    def events_seen(self) -> int:
        return self._events

    @property
    def failures_seen(self) -> int:
        return self._failures

    @property
    def repairs_seen(self) -> int:
        return self._repairs

    @property
    def alerts(self) -> list[Alert]:
        """Every alert fired so far, in order."""
        return list(self._alerts)

    @property
    def rules(self) -> list[AlertRule]:
        return list(self._rules)

    def add_sink(self, sink: AlertSink) -> None:
        """Attach another alert sink."""
        self._sinks.append(sink)

    def observe(self, event: StreamEvent) -> list[Alert]:
        """Feed one event; returns the alerts it triggered (if any).

        Raises:
            StreamError: If the event's time precedes the previous
                event's (streams must be monotonic).
        """
        if event.time_hours < self._now:
            raise StreamError(
                f"monitor fed out of order: {event.time_hours} h after "
                f"{self._now} h"
            )
        self._now = event.time_hours
        self._events += 1
        if event.is_failure:
            self._observe_failure(event)
        else:
            self._repairs += 1

        fired: list[Alert] = []
        for rule in self._rules:
            alert = rule.observe(event)
            if alert is not None:
                fired.append(alert)
        for alert in fired:
            self._alerts.append(alert)
            for sink in self._sinks:
                sink.emit(alert)
        return fired

    def observe_many(self, events: Iterable[StreamEvent]) -> list[Alert]:
        """Feed a batch of events; returns every alert triggered.

        Exactly equivalent to calling :meth:`observe` per event (same
        estimator updates, same ordering checks, same alert sequence —
        the parity is asserted in the test suite) but with the
        per-call attribute lookups hoisted, which matters when a
        simulation hands over thousands of buffered events at once.

        Raises:
            StreamError: At the first out-of-order event; events
                before it are already folded in, the rest of the batch
                is not consumed.
        """
        observe = self.observe
        fired: list[Alert] = []
        for event in events:
            fired.extend(observe(event))
        return fired

    def _observe_failure(self, event: StreamEvent) -> None:
        self._failures += 1
        gap = self._mtbf.push_failure(event.time_hours)
        if gap is not None:
            self._tbf_sketch.push(gap)
            self._rolling_gaps.push(event.time_hours, gap)
        else:
            self._rolling_gaps.advance_to(event.time_hours)
        record = event.record
        if record is not None:
            self._mttr.push_ttr(record.ttr_hours)
            self._ttr_sketch.push(record.ttr_hours)
            self._rolling_ttr.push(event.time_hours, record.ttr_hours)
        rate = self._category_rates.setdefault(
            event.category, EwmaRate(self._ewma_tau)
        )
        rate.push(event.time_hours)

    @property
    def stream_stats(self) -> StreamStats:
        """Feed-degradation counters accumulated by tolerant consumes."""
        return self._stream_stats

    def consume(
        self,
        events: Iterable[StreamEvent],
        on_disorder: str = "raise",
        window_hours: float = 0.0,
        drop_duplicates: bool = False,
    ) -> "MonitorSnapshot":
        """Drain an event iterable and return the final snapshot.

        Args:
            events: The stream to drain.
            on_disorder: Disorder policy applied before observation —
                ``"raise"`` (strict, the default), ``"drop"``, or
                ``"buffer"`` with a bounded reordering window; see
                :func:`repro.stream.tolerance.tolerant_stream`.
            window_hours: Reordering window for ``"buffer"`` and the
                duplicate-suppression lookback.
            drop_duplicates: Suppress exact re-deliveries.

        Dropped/reordered/duplicate counts accumulate on
        :attr:`stream_stats` and appear in every later snapshot.
        """
        if (
            on_disorder == "raise"
            and not drop_duplicates
            and window_hours == 0.0
        ):
            self.observe_many(events)
            return self.snapshot()
        for event in tolerant_stream(
            events,
            on_disorder=on_disorder,
            window_hours=window_hours,
            drop_duplicates=drop_duplicates,
            stats=self._stream_stats,
        ):
            self.observe(event)
        return self.snapshot()

    def attach(self, engine) -> None:
        """Subscribe to a simulation engine's live event bus.

        The engine must expose the ``subscribe(topic, callback)`` API
        of :class:`repro.sim.engine.SimulationEngine`; failures and
        repair completions published by the fault injector and repair
        service then flow into this monitor as the simulation runs.
        """
        engine.subscribe(
            "failure",
            lambda record, time_hours: self.observe(
                StreamEvent.failure(time_hours, record)
            ),
        )
        engine.subscribe(
            "repair",
            lambda node_id, category, time_hours: self.observe(
                StreamEvent.repair(time_hours, node_id, category)
            ),
        )

    # -- reading -----------------------------------------------------------

    def finalize(self, elapsed_hours: float | None = None) -> None:
        """Advance the clock past the last event (end of observation).

        Replays of a finished log should call this with the log's
        ``span_hours`` so the span-MTBF estimator sees the full
        window, not just the stretch up to the last failure.
        """
        if elapsed_hours is not None:
            # Repairs may already have pushed the clock past the
            # nominal window end; never move it backwards.
            self._now = max(self._now, elapsed_hours)
        self._rolling_gaps.advance_to(self._now)
        self._rolling_ttr.advance_to(self._now)

    def tbf_quantile(self, q: float) -> float | None:
        """Sketch estimate of a TBF quantile (None with no gaps yet)."""
        if self._tbf_sketch.n == 0:
            return None
        return self._tbf_sketch.value(q)

    def ttr_quantile(self, q: float) -> float | None:
        """Sketch estimate of a TTR quantile (None with no data yet)."""
        if self._ttr_sketch.n == 0:
            return None
        return self._ttr_sketch.value(q)

    @property
    def sketch_epsilon(self) -> float:
        return self._tbf_sketch.epsilon

    def category_rates_per_hour(self) -> dict[str, float]:
        """Current per-category EWMA failure rates."""
        return {
            category: rate.rate_per_hour(self._now)
            for category, rate in sorted(self._category_rates.items())
        }

    def snapshot(self) -> MonitorSnapshot:
        """Summarise everything the monitor currently knows."""
        rolling_gap_mean = self._rolling_gaps.mean
        rolling_ttr_mean = self._rolling_ttr.mean
        return MonitorSnapshot(
            time_hours=self._now,
            events_seen=self._events,
            failures=self._failures,
            repairs=self._repairs,
            mtbf_hours=self._mtbf.mtbf_hours,
            mtbf_span_hours=self._mtbf.mtbf_span_hours(self._now),
            mttr_hours=self._mttr.mttr_hours,
            rolling_mtbf_hours=rolling_gap_mean,
            rolling_mttr_hours=rolling_ttr_mean,
            rolling_window_hours=self._rolling_gaps.window_hours,
            rolling_failures=self._rolling_gaps.count,
            tbf_quantiles_hours={
                q: value
                for q in self._quantiles
                if (value := self.tbf_quantile(q)) is not None
            },
            ttr_quantiles_hours={
                q: value
                for q in self._quantiles
                if (value := self.ttr_quantile(q)) is not None
            },
            category_rates_per_hour=self.category_rates_per_hour(),
            alerts_fired=len(self._alerts),
            events_dropped=self._stream_stats.dropped,
            events_reordered=self._stream_stats.reordered,
            duplicates_suppressed=self._stream_stats.duplicates,
        )
