"""Disorder and duplicate tolerance for event streams.

Real telemetry is not the tidy, sorted replay of a finished log:
collectors race, retries re-deliver, clocks skew.  A monitor fed such
a stream used to have exactly one option — raise on the first
regression.  :func:`tolerant_stream` makes the policy configurable:

* ``"raise"`` — strict monotonicity, the historical behaviour of
  :func:`repro.stream.events.ensure_monotonic`.
* ``"drop"`` — discard any event older than the newest one already
  emitted, counting it, and pass everything else straight through.
* ``"buffer"`` — hold events in a bounded reordering window of
  ``window_hours``: an event is released only once an event more than
  ``window_hours`` newer has been seen, so out-of-order arrivals
  within the window are re-sorted into exact time order.  Events that
  arrive *later* than the window allows (older than the watermark) are
  dropped and counted — the buffer is bounded, never "wait forever".

Orthogonally, ``drop_duplicates=True`` suppresses exact re-deliveries
(same kind, time, node, category, and record identity) within the
reordering window — the "duplicated repair notification" case.

All counters accumulate on a shared :class:`StreamStats`, which
:class:`~repro.stream.monitor.FailureMonitor` surfaces in its
snapshots, so an operator can see *how degraded* the feed is, not just
the degraded metrics.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import StreamError
from repro.stream.events import StreamEvent

__all__ = ["DISORDER_POLICIES", "StreamStats", "tolerant_stream"]

#: Accepted values of ``tolerant_stream``'s ``on_disorder``.
DISORDER_POLICIES = ("raise", "drop", "buffer")


@dataclass
class StreamStats:
    """Counters describing how a tolerant stream degraded.

    Attributes:
        emitted: Events passed downstream.
        reordered: Events that arrived out of order but were re-sorted
            into place by the ``buffer`` policy.
        dropped: Events discarded for arriving too late (``drop``
            policy, or beyond the ``buffer`` window).
        duplicates: Exact re-deliveries suppressed.
    """

    emitted: int = 0
    reordered: int = 0
    dropped: int = 0
    duplicates: int = 0

    @property
    def degraded(self) -> bool:
        """True when anything was dropped, reordered, or deduplicated."""
        return bool(self.reordered or self.dropped or self.duplicates)

    def format_line(self) -> str:
        return (
            f"stream tolerance: {self.emitted} emitted, "
            f"{self.reordered} reordered, {self.dropped} dropped, "
            f"{self.duplicates} duplicates suppressed"
        )


def _event_key(event: StreamEvent) -> tuple:
    """Identity used for duplicate suppression."""
    record = event.record
    return (
        event.kind,
        event.time_hours,
        event.node_id,
        event.category,
        record.record_id if record is not None else None,
    )


def tolerant_stream(
    events: Iterable[StreamEvent],
    on_disorder: str = "raise",
    window_hours: float = 0.0,
    drop_duplicates: bool = False,
    stats: StreamStats | None = None,
) -> Iterator[StreamEvent]:
    """Yield ``events`` under a configurable disorder policy.

    Args:
        events: Any stream of :class:`StreamEvent`s, possibly
            disordered or duplicated.
        on_disorder: ``"raise"``, ``"drop"``, or ``"buffer"`` (see the
            module docstring).
        window_hours: Bounded reordering window for ``"buffer"`` (and
            the lookback horizon for duplicate suppression).  Must be
            finite and non-negative; ignored for ``"raise"``/
            ``"drop"`` ordering decisions.
        drop_duplicates: Suppress exact re-deliveries seen within the
            window.
        stats: Counter object to accumulate on (a fresh one is created
            when omitted; pass your own to read it afterwards).

    Yields:
        Events in non-decreasing time order (guaranteed for every
        policy; ``buffer`` additionally restores the true order of
        events disordered by at most ``window_hours``).

    Raises:
        StreamError: On an unknown policy or invalid window (always),
            or on the first regression under ``"raise"``.
    """
    if on_disorder not in DISORDER_POLICIES:
        raise StreamError(
            f"unknown disorder policy {on_disorder!r} (known: "
            f"{', '.join(DISORDER_POLICIES)})"
        )
    if not (math.isfinite(window_hours) and window_hours >= 0.0):
        raise StreamError(
            f"window_hours must be finite and >= 0, got "
            f"{window_hours!r}"
        )
    if stats is None:
        stats = StreamStats()

    # Duplicate-suppression memory: key -> last time seen.  Pruned to
    # the lookback window so it stays bounded.
    seen: dict[tuple, float] = {}

    def is_duplicate(event: StreamEvent, now: float) -> bool:
        if not drop_duplicates:
            return False
        for key, when in list(seen.items()):
            if when < now - window_hours:
                del seen[key]
        key = _event_key(event)
        if key in seen:
            stats.duplicates += 1
            return True
        seen[key] = event.time_hours
        return False

    if on_disorder == "buffer":
        yield from _buffered(
            events, window_hours, is_duplicate, stats
        )
        return

    last = None
    for event in events:
        if last is not None and event.time_hours < last:
            if on_disorder == "raise":
                raise StreamError(
                    f"event stream went backwards: "
                    f"{event.time_hours} h after {last} h"
                )
            stats.dropped += 1
            continue
        if is_duplicate(event, event.time_hours):
            continue
        last = event.time_hours
        stats.emitted += 1
        yield event


def _buffered(
    events: Iterable[StreamEvent],
    window_hours: float,
    is_duplicate,
    stats: StreamStats,
) -> Iterator[StreamEvent]:
    """Bounded-window reordering: hold each event until the watermark
    (newest arrival minus the window) passes it, emitting in time
    order.  Arrival order breaks ties, so an already-sorted stream
    passes through unchanged."""
    heap: list[tuple[float, int, StreamEvent]] = []
    sequence = 0
    newest = -math.inf
    emitted_up_to = -math.inf

    def release(watermark: float) -> Iterator[StreamEvent]:
        nonlocal emitted_up_to
        while heap and heap[0][0] <= watermark:
            time, _, held = heapq.heappop(heap)
            emitted_up_to = time
            stats.emitted += 1
            yield held

    for event in events:
        if event.time_hours < emitted_up_to:
            # Beyond repair: something newer was already released.
            stats.dropped += 1
            continue
        if is_duplicate(event, max(newest, event.time_hours)):
            continue
        if event.time_hours < newest:
            stats.reordered += 1
        newest = max(newest, event.time_hours)
        heapq.heappush(heap, (event.time_hours, sequence, event))
        sequence += 1
        yield from release(newest - window_hours)
    yield from release(math.inf)
