"""Online change and burst detection.

Operators don't just want rolling numbers — they want to be told when
the numbers *changed regime*: a driver rollout that doubled the
failure rate, a staffing change that stretched recoveries, a bus
failure taking out multiple GPUs at once.  The batch layer finds such
shifts post hoc (:mod:`repro.stats.changepoint`); these detectors find
them online, one observation at a time:

* :class:`CusumDetector` — two-sided standardized CUSUM (Page 1954).
  Learns a baseline over a warm-up prefix, then accumulates
  standardized deviations; an alarm fires when either side's sum
  clears the threshold, after which the detector re-learns the new
  regime.
* :class:`PageHinkleyDetector` — the Page-Hinkley mean-shift test,
  cheaper than CUSUM (no variance estimate) and common in streaming
  ML monitoring.
* :class:`MultiGpuBurstDetector` — counts multi-GPU failures in a
  trailing window (the paper's Figure 8 shows they cluster in time);
  alarms when a burst exceeds the threshold, then holds off until the
  window drains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StreamError
from repro.stream.online import RollingWindowStats, Welford

__all__ = [
    "Detection",
    "CusumDetector",
    "PageHinkleyDetector",
    "MultiGpuBurstDetector",
]


@dataclass(frozen=True)
class Detection:
    """One alarm from an online detector.

    Attributes:
        detector: Name of the detector that fired.
        observation_index: 0-based index of the triggering observation.
        direction: ``"up"`` when the monitored statistic rose,
            ``"down"`` when it fell.
        statistic: Detector statistic at the alarm.
        threshold: Threshold it cleared.
        baseline_mean: The pre-shift mean the detector was tracking.
    """

    detector: str
    observation_index: int
    direction: str
    statistic: float
    threshold: float
    baseline_mean: float


class CusumDetector:
    """Two-sided standardized CUSUM with a self-learned baseline.

    The first ``warmup`` observations estimate the in-control mean and
    standard deviation; subsequent observations are standardized and
    accumulated into the classic one-sided sums

    ``S+ = max(0, S+ + z - k)``   and   ``S- = max(0, S- - z - k)``

    with reference value ``k`` (``drift``, in sigma units).  An alarm
    fires when either sum exceeds ``threshold`` sigma units; the
    detector then resets and re-enters warm-up so it can detect the
    *next* shift relative to the new regime.

    Args:
        drift: Reference value k in sigmas (0.5 targets ~1-sigma
            shifts).
        threshold: Decision interval h in sigmas (4-5 is the
            classical choice).
        warmup: Observations used to learn each regime's baseline.
    """

    def __init__(
        self,
        drift: float = 0.5,
        threshold: float = 5.0,
        warmup: int = 30,
        name: str = "cusum",
    ) -> None:
        if drift < 0:
            raise StreamError(f"drift must be >= 0, got {drift}")
        if threshold <= 0:
            raise StreamError(
                f"threshold must be positive, got {threshold}"
            )
        if warmup < 2:
            raise StreamError(f"warmup must be >= 2, got {warmup}")
        self._drift = drift
        self._threshold = threshold
        self._warmup = warmup
        self._name = name
        self._baseline = Welford()
        self._frozen_mean = 0.0
        self._frozen_std = 0.0
        self._sum_high = 0.0
        self._sum_low = 0.0
        self._seen = 0
        self._detections: list[Detection] = []

    @property
    def name(self) -> str:
        return self._name

    @property
    def detections(self) -> list[Detection]:
        """All alarms fired so far."""
        return list(self._detections)

    @property
    def in_warmup(self) -> bool:
        """Whether the detector is still learning its baseline."""
        return self._baseline.n < self._warmup

    def update(self, value: float) -> Detection | None:
        """Feed one observation; returns a Detection when one fires."""
        index = self._seen
        self._seen += 1
        if self._baseline.n < self._warmup:
            self._baseline.push(value)
            if self._baseline.n == self._warmup:
                self._frozen_mean = self._baseline.mean
                # Guard against a constant warm-up prefix.
                self._frozen_std = max(self._baseline.std, 1e-12)
            return None

        z = (value - self._frozen_mean) / self._frozen_std
        self._sum_high = max(0.0, self._sum_high + z - self._drift)
        self._sum_low = max(0.0, self._sum_low - z - self._drift)
        if self._sum_high > self._threshold:
            detection = Detection(
                detector=self._name,
                observation_index=index,
                direction="up",
                statistic=self._sum_high,
                threshold=self._threshold,
                baseline_mean=self._frozen_mean,
            )
        elif self._sum_low > self._threshold:
            detection = Detection(
                detector=self._name,
                observation_index=index,
                direction="down",
                statistic=self._sum_low,
                threshold=self._threshold,
                baseline_mean=self._frozen_mean,
            )
        else:
            return None
        self._detections.append(detection)
        self._relearn()
        return detection

    def _relearn(self) -> None:
        self._baseline = Welford()
        self._sum_high = 0.0
        self._sum_low = 0.0


class PageHinkleyDetector:
    """Page-Hinkley test for a shift in the mean of a stream.

    Tracks the cumulative difference between observations and their
    running mean (minus a tolerance ``delta``); alarms when the
    difference rises ``lambda_`` above its running minimum (upward
    shift) or falls ``lambda_`` below its running maximum (downward
    shift).  Resets after each alarm.

    Args:
        delta: Magnitude tolerance — drifts smaller than this are
            ignored (in observation units).
        lambda_: Alarm threshold (in observation units).
        min_observations: Observations required before alarming.
    """

    def __init__(
        self,
        delta: float,
        lambda_: float,
        min_observations: int = 10,
        name: str = "page-hinkley",
    ) -> None:
        if delta < 0:
            raise StreamError(f"delta must be >= 0, got {delta}")
        if lambda_ <= 0:
            raise StreamError(
                f"lambda_ must be positive, got {lambda_}"
            )
        if min_observations < 2:
            raise StreamError(
                f"min_observations must be >= 2, got {min_observations}"
            )
        self._delta = delta
        self._lambda = lambda_
        self._min_obs = min_observations
        self._name = name
        self._seen = 0
        self._reset()
        self._detections: list[Detection] = []

    def _reset(self) -> None:
        self._mean = Welford()
        self._m_up = 0.0
        self._m_up_min = 0.0
        self._m_down = 0.0
        self._m_down_max = 0.0

    @property
    def name(self) -> str:
        return self._name

    @property
    def detections(self) -> list[Detection]:
        return list(self._detections)

    def update(self, value: float) -> Detection | None:
        """Feed one observation; returns a Detection when one fires."""
        index = self._seen
        self._seen += 1
        self._mean.push(value)
        deviation = value - self._mean.mean
        self._m_up += deviation - self._delta
        self._m_up_min = min(self._m_up_min, self._m_up)
        self._m_down += deviation + self._delta
        self._m_down_max = max(self._m_down_max, self._m_down)
        if self._mean.n < self._min_obs:
            return None

        up_stat = self._m_up - self._m_up_min
        down_stat = self._m_down_max - self._m_down
        if up_stat > self._lambda:
            direction, statistic = "up", up_stat
        elif down_stat > self._lambda:
            direction, statistic = "down", down_stat
        else:
            return None
        detection = Detection(
            detector=self._name,
            observation_index=index,
            direction=direction,
            statistic=statistic,
            threshold=self._lambda,
            baseline_mean=self._mean.mean,
        )
        self._detections.append(detection)
        self._reset()
        return detection


class MultiGpuBurstDetector:
    """Detects temporal bursts of multi-GPU failures.

    Counts failures involving at least ``min_gpus`` GPU slots inside a
    trailing window.  When the count reaches ``threshold`` the
    detector alarms once, then re-arms only after the window count
    falls back below the threshold — so one sustained burst produces
    one alarm, not one per event.

    Args:
        window_hours: Trailing window length (the paper's Figure 8
            uses day-scale clustering; default 24 h).
        threshold: Multi-GPU failures in the window that constitute a
            burst.
        min_gpus: Minimum involved GPU slots for an event to count.
    """

    def __init__(
        self,
        window_hours: float = 24.0,
        threshold: int = 3,
        min_gpus: int = 2,
        name: str = "multi-gpu-burst",
    ) -> None:
        if threshold < 1:
            raise StreamError(
                f"threshold must be >= 1, got {threshold}"
            )
        if min_gpus < 1:
            raise StreamError(f"min_gpus must be >= 1, got {min_gpus}")
        self._window = RollingWindowStats(window_hours)
        self._threshold = threshold
        self._min_gpus = min_gpus
        self._name = name
        self._armed = True
        self._seen = 0
        self._detections: list[Detection] = []

    @property
    def name(self) -> str:
        return self._name

    @property
    def detections(self) -> list[Detection]:
        return list(self._detections)

    @property
    def window_hours(self) -> float:
        """Trailing window length."""
        return self._window.window_hours

    @property
    def in_window(self) -> int:
        """Multi-GPU failures currently inside the window."""
        return self._window.count

    def update(
        self, time_hours: float, num_gpus_involved: int
    ) -> Detection | None:
        """Feed one failure; returns a Detection when a burst starts."""
        index = self._seen
        self._seen += 1
        self._window.advance_to(time_hours)
        if num_gpus_involved >= self._min_gpus:
            self._window.push(time_hours, 1.0)
        count = self._window.count
        if count < self._threshold:
            self._armed = True
            return None
        if not self._armed:
            return None
        self._armed = False
        detection = Detection(
            detector=self._name,
            observation_index=index,
            direction="up",
            statistic=float(count),
            threshold=float(self._threshold),
            baseline_mean=0.0,
        )
        self._detections.append(detection)
        return detection
