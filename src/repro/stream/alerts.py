"""Alert rules and sinks.

An :class:`AlertRule` watches the event stream through a detector or
estimator and turns statistical detections into operator-facing
:class:`Alert` objects; an :class:`AlertSink` is where a
:class:`~repro.stream.monitor.FailureMonitor` delivers them (a list,
stdout, or any callable).  Rules are deliberately small classes so a
deployment can mix the built-in catalog with site-specific ones.

Built-in catalog (see docs/STREAMING.md for the tuning guide):

* :class:`RateShiftRule` — CUSUM on the TBF gap series; fires when the
  system failure rate shifts up (gaps shrink) or down.
* :class:`MttrDegradationRule` — Page-Hinkley on recovery times; fires
  when repairs start taking longer (or recover).
* :class:`MultiGpuBurstRule` — trailing-window burst of multi-GPU
  failures (the paper's Figure 8 clustering, live).
* :class:`CategorySurgeRule` — a category's short-horizon EWMA rate
  running far ahead of its long-horizon rate.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from enum import Enum
from typing import Protocol, TextIO

from repro.errors import StreamError
from repro.stream.detectors import (
    CusumDetector,
    MultiGpuBurstDetector,
    PageHinkleyDetector,
)
from repro.stream.events import StreamEvent
from repro.stream.online import EwmaRate

__all__ = [
    "AlertSeverity",
    "Alert",
    "AlertSink",
    "ListSink",
    "PrintSink",
    "CallbackSink",
    "AlertRule",
    "RateShiftRule",
    "MttrDegradationRule",
    "MultiGpuBurstRule",
    "CategorySurgeRule",
    "default_rules",
]


class AlertSeverity(Enum):
    """How loudly to page."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Alert:
    """One operator-facing alert.

    Attributes:
        time_hours: Stream time at which the alert fired.
        rule: Name of the rule that produced it.
        severity: Paging level.
        message: Human-readable one-liner.
        context: Rule-specific numbers (rates, statistics, counts).
    """

    time_hours: float
    rule: str
    severity: AlertSeverity
    message: str
    context: dict[str, float] = field(default_factory=dict)

    def format_line(self) -> str:
        """Render as one log line."""
        return (
            f"[{self.severity.value.upper():<8}] "
            f"t={self.time_hours:10.1f} h  {self.rule}: {self.message}"
        )


class AlertSink(Protocol):
    """Anything that can receive alerts."""

    def emit(self, alert: Alert) -> None:
        """Deliver one alert."""


class ListSink:
    """Collects alerts in memory (the default sink)."""

    def __init__(self) -> None:
        self.alerts: list[Alert] = []

    def emit(self, alert: Alert) -> None:
        self.alerts.append(alert)


class PrintSink:
    """Writes each alert as a line to a text stream (stdout default)."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self._stream = stream

    def emit(self, alert: Alert) -> None:
        import sys

        stream = self._stream if self._stream is not None else sys.stdout
        print(alert.format_line(), file=stream)


class CallbackSink:
    """Adapts any callable into a sink."""

    def __init__(self, callback: Callable[[Alert], None]) -> None:
        self._callback = callback

    def emit(self, alert: Alert) -> None:
        self._callback(alert)


class AlertRule:
    """Base class: observe events, optionally produce alerts."""

    name = "rule"

    def observe(self, event: StreamEvent) -> Alert | None:
        """Feed one event; return an alert if one fires."""
        raise NotImplementedError


class RateShiftRule(AlertRule):
    """CUSUM changepoint on the system TBF gap series.

    A shift *down* in gaps means the failure rate went *up* — that is
    the CRITICAL direction; rate improvements are INFO.
    """

    name = "rate-shift"

    def __init__(
        self,
        drift: float = 0.5,
        threshold: float = 5.0,
        warmup: int = 30,
    ) -> None:
        self._detector = CusumDetector(
            drift=drift, threshold=threshold, warmup=warmup,
            name=self.name,
        )
        self._last_failure: float | None = None

    @property
    def detector(self) -> CusumDetector:
        return self._detector

    def observe(self, event: StreamEvent) -> Alert | None:
        if not event.is_failure:
            return None
        previous, self._last_failure = (
            self._last_failure, event.time_hours
        )
        if previous is None:
            return None
        detection = self._detector.update(event.time_hours - previous)
        if detection is None:
            return None
        rate_up = detection.direction == "down"
        return Alert(
            time_hours=event.time_hours,
            rule=self.name,
            severity=(
                AlertSeverity.CRITICAL if rate_up else AlertSeverity.INFO
            ),
            message=(
                "failure rate shifted "
                + ("UP (gaps shrank" if rate_up else "down (gaps grew")
                + f"; baseline gap {detection.baseline_mean:.1f} h, "
                f"CUSUM {detection.statistic:.1f} > "
                f"{detection.threshold:.1f})"
            ),
            context={
                "baseline_gap_hours": detection.baseline_mean,
                "statistic": detection.statistic,
                "threshold": detection.threshold,
            },
        )


class MttrDegradationRule(AlertRule):
    """Page-Hinkley on per-failure recovery times."""

    name = "mttr-degradation"

    def __init__(
        self,
        delta_hours: float = 2.0,
        lambda_hours: float = 200.0,
        min_observations: int = 20,
    ) -> None:
        self._detector = PageHinkleyDetector(
            delta=delta_hours,
            lambda_=lambda_hours,
            min_observations=min_observations,
            name=self.name,
        )

    @property
    def detector(self) -> PageHinkleyDetector:
        return self._detector

    def observe(self, event: StreamEvent) -> Alert | None:
        if not event.is_failure or event.record is None:
            return None
        detection = self._detector.update(event.record.ttr_hours)
        if detection is None:
            return None
        worse = detection.direction == "up"
        return Alert(
            time_hours=event.time_hours,
            rule=self.name,
            severity=(
                AlertSeverity.WARNING if worse else AlertSeverity.INFO
            ),
            message=(
                "recovery times "
                + ("degraded" if worse else "improved")
                + f" (running MTTR {detection.baseline_mean:.1f} h, "
                f"PH {detection.statistic:.1f} > "
                f"{detection.threshold:.1f})"
            ),
            context={
                "running_mttr_hours": detection.baseline_mean,
                "statistic": detection.statistic,
            },
        )


class MultiGpuBurstRule(AlertRule):
    """Burst of multi-GPU failures inside a trailing window."""

    name = "multi-gpu-burst"

    def __init__(
        self,
        window_hours: float = 24.0,
        threshold: int = 3,
        min_gpus: int = 2,
    ) -> None:
        self._detector = MultiGpuBurstDetector(
            window_hours=window_hours,
            threshold=threshold,
            min_gpus=min_gpus,
            name=self.name,
        )

    @property
    def detector(self) -> MultiGpuBurstDetector:
        return self._detector

    def observe(self, event: StreamEvent) -> Alert | None:
        if not event.is_failure or event.record is None:
            return None
        detection = self._detector.update(
            event.time_hours, event.record.num_gpus_involved
        )
        if detection is None:
            return None
        return Alert(
            time_hours=event.time_hours,
            rule=self.name,
            severity=AlertSeverity.CRITICAL,
            message=(
                f"{detection.statistic:.0f} multi-GPU failures within "
                f"{self._detector.window_hours:.0f} h "
                f"(threshold {detection.threshold:.0f}) — possible "
                f"shared-bus or batch defect"
            ),
            context={
                "burst_count": detection.statistic,
                "threshold": detection.threshold,
            },
        )


class CategorySurgeRule(AlertRule):
    """A category's short-horizon rate running ahead of its long one.

    Keeps two EWMA rates per category (fast and slow time constants);
    once a category has enough arrivals, an alert fires when the fast
    rate exceeds ``ratio`` times the slow rate.  One alert per
    excursion: the rule re-arms when the ratio drops below half the
    trigger.
    """

    name = "category-surge"

    def __init__(
        self,
        fast_tau_hours: float = 72.0,
        slow_tau_hours: float = 720.0,
        ratio: float = 3.0,
        min_events: int = 10,
    ) -> None:
        if ratio <= 1.0:
            raise StreamError(f"ratio must be > 1, got {ratio}")
        if fast_tau_hours >= slow_tau_hours:
            raise StreamError(
                "fast_tau_hours must be shorter than slow_tau_hours, "
                f"got {fast_tau_hours} >= {slow_tau_hours}"
            )
        self._fast_tau = fast_tau_hours
        self._slow_tau = slow_tau_hours
        self._ratio = ratio
        self._min_events = min_events
        self._fast: dict[str, EwmaRate] = {}
        self._slow: dict[str, EwmaRate] = {}
        self._armed: dict[str, bool] = {}

    def observe(self, event: StreamEvent) -> Alert | None:
        if not event.is_failure:
            return None
        category = event.category
        fast = self._fast.setdefault(category, EwmaRate(self._fast_tau))
        slow = self._slow.setdefault(category, EwmaRate(self._slow_tau))
        fast.push(event.time_hours)
        slow.push(event.time_hours)
        if fast.count < self._min_events:
            return None
        fast_rate = fast.rate_per_hour(event.time_hours)
        slow_rate = slow.rate_per_hour(event.time_hours)
        if slow_rate <= 0:
            return None
        ratio = fast_rate / slow_rate
        if ratio < self._ratio / 2.0:
            self._armed[category] = True
        if ratio < self._ratio or not self._armed.get(category, True):
            return None
        self._armed[category] = False
        return Alert(
            time_hours=event.time_hours,
            rule=self.name,
            severity=AlertSeverity.WARNING,
            message=(
                f"{category} failures surging: short-horizon rate "
                f"{fast_rate:.3g}/h is {ratio:.1f}x the long-horizon "
                f"rate {slow_rate:.3g}/h"
            ),
            context={
                "fast_rate_per_hour": fast_rate,
                "slow_rate_per_hour": slow_rate,
                "ratio": ratio,
            },
        )


def default_rules() -> list[AlertRule]:
    """The standard rule catalog with default tuning."""
    return [
        RateShiftRule(),
        MttrDegradationRule(),
        MultiGpuBurstRule(),
        CategorySurgeRule(),
    ]
