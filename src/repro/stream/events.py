"""Stream event model.

The batch analyses in :mod:`repro.core` consume a finished
:class:`~repro.core.records.FailureLog`; operators consume the same
information as a *live stream*.  This module defines the stream's unit
of currency — :class:`StreamEvent` — and the normalization from a
finished log into a monotonic event sequence.

Time in a stream is measured in hours since the stream origin (for a
replayed log, the log's ``window_start``; for a live simulation, the
engine's time zero), matching the rest of the library.  Failure events
carry the full :class:`~repro.core.records.FailureRecord`; repair
events mark the moment the same record's recovery completed.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from enum import Enum

from repro.core.records import FailureLog, FailureRecord
from repro.errors import StreamError

__all__ = [
    "EventKind",
    "StreamEvent",
    "events_from_log",
    "ensure_monotonic",
]


class EventKind(Enum):
    """What happened at a stream event."""

    FAILURE = "failure"
    REPAIR = "repair"


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """One observation on the wire.

    Attributes:
        kind: Failure occurrence or repair completion.
        time_hours: Hours since the stream origin.  Streams must be
            monotonic non-decreasing in this field.
        node_id: Node the event concerns.
        category: Failure category of the underlying record.
        record: The full failure record.  Always present for FAILURE
            events; present on REPAIR events when the completing
            failure is known (replay), absent for anonymous live
            repair notifications.
    """

    kind: EventKind
    time_hours: float
    node_id: int
    category: str
    record: FailureRecord | None = None

    def __post_init__(self) -> None:
        if not (self.time_hours >= 0.0):  # also rejects NaN
            raise StreamError(
                f"event time must be a non-negative number of hours, "
                f"got {self.time_hours!r}"
            )
        if self.kind is EventKind.FAILURE and self.record is None:
            raise StreamError("FAILURE events must carry their record")

    @property
    def is_failure(self) -> bool:
        return self.kind is EventKind.FAILURE

    @property
    def is_repair(self) -> bool:
        return self.kind is EventKind.REPAIR

    @classmethod
    def failure(
        cls, time_hours: float, record: FailureRecord
    ) -> "StreamEvent":
        """Build a failure event from a record."""
        return cls(
            kind=EventKind.FAILURE,
            time_hours=time_hours,
            node_id=record.node_id,
            category=record.category,
            record=record,
        )

    @classmethod
    def repair(
        cls,
        time_hours: float,
        node_id: int,
        category: str,
        record: FailureRecord | None = None,
    ) -> "StreamEvent":
        """Build a repair-completion event."""
        return cls(
            kind=EventKind.REPAIR,
            time_hours=time_hours,
            node_id=node_id,
            category=category,
            record=record,
        )


def events_from_log(
    log: FailureLog, include_repairs: bool = False
) -> Iterator[StreamEvent]:
    """Normalize a finished log into a monotonic event stream.

    Failures are emitted at their offset from ``window_start``.  With
    ``include_repairs``, a REPAIR event is interleaved at
    ``failure_time + ttr`` for every record (repairs that complete
    after ``window_end`` are still emitted; their times simply exceed
    the log span).  The merged sequence is sorted by time, with
    repairs ordered before failures at exact ties so a node's state
    transition resolves before the next incident.

    The per-record work is O(log n) (a heap of pending repairs), so
    arbitrarily long logs replay in streaming fashion.
    """
    if not include_repairs:
        for record in log:
            yield StreamEvent.failure(log.hours_since_start(record), record)
        return

    # (time, tiebreak, event): repairs get tiebreak 0, failures 1.
    pending: list[tuple[float, int, int, StreamEvent]] = []
    sequence = 0
    for record in log:
        failed_at = log.hours_since_start(record)
        while pending and pending[0][0] <= failed_at:
            yield heapq.heappop(pending)[3]
        yield StreamEvent.failure(failed_at, record)
        sequence += 1
        heapq.heappush(
            pending,
            (
                failed_at + record.ttr_hours,
                0,
                sequence,
                StreamEvent.repair(
                    failed_at + record.ttr_hours,
                    record.node_id,
                    record.category,
                    record,
                ),
            ),
        )
    while pending:
        yield heapq.heappop(pending)[3]


def ensure_monotonic(
    events: Iterable[StreamEvent],
) -> Iterator[StreamEvent]:
    """Pass events through, raising on any time regression.

    This is the strict end of the configurable disorder policies —
    see :func:`repro.stream.tolerance.tolerant_stream` for the
    ``drop`` and bounded-``buffer`` alternatives.

    Raises:
        StreamError: If an event's time precedes its predecessor's.
    """
    from repro.stream.tolerance import tolerant_stream

    return tolerant_stream(events, on_disorder="raise")
